"""Unit tests for the sequential union-find oracle."""

import numpy as np

from repro.graph.properties import scipy_components
from repro.analysis.verify import equivalent_labelings
from repro.unionfind import SequentialUnionFind, sequential_components


class TestUnionFind:
    def test_initial_state(self):
        uf = SequentialUnionFind(4)
        assert uf.num_sets == 4
        assert not uf.connected(0, 1)

    def test_union_merges(self):
        uf = SequentialUnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.num_sets == 3

    def test_union_idempotent(self):
        uf = SequentialUnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_sets == 3

    def test_transitive(self):
        uf = SequentialUnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 3)

    def test_labels_partition(self):
        uf = SequentialUnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        labels = uf.labels()
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[2] not in (labels[0], labels[3])

    def test_path_halving_flattens(self):
        uf = SequentialUnionFind(8)
        for i in range(7):
            uf.union(i, i + 1)
        root = uf.find(7)
        # After finds, every parent chain is short.
        assert uf.find(0) == root
        assert uf.num_sets == 1


class TestSequentialComponents:
    def test_mixed_graph(self, mixed_graph, mixed_components):
        labels = sequential_components(mixed_graph)
        for comp in mixed_components:
            ids = {int(labels[v]) for v in comp}
            assert len(ids) == 1

    def test_matches_scipy(self, random_graph_factory):
        for seed in range(8):
            g = random_graph_factory(60, 80, seed)
            assert equivalent_labelings(
                sequential_components(g), scipy_components(g)
            )

    def test_empty(self, empty_graph):
        assert sequential_components(empty_graph).shape == (0,)

    def test_isolated(self, isolated_vertices):
        labels = sequential_components(isolated_vertices)
        assert len(set(labels.tolist())) == 5
