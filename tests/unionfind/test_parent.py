"""Unit tests for the ParentArray (π) wrapper."""

import numpy as np
import pytest

from repro.errors import InvariantViolationError
from repro.unionfind import ParentArray


class TestConstruction:
    def test_from_size_self_pointing(self):
        p = ParentArray(5)
        assert p.pi.tolist() == [0, 1, 2, 3, 4]
        assert p.num_trees() == 5

    def test_from_array_copies(self):
        arr = np.array([0, 0, 1])
        p = ParentArray(arr)
        arr[0] = 2
        assert p.pi[0] == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(InvariantViolationError):
            ParentArray(np.array([0, 5]))

    def test_rejects_negative(self):
        with pytest.raises(InvariantViolationError):
            ParentArray(np.array([-1, 0]))

    def test_rejects_2d(self):
        with pytest.raises(InvariantViolationError):
            ParentArray(np.array([[0]]))

    def test_empty(self):
        p = ParentArray(0)
        assert p.num_trees() == 0
        assert p.max_depth() == 0


class TestInvariant1:
    def test_identity_holds(self):
        assert ParentArray(4).holds_invariant1()

    def test_downward_pointer_holds(self):
        p = ParentArray(np.array([0, 0, 1]))
        assert p.holds_invariant1()
        p.check_invariant1()

    def test_upward_pointer_violates(self):
        p = ParentArray(np.array([1, 1]))
        assert not p.holds_invariant1()
        with pytest.raises(InvariantViolationError, match="pi\\[0\\] = 1"):
            p.check_invariant1()


class TestCycles:
    def test_identity_no_cycle(self):
        assert not ParentArray(6).has_cycle()

    def test_chain_no_cycle(self):
        assert not ParentArray(np.array([0, 0, 1, 2])).has_cycle()

    def test_two_cycle_detected(self):
        assert ParentArray(np.array([1, 0])).has_cycle()

    def test_three_cycle_detected(self):
        assert ParentArray(np.array([1, 2, 0])).has_cycle()

    def test_cycle_behind_chain_detected(self):
        # 3 -> 2 -> 1 <-> 0
        assert ParentArray(np.array([1, 0, 1, 2])).has_cycle()

    def test_two_cycle_among_trees(self):
        p = ParentArray(np.array([0, 1, 3, 2, 0]))
        assert p.has_cycle()


class TestNavigation:
    def test_find_root(self):
        p = ParentArray(np.array([0, 0, 1, 2]))
        assert p.find_root(3) == 0
        assert p.find_root(0) == 0

    def test_depth(self):
        p = ParentArray(np.array([0, 0, 1, 2]))
        assert p.depth(0) == 0
        assert p.depth(3) == 3

    def test_depths_vector(self):
        p = ParentArray(np.array([0, 0, 1, 2, 4]))
        assert p.depths().tolist() == [0, 1, 2, 3, 0]

    def test_max_depth(self):
        assert ParentArray(np.array([0, 0, 1, 2])).max_depth() == 3

    def test_find_root_raises_on_cycle(self):
        p = ParentArray(np.array([1, 0]))
        with pytest.raises(InvariantViolationError, match="cycle"):
            p.find_root(0)

    def test_depths_raise_on_cycle(self):
        p = ParentArray(np.array([1, 0, 0]))
        with pytest.raises(InvariantViolationError, match="cycle"):
            p.depths()


class TestShape:
    def test_roots(self):
        p = ParentArray(np.array([0, 0, 2, 2]))
        assert p.roots().tolist() == [0, 2]

    def test_is_flat_true(self):
        assert ParentArray(np.array([0, 0, 0, 3])).is_flat()

    def test_is_flat_false(self):
        assert not ParentArray(np.array([0, 0, 1])).is_flat()

    def test_labels_resolve_chains(self):
        p = ParentArray(np.array([0, 0, 1, 2, 4, 4]))
        assert p.labels().tolist() == [0, 0, 0, 0, 4, 4]

    def test_tree_sizes(self):
        p = ParentArray(np.array([0, 0, 1, 3]))
        assert p.tree_sizes() == {0: 3, 3: 1}

    def test_copy_is_independent(self):
        p = ParentArray(3)
        q = p.copy()
        q.pi[2] = 0
        assert p.pi[2] == 2

    def test_getitem_and_len(self):
        p = ParentArray(np.array([0, 0]))
        assert len(p) == 2
        assert p[1] == 0
