"""Tests for the top-level public API."""

import numpy as np
import pytest

import repro
from repro.analysis import equivalent_labelings
from repro.errors import ConfigurationError

ALGORITHMS = [
    "afforest",
    "afforest-noskip",
    "sv",
    "lp",
    "lp-datadriven",
    "bfs",
    "dobfs",
    "distributed",
    "sequential",
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_algorithms_on_mixed(algorithm, mixed_graph):
    ref = repro.sequential_components(mixed_graph)
    labels = repro.connected_components(mixed_graph, algorithm)
    assert equivalent_labelings(labels, ref)


def test_default_is_afforest(mixed_graph):
    a = repro.connected_components(mixed_graph)
    b = repro.connected_components(mixed_graph, "afforest")
    assert np.array_equal(a, b)


def test_unknown_algorithm():
    g = repro.from_edge_list([(0, 1)])
    with pytest.raises(ConfigurationError, match="unknown algorithm"):
        repro.connected_components(g, "magic")


def test_kwargs_forwarded(mixed_graph):
    labels = repro.connected_components(
        mixed_graph, "afforest", neighbor_rounds=1, sample_size=8
    )
    ref = repro.sequential_components(mixed_graph)
    assert equivalent_labelings(labels, ref)


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_docstring_flow():
    g = repro.generators.kronecker_graph(scale=8)
    labels = repro.connected_components(g)
    result = repro.afforest(g, neighbor_rounds=2)
    assert labels.shape[0] == g.num_vertices
    assert result.num_components >= 1
