"""Property-based round-trips for every graph file format."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list
from repro.graph.io import (
    load_npz,
    read_edge_list,
    read_metis,
    save_npz,
    write_edge_list,
    write_metis,
)


@st.composite
def graphs(draw, max_n=20, max_edges=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return from_edge_list(edges, num_vertices=n)


@st.composite
def tail_anchored_graphs(draw, max_n=20, max_edges=40):
    """Graphs whose highest vertex id carries an edge (what .el can express)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    edges.append((0, n - 1))
    return from_edge_list(edges, num_vertices=n)


_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(tail_anchored_graphs())
@_settings
def test_edge_list_roundtrip(tmp_path, g):
    path = tmp_path / "g.el"
    write_edge_list(g, path)
    assert read_edge_list(path) == g


@given(graphs())
@_settings
def test_metis_roundtrip(tmp_path, g):
    path = tmp_path / "g.graph"
    write_metis(g, path)
    assert read_metis(path) == g


@given(graphs())
@_settings
def test_npz_roundtrip(tmp_path, g):
    path = tmp_path / "g.npz"
    save_npz(g, path)
    assert load_npz(path) == g


@given(graphs())
@_settings
def test_metis_then_npz_chain(tmp_path, g):
    """Conversions compose: metis -> graph -> npz preserves identity."""
    m = tmp_path / "c.graph"
    z = tmp_path / "c.npz"
    write_metis(g, m)
    mid = read_metis(m)
    save_npz(mid, z)
    assert load_npz(z) == g
