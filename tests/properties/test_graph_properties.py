"""Property-based tests of the graph substrate itself."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import from_edge_list
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.validate import validate_graph
from repro.nputil import segment_ranges


@st.composite
def edge_data(draw, max_n=40, max_edges=80):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return n, edges


class TestBuilderProperties:
    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_built_graph_always_validates(self, case):
        n, edges = case
        g = from_edge_list(edges, num_vertices=n)
        validate_graph(g, require_sorted=True)

    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_degree_sum_is_twice_edges(self, case):
        n, edges = case
        g = from_edge_list(edges, num_vertices=n)
        assert int(np.asarray(g.degree()).sum()) == 2 * g.num_edges

    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_edge_order_does_not_matter(self, case):
        n, edges = case
        g1 = from_edge_list(edges, num_vertices=n)
        g2 = from_edge_list(list(reversed(edges)), num_vertices=n)
        assert g1 == g2

    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_orientation_does_not_matter(self, case):
        n, edges = case
        g1 = from_edge_list(edges, num_vertices=n)
        g2 = from_edge_list([(v, u) for u, v in edges], num_vertices=n)
        assert g1 == g2

    @given(edge_data())
    @settings(max_examples=60, deadline=None)
    def test_rebuild_from_edge_array_roundtrips(self, case):
        n, edges = case
        g = from_edge_list(edges, num_vertices=n)
        src, dst = g.undirected_edge_array()
        rebuilt = from_edge_list(
            list(zip(src.tolist(), dst.tolist())), num_vertices=n
        )
        assert rebuilt == g


class TestEdgeListProperties:
    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_symmetrize_then_canonical_halves(self, case):
        n, edges = case
        el = EdgeList(
            n,
            np.asarray([e[0] for e in edges], dtype=np.int64),
            np.asarray([e[1] for e in edges], dtype=np.int64),
        ).without_self_loops()
        sym = el.symmetrized()
        assert sym.num_edges == 2 * el.num_edges

    @given(edge_data())
    @settings(max_examples=100, deadline=None)
    def test_dedup_idempotent(self, case):
        n, edges = case
        el = EdgeList(
            n,
            np.asarray([e[0] for e in edges], dtype=np.int64),
            np.asarray([e[1] for e in edges], dtype=np.int64),
        )
        once = el.deduplicated()
        twice = once.deduplicated()
        assert once.as_pairs() == twice.as_pairs()


class TestSegmentRangesProperties:
    @given(st.lists(st.integers(0, 10), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_python_reference(self, counts):
        arr = np.asarray(counts, dtype=np.int64)
        expected = [i for c in counts for i in range(c)]
        assert segment_ranges(arr).tolist() == expected
