"""Property-based equivalence of every algorithm against the oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis import equivalent_labelings
from repro.graph import from_edge_list
from repro.graph.properties import scipy_components

ALGORITHMS = [
    "afforest",
    "afforest-noskip",
    "sv",
    "lp",
    "lp-datadriven",
    "bfs",
    "dobfs",
]


@st.composite
def graphs(draw, max_n=30, max_edges=70):
    n = draw(st.integers(min_value=0, max_value=max_n))
    if n == 0:
        return from_edge_list([], num_vertices=0)
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return from_edge_list(edges, num_vertices=n)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_all_algorithms_agree(g):
    ref = repro.sequential_components(g)
    assert equivalent_labelings(ref, scipy_components(g))
    for algorithm in ALGORITHMS:
        labels = repro.connected_components(g, algorithm)
        assert equivalent_labelings(labels, ref), algorithm


@given(graphs(), st.integers(0, 6), st.booleans(), st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_afforest_parameter_space(g, rounds, skip, seed):
    """Every (neighbor_rounds, skip, seed) configuration is exact."""
    if g.num_vertices == 0:
        return
    ref = repro.sequential_components(g)
    r = repro.afforest(
        g, neighbor_rounds=rounds, skip_largest=skip, seed=seed, sample_size=16
    )
    assert equivalent_labelings(r.labels, ref)


@given(graphs(max_n=20, max_edges=40), st.integers(1, 5), st.integers(0, 999))
@settings(max_examples=30, deadline=None)
def test_simulated_afforest_matches(g, workers, seed):
    if g.num_vertices == 0:
        return
    from repro import engine
    from repro.engine import SimulatedBackend
    from repro.parallel import SimulatedMachine

    ref = repro.sequential_components(g)
    m = SimulatedMachine(
        workers, schedule="cyclic", interleave="random", seed=seed
    )
    r = engine.run(
        "afforest",
        g,
        backend=SimulatedBackend(m),
        seed=seed,
        sample_size=16,
    )
    assert equivalent_labelings(r.labels, ref)
