"""Cross-cutting label invariants of the tree-hooking family.

Because hooks always connect the higher-indexed root *under* the lower
one (Invariant 1), every correct tree-hooking execution converges to the
same concrete labeling: each vertex labelled with the **minimum vertex id
of its component**.  This pins down far more than partition equivalence —
SV, Afforest (all configurations), batch link, the simulated drivers and
the distributed reduction must agree bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.constants import VERTEX_DTYPE
from repro.graph import from_edge_list
from repro.unionfind import SequentialUnionFind


@st.composite
def graphs(draw, max_n=25, max_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return from_edge_list(edges, num_vertices=n)


def min_vertex_labels(g):
    """Reference: each vertex -> minimum id in its component."""
    uf = SequentialUnionFind(g.num_vertices)
    src, dst = g.undirected_edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        uf.union(u, v)
    raw = uf.labels()
    out = np.empty_like(raw)
    for label in np.unique(raw):
        members = np.nonzero(raw == label)[0]
        out[members] = members.min()
    return out


TREE_HOOKING = ["afforest", "afforest-noskip", "sv", "distributed"]


@given(graphs())
@settings(max_examples=50, deadline=None)
def test_tree_hooking_labels_are_component_minima(g):
    expected = min_vertex_labels(g)
    for algorithm in TREE_HOOKING:
        labels = repro.connected_components(g, algorithm)
        assert np.array_equal(labels, expected), algorithm


@given(graphs(), st.integers(0, 4), st.integers(0, 99))
@settings(max_examples=50, deadline=None)
def test_afforest_configurations_bit_identical(g, rounds, seed):
    expected = min_vertex_labels(g)
    r = repro.afforest(
        g, neighbor_rounds=rounds, seed=seed, sample_size=8
    )
    assert np.array_equal(r.labels, expected)


@given(graphs(max_n=18, max_edges=35), st.integers(1, 5), st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_simulated_drivers_bit_identical(g, workers, seed):
    from repro import engine
    from repro.engine import SimulatedBackend
    from repro.parallel import SimulatedMachine

    expected = min_vertex_labels(g)
    m1 = SimulatedMachine(workers, schedule="cyclic", interleave="random", seed=seed)
    assert np.array_equal(
        engine.run(
            "afforest",
            g,
            backend=SimulatedBackend(m1),
            seed=seed,
            sample_size=8,
        ).labels,
        expected,
    )
    m2 = SimulatedMachine(workers, schedule="cyclic", interleave="random", seed=seed)
    assert np.array_equal(
        engine.run("sv", g, backend=SimulatedBackend(m2)).labels, expected
    )


def test_lp_also_converges_to_minima(mixed_graph):
    """Min-label propagation trivially shares the min-vertex labeling."""
    expected = min_vertex_labels(mixed_graph)
    assert np.array_equal(
        repro.connected_components(mixed_graph, "lp"), expected
    )
