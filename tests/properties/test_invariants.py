"""Property-based tests of the paper's invariants (hypothesis).

Invariant 1 (``pi[x] <= x``), acyclicity (Lemma 1), and connectivity
preservation (Lemmas 4–5, Theorem 2) must hold for *every* sequence of
link/compress operations under *every* interleaving — exactly the
quantification property-based testing is built for.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress, compress_all, compress_kernel
from repro.core.link import link, link_batch, link_kernel
from repro.parallel import SimulatedMachine
from repro.unionfind import ParentArray, SequentialUnionFind


@st.composite
def edge_sequences(draw, max_n=24, max_edges=60):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=max_edges,
        )
    )
    return n, edges


def reference_partition(n, edges):
    uf = SequentialUnionFind(n)
    for u, v in edges:
        uf.union(u, v)
    return uf.labels()


def partitions_equal(labels_a, labels_b):
    from repro.analysis.verify import equivalent_labelings

    return equivalent_labelings(labels_a, labels_b)


class TestScalarInvariants:
    @given(edge_sequences())
    @settings(max_examples=120, deadline=None)
    def test_link_preserves_invariant1_and_acyclicity(self, case):
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        for u, v in edges:
            link(pi, u, v)
            p = ParentArray(pi)
            assert p.holds_invariant1()
        assert not ParentArray(pi).has_cycle()

    @given(edge_sequences())
    @settings(max_examples=120, deadline=None)
    def test_link_computes_exact_partition(self, case):
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        for u, v in edges:
            link(pi, u, v)
        assert partitions_equal(
            ParentArray(pi).labels(), reference_partition(n, edges)
        )

    @given(edge_sequences(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_interleaved_compress_never_changes_partition(self, case, data):
        """compress is idempotent w.r.t. the partition at ANY point during
        linking (Theorem 2 + Sec. III-B)."""
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        for i, (u, v) in enumerate(edges):
            link(pi, u, v)
            if data.draw(st.booleans(), label=f"compress after edge {i}"):
                before = ParentArray(pi).labels()
                if data.draw(st.booleans(), label="full or single"):
                    compress_all(pi)
                else:
                    w = data.draw(st.integers(0, n - 1), label="vertex")
                    compress(pi, w)
                assert np.array_equal(ParentArray(pi).labels(), before)
                assert ParentArray(pi).holds_invariant1()
        assert partitions_equal(
            ParentArray(pi).labels(), reference_partition(n, edges)
        )


class TestBatchInvariants:
    @given(edge_sequences(), st.integers(1, 5))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_batch_splits_converge(self, case, num_batches):
        """Sec. III-B: the edge set may be partitioned into arbitrary
        subgraphs processed independently, with compress interleaved."""
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        if edges:
            src = np.asarray([e[0] for e in edges], dtype=VERTEX_DTYPE)
            dst = np.asarray([e[1] for e in edges], dtype=VERTEX_DTYPE)
            bounds = np.linspace(0, len(edges), num_batches + 1).astype(int)
            for b in range(num_batches):
                link_batch(pi, src[bounds[b]:bounds[b + 1]],
                           dst[bounds[b]:bounds[b + 1]])
                compress_all(pi)
                assert ParentArray(pi).holds_invariant1()
        assert partitions_equal(
            ParentArray(pi).labels(), reference_partition(n, edges)
        )


class TestConcurrentInvariants:
    @given(
        edge_sequences(max_n=16, max_edges=30),
        st.integers(1, 6),
        st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings_exact(self, case, workers, seed):
        """Theorem 1 under truly concurrent execution: any seeded random
        interleaving of link kernels yields the exact partition."""
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        if edges:
            src = np.asarray([e[0] for e in edges], dtype=VERTEX_DTYPE)
            dst = np.asarray([e[1] for e in edges], dtype=VERTEX_DTYPE)
            m = SimulatedMachine(
                workers, schedule="cyclic", interleave="random", seed=seed
            )
            m.parallel_for(len(edges), link_kernel, pi, src, dst)
        p = ParentArray(pi)
        assert p.holds_invariant1()
        assert not p.has_cycle()
        assert partitions_equal(p.labels(), reference_partition(n, edges))

    @given(
        edge_sequences(max_n=16, max_edges=30),
        st.integers(1, 6),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_concurrent_compress_after_links(self, case, workers, seed):
        n, edges = case
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        for u, v in edges:
            link(pi, u, v)
        before = ParentArray(pi).labels()
        m = SimulatedMachine(
            workers, schedule="cyclic", interleave="random", seed=seed
        )
        m.parallel_for(n, compress_kernel, pi)
        assert ParentArray(pi).is_flat()
        assert np.array_equal(ParentArray(pi).labels(), before)
