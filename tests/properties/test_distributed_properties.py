"""Property-based tests of the distributed forest reduction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import equivalent_labelings
from repro.distributed import distributed_components
from repro.distributed.dist_cc import merge_forest
from repro.distributed.partition import (
    partition_edges_block,
    partition_edges_hash,
)
from repro.constants import VERTEX_DTYPE
from repro.graph import from_edge_list
from repro.unionfind import ParentArray, sequential_components


@st.composite
def graphs(draw, max_n=25, max_edges=50):
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_edges,
        )
    )
    return from_edge_list(edges, num_vertices=n)


@st.composite
def downward_forests(draw, max_n=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pi = [draw(st.integers(0, v)) for v in range(n)]
    return np.asarray(pi, dtype=VERTEX_DTYPE)


@given(graphs(), st.integers(1, 9), st.booleans(), st.integers(0, 99))
@settings(max_examples=60, deadline=None)
def test_any_world_size_and_partitioner_exact(g, ranks, use_hash, seed):
    partitioner = (
        (lambda gr, r: partition_edges_hash(gr, r, seed=seed))
        if use_hash
        else partition_edges_block
    )
    result = distributed_components(g, ranks, partitioner=partitioner)
    assert equivalent_labelings(result.labels, sequential_components(g))


@given(downward_forests(), downward_forests())
@settings(max_examples=100, deadline=None)
def test_merge_forest_is_connectivity_union(a, b):
    """Merging forests = union of their connectivity relations."""
    n = min(a.shape[0], b.shape[0])
    a, b = a[:n].copy(), b[:n].copy()
    # Clip pointers to the common range (still downward-pointing).
    a = np.minimum(a, np.arange(n))
    b = np.minimum(b, np.arange(n))
    merged = a.copy()
    merge_forest(merged, b)

    # Reference: union-find over the tree edges of both forests.
    from repro.unionfind import SequentialUnionFind

    uf = SequentialUnionFind(n)
    for v in range(n):
        uf.union(v, int(a[v]))
        uf.union(v, int(b[v]))
    assert equivalent_labelings(ParentArray(merged).labels(), uf.labels())


@given(downward_forests())
@settings(max_examples=60, deadline=None)
def test_merge_with_self_is_identity_partition(pi):
    merged = pi.copy()
    merge_forest(merged, pi)
    assert equivalent_labelings(
        ParentArray(merged).labels(), ParentArray(pi).labels()
    )
