"""Tests for the Shiloach–Vishkin baseline."""

import numpy as np
import pytest

from repro import engine
from repro.analysis.verify import equivalent_labelings, is_valid_labeling
from repro.baselines import shiloach_vishkin, shiloach_vishkin_edgelist
from repro.engine import SimulatedBackend
from repro.generators import kronecker_graph, uniform_random_graph
from repro.parallel import SimulatedMachine
from repro.unionfind import sequential_components


class TestVectorizedSV:
    def test_fixture_graphs(self, mixed_graph):
        r = shiloach_vishkin(mixed_graph)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_empty(self, empty_graph):
        r = shiloach_vishkin(empty_graph)
        assert r.iterations == 0

    def test_isolated(self, isolated_vertices):
        r = shiloach_vishkin(isolated_vertices)
        assert r.num_components == 5

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, random_graph_factory, seed):
        g = random_graph_factory(60, 100, seed)
        r = shiloach_vishkin(g)
        assert is_valid_labeling(g, r.labels)

    def test_reprocesses_all_edges_each_iteration(self):
        g = uniform_random_graph(200, edge_factor=4, seed=0)
        r = shiloach_vishkin(g)
        assert r.edges_processed == r.iterations * g.num_directed_edges
        assert r.iterations >= 2  # at least one working + one check pass

    def test_path_converges_quickly(self, path_graph):
        # Hook + full shortcut converges in O(log n) iterations.
        r = shiloach_vishkin(path_graph)
        assert r.iterations <= 5

    def test_depth_tracking(self):
        g = kronecker_graph(8, edge_factor=8, seed=1)
        r = shiloach_vishkin(g, track_depth=True)
        assert r.max_tree_depth >= 1
        assert len(r.depth_per_iteration) == r.iterations


class TestEdgeListSV:
    def test_matches_csr_variant(self):
        g = uniform_random_graph(300, edge_factor=4, seed=2)
        src, dst = g.edge_array()
        a = shiloach_vishkin(g)
        b = shiloach_vishkin_edgelist(src, dst, g.num_vertices)
        assert np.array_equal(a.labels, b.labels)
        assert a.iterations == b.iterations

    def test_empty(self):
        r = shiloach_vishkin_edgelist(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0
        )
        assert r.num_components == 0


def _sv_simulated(graph, machine):
    """Shiloach–Vishkin on the simulated machine via the engine registry."""
    return engine.run("sv", graph, backend=SimulatedBackend(machine))


class TestSimulatedSV:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_matches_reference(self, workers, mixed_graph):
        m = SimulatedMachine(workers, schedule="cyclic")
        r = _sv_simulated(mixed_graph, m)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_random_interleavings(self, random_graph_factory):
        for seed in range(5):
            g = random_graph_factory(25, 45, seed)
            m = SimulatedMachine(
                4, schedule="cyclic", interleave="random", seed=seed
            )
            r = _sv_simulated(g, m)
            assert equivalent_labelings(r.labels, sequential_components(g))

    def test_phase_structure(self, two_cliques):
        m = SimulatedMachine(2)
        r = _sv_simulated(two_cliques, m)
        labels = [p.label for p in m.stats.phases]
        assert labels[0] == "I"
        assert labels[1] == "H1"
        assert labels[2] == "S1"
        # The converged final iteration skips its trailing compress.
        skipped = 1 if r.iterations > 1 else 0
        assert len(labels) == 1 + 2 * r.iterations - skipped

    def test_more_work_than_afforest(self):
        """The headline work-efficiency claim at simulator level."""
        g = uniform_random_graph(400, edge_factor=8, seed=3)
        m_sv = SimulatedMachine(4)
        _sv_simulated(g, m_sv)
        m_af = SimulatedMachine(4)
        engine.run("afforest", g, backend=SimulatedBackend(m_af))
        assert m_sv.stats.total_work > m_af.stats.total_work


class TestShortcutVariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_single_shortcut_exact(self, random_graph_factory, seed):
        g = random_graph_factory(50, 90, seed)
        full = shiloach_vishkin(g)
        single = shiloach_vishkin(g, shortcut="single")
        assert equivalent_labelings(full.labels, single.labels)

    def test_single_never_fewer_iterations(self):
        g = uniform_random_graph(400, edge_factor=6, seed=5)
        full = shiloach_vishkin(g)
        single = shiloach_vishkin(g, shortcut="single")
        assert single.iterations >= full.iterations

    def test_unknown_shortcut_rejected(self, mixed_graph):
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            shiloach_vishkin(mixed_graph, shortcut="double")
