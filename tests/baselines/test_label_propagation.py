"""Tests for label propagation (synchronous and data-driven)."""

import pytest

from repro.analysis.verify import equivalent_labelings, is_valid_labeling
from repro.baselines import label_propagation, label_propagation_datadriven
from repro.generators import grid_graph, uniform_random_graph
from repro.unionfind import sequential_components


@pytest.mark.parametrize(
    "lp", [label_propagation, label_propagation_datadriven]
)
class TestBothVariants:
    def test_fixture_graphs(self, lp, mixed_graph):
        r = lp(mixed_graph)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_empty(self, lp, empty_graph):
        assert lp(empty_graph).iterations == 0

    def test_isolated(self, lp, isolated_vertices):
        assert lp(isolated_vertices).num_components == 5

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, lp, random_graph_factory, seed):
        g = random_graph_factory(50, 80, seed)
        assert is_valid_labeling(g, lp(g).labels)

    def test_star(self, lp, star_graph):
        r = lp(star_graph)
        assert r.num_components == 1


class TestDiameterDependence:
    def test_iterations_track_diameter(self):
        """LP's defining weakness: iteration count grows with diameter."""
        low_d = uniform_random_graph(1024, edge_factor=8, seed=0)
        high_d = grid_graph(32, 32)
        r_low = label_propagation(low_d)
        r_high = label_propagation(high_d)
        assert r_high.iterations > 4 * r_low.iterations

    def test_path_needs_linear_iterations(self, path_graph):
        r = label_propagation(path_graph)
        # Min label must travel the whole path.
        assert r.iterations >= 5

    def test_datadriven_processes_fewer_edges(self):
        g = grid_graph(24, 24)
        sync = label_propagation(g)
        dd = label_propagation_datadriven(g)
        # The frontier variant shrinks per-iteration work dramatically on
        # high-diameter graphs.
        assert dd.edges_processed < sync.edges_processed

    def test_datadriven_equivalent_on_grid(self):
        g = grid_graph(16, 16)
        assert equivalent_labelings(
            label_propagation(g).labels,
            label_propagation_datadriven(g).labels,
        )
