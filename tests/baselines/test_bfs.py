"""Tests for BFS-CC and DOBFS-CC."""

import numpy as np
import pytest

from repro.analysis.verify import equivalent_labelings, is_valid_labeling
from repro.baselines import bfs_cc, dobfs_cc
from repro.generators import (
    component_fraction_graph,
    grid_graph,
    uniform_random_graph,
)
from repro.unionfind import sequential_components


@pytest.mark.parametrize("algo", [bfs_cc, dobfs_cc])
class TestBothTraversals:
    def test_fixture_graphs(self, algo, mixed_graph):
        r = algo(mixed_graph)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )
        assert r.num_components == 6

    def test_empty(self, algo, empty_graph):
        assert algo(empty_graph).num_components == 0

    def test_isolated(self, algo, isolated_vertices):
        assert algo(isolated_vertices).num_components == 5

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, algo, random_graph_factory, seed):
        g = random_graph_factory(60, 90, seed)
        assert is_valid_labeling(g, algo(g).labels)

    def test_generator_families(self, algo):
        for g in (
            uniform_random_graph(500, edge_factor=4, seed=0),
            grid_graph(15, 15),
            component_fraction_graph(400, 0.25, edge_factor=6, seed=1),
        ):
            assert is_valid_labeling(g, algo(g).labels)


class TestBFSWork:
    def test_linear_work(self):
        g = uniform_random_graph(400, edge_factor=6, seed=2)
        r = bfs_cc(g)
        # Each directed edge examined exactly once across all BFS runs.
        assert r.edges_processed == g.num_directed_edges

    def test_steps_scale_with_components(self):
        few = component_fraction_graph(1000, 1.0, edge_factor=8, seed=0)
        many = component_fraction_graph(1000, 0.01, edge_factor=8, seed=0)
        assert bfs_cc(many).bfs_steps > bfs_cc(few).bfs_steps


class TestDOBFSWork:
    def test_bottom_up_engages_on_giant(self):
        g = uniform_random_graph(2000, edge_factor=16, seed=3)
        r = dobfs_cc(g)
        assert r.bottom_up_steps > 0

    def test_early_exit_saves_edges(self):
        """The direction-optimizing claim: modeled edge work is sub-linear
        in |E| on low-diameter giant-component graphs."""
        g = uniform_random_graph(2000, edge_factor=16, seed=4)
        r = dobfs_cc(g)
        assert r.edges_processed < 0.7 * g.num_directed_edges
        assert r.edges_processed <= r.edges_gathered

    def test_no_savings_on_high_diameter(self):
        """On grid-like graphs bottom-up has nothing to early-exit into:
        DOBFS's modeled work is no better than plain BFS (the paper's
        Fig. 8a shows DOBFS losing to Afforest on road/osm)."""
        g = grid_graph(20, 20)
        r = dobfs_cc(g)
        assert r.edges_processed >= g.num_directed_edges

    def test_tiny_alpha_disables_bottom_up(self):
        # GAP's switch fires when scout > edges_to_check / alpha, so a
        # tiny alpha makes the threshold unreachable: pure top-down.
        g = uniform_random_graph(500, edge_factor=8, seed=5)
        r = dobfs_cc(g, alpha=1e-9)
        assert r.bottom_up_steps == 0
        assert r.edges_processed == g.num_directed_edges
