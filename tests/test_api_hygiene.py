"""Meta-tests: public API hygiene across the whole package.

Checks that hold the library to release quality: every module carries a
docstring, every ``__all__`` name resolves, every public callable is
documented, and the package exposes no accidental top-level junk.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.split(".")[-1].startswith("_")
]


@pytest.mark.parametrize("name", MODULES)
def test_module_importable_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", MODULES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", MODULES)
def test_public_callables_documented(name):
    mod = importlib.import_module(name)
    for attr_name in dir(mod):
        if attr_name.startswith("_"):
            continue
        obj = getattr(mod, attr_name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != name:
            continue  # re-export; documented at its home
        assert obj.__doc__ and obj.__doc__.strip(), (
            f"{name}.{attr_name} lacks a docstring"
        )


def test_top_level_all_is_complete():
    for symbol in repro.__all__:
        assert getattr(repro, symbol, None) is not None


def test_version_matches_pyproject():
    import pathlib
    import re

    pyproject = (
        pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    ).read_text()
    declared = re.search(r'version = "([^"]+)"', pyproject).group(1)
    assert repro.__version__ == declared
