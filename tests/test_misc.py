"""Coverage for small shared helpers: errors, rng plumbing, raw edge
generators, CLI parser construction."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphFormatError,
    InvariantViolationError,
    ReproError,
)
from repro.generators.kronecker import kronecker_edges
from repro.generators.lattice import grid_edges
from repro.generators.powerlaw import preferential_attachment_edges
from repro.generators.rng import (
    make_rng,
    require_nonnegative,
    require_positive,
    require_probability,
)
from repro.generators.smallworld import watts_strogatz_edges


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [GraphFormatError, InvariantViolationError, ConfigurationError,
         ConvergenceError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catch_at_boundary(self):
        """A caller catching ReproError sees every library failure mode."""
        import repro

        g = repro.from_edge_list([(0, 1)])
        try:
            repro.connected_components(g, "nope")
        except ReproError as exc:
            assert "unknown algorithm" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ReproError")


class TestRngPlumbing:
    def test_make_rng_from_int(self):
        a = make_rng(7).integers(0, 100, 5)
        b = make_rng(7).integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_require_positive(self):
        require_positive("x", 1)
        with pytest.raises(ConfigurationError, match="x must be >= 1"):
            require_positive("x", 0)

    def test_require_nonnegative(self):
        require_nonnegative("y", 0)
        with pytest.raises(ConfigurationError):
            require_nonnegative("y", -0.5)

    def test_require_probability(self):
        require_probability("p", 0.0)
        require_probability("p", 1.0)
        with pytest.raises(ConfigurationError):
            require_probability("p", 1.01)
        with pytest.raises(ConfigurationError):
            require_probability("p", 0.0, allow_zero=False)


class TestRawEdgeGenerators:
    def test_grid_edges_count(self):
        el = grid_edges(3, 4)
        assert el.num_edges == 2 * 4 + 3 * 3  # horizontal + vertical

    def test_grid_edges_periodic_wraps(self):
        el = grid_edges(3, 3, periodic=True)
        pairs = set(map(tuple, el.canonicalized().as_pairs()))
        assert (0, 2) in pairs  # row wrap
        assert (0, 6) in pairs  # column wrap

    def test_torus_2xk_not_doubled(self):
        # Wrap edges are suppressed for dimensions <= 2 (they would
        # duplicate existing edges).
        el = grid_edges(2, 5, periodic=True)
        dedup = el.canonicalized().deduplicated()
        assert dedup.num_edges == el.num_edges

    def test_kronecker_edges_range_and_determinism(self):
        rng = np.random.default_rng(3)
        src, dst = kronecker_edges(6, 500, rng=rng)
        assert src.min() >= 0 and src.max() < 64
        assert dst.min() >= 0 and dst.max() < 64
        rng2 = np.random.default_rng(3)
        src2, dst2 = kronecker_edges(6, 500, rng=rng2)
        assert np.array_equal(src, src2)

    def test_kronecker_edges_bad_probs(self):
        with pytest.raises(ConfigurationError):
            kronecker_edges(4, 10, a=0.8, b=0.3, c=0.2,
                            rng=np.random.default_rng(0))

    def test_preferential_attachment_edge_count(self):
        rng = np.random.default_rng(1)
        el = preferential_attachment_edges(100, 3, rng)
        # Seed clique 3*(3+1)/2 = 6 edges + 96 * 3 arrivals.
        assert el.num_edges == 6 + 96 * 3

    def test_watts_strogatz_edges_zero_k(self):
        el = watts_strogatz_edges(10, 0, 0.0, np.random.default_rng(0))
        assert el.num_edges == 0


class TestCliParser:
    def test_build_parser_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["solve", "g.el", "--algorithm", "sv"])
        assert args.command == "solve"
        assert args.algorithm == "sv"

    def test_parser_requires_command(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([])
