"""Tests for the full Afforest algorithm (vectorized and simulated)."""

import numpy as np
import pytest

from repro import engine
from repro.analysis.verify import equivalent_labelings, is_valid_labeling
from repro.core import afforest
from repro.engine import SimulatedBackend
from repro.errors import ConfigurationError
from repro.generators import (
    component_fraction_graph,
    kronecker_graph,
    uniform_random_graph,
)
from repro.parallel import MemoryTrace, SimulatedMachine
from repro.unionfind import sequential_components


class TestCorrectness:
    @pytest.mark.parametrize("rounds", [0, 1, 2, 4])
    @pytest.mark.parametrize("skip", [True, False])
    def test_fixture_graphs(self, mixed_graph, rounds, skip):
        r = afforest(mixed_graph, neighbor_rounds=rounds, skip_largest=skip)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_empty(self, empty_graph):
        r = afforest(empty_graph)
        assert r.labels.shape == (0,)
        assert r.num_components == 0

    def test_single_vertex(self, single_vertex):
        r = afforest(single_vertex)
        assert r.labels.tolist() == [0]

    def test_isolated(self, isolated_vertices):
        r = afforest(isolated_vertices)
        assert r.num_components == 5

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, random_graph_factory, seed):
        g = random_graph_factory(50, 90, seed)
        r = afforest(g, seed=seed)
        assert is_valid_labeling(g, r.labels)

    def test_generator_families(self):
        for g in (
            uniform_random_graph(400, edge_factor=4, seed=0),
            kronecker_graph(9, edge_factor=8, seed=1),
            component_fraction_graph(600, 0.2, edge_factor=6, seed=2),
        ):
            r = afforest(g)
            assert is_valid_labeling(g, r.labels)

    def test_rejects_negative_rounds(self, mixed_graph):
        with pytest.raises(ConfigurationError):
            afforest(mixed_graph, neighbor_rounds=-1)


class TestWorkCounters:
    def test_skip_avoids_final_edges_on_giant(self):
        g = uniform_random_graph(2000, edge_factor=8, seed=0)
        with_skip = afforest(g, skip_largest=True)
        without = afforest(g, skip_largest=False)
        assert with_skip.edges_skipped > 0
        assert with_skip.edges_final < without.edges_final
        assert with_skip.skip_fraction > 0.9  # single giant component

    def test_sampled_edges_bounded_by_rounds(self):
        g = uniform_random_graph(500, edge_factor=8, seed=1)
        r = afforest(g, neighbor_rounds=3)
        assert r.edges_sampled <= 3 * g.num_vertices

    def test_edge_accounting_consistent(self):
        g = kronecker_graph(8, edge_factor=8, seed=2)
        r = afforest(g, skip_largest=True)
        # sampled + final + skipped = all directed slots.
        assert (
            r.edges_sampled + r.edges_final + r.edges_skipped
            == g.num_directed_edges
        )

    def test_noskip_processes_every_slot(self):
        g = kronecker_graph(8, edge_factor=8, seed=3)
        r = afforest(g, skip_largest=False)
        assert r.edges_touched == g.num_directed_edges
        assert r.edges_skipped == 0

    def test_largest_label_identified(self):
        g = uniform_random_graph(1000, edge_factor=8, seed=4)
        r = afforest(g)
        # Single giant component: its label is the minimum vertex (0).
        assert r.largest_label == 0


def _afforest_simulated(graph, machine, **kwargs):
    """Afforest on the simulated machine, via the engine registry."""
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )


class TestSimulated:
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_matches_vectorized(self, workers, mixed_graph):
        m = SimulatedMachine(workers, schedule="cyclic")
        r = _afforest_simulated(mixed_graph, m)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_random_interleavings(self, random_graph_factory):
        for seed in range(6):
            g = random_graph_factory(30, 50, seed)
            m = SimulatedMachine(
                4, schedule="cyclic", interleave="random", seed=seed
            )
            r = _afforest_simulated(g, m, seed=seed)
            assert equivalent_labelings(r.labels, sequential_components(g))

    def test_phase_structure(self, two_cliques):
        m = SimulatedMachine(2)
        _afforest_simulated(two_cliques, m, neighbor_rounds=2)
        labels = [p.label for p in m.stats.phases]
        assert labels == ["I", "L0", "C0", "L1", "C1", "F", "H", "C*"]

    def test_noskip_has_no_find_phase(self, two_cliques):
        m = SimulatedMachine(2)
        _afforest_simulated(two_cliques, m, skip_largest=False)
        labels = [p.label for p in m.stats.phases]
        assert "F" not in labels

    def test_trace_capture(self, two_cliques):
        trace = MemoryTrace()
        m = SimulatedMachine(2, trace=trace)
        _afforest_simulated(two_cliques, m)
        ta = trace.finalize()
        assert ta.num_events == m.stats.total_work

    def test_skip_counters(self):
        g = uniform_random_graph(300, edge_factor=8, seed=5)
        m = SimulatedMachine(4)
        r = _afforest_simulated(g, m)
        assert r.edges_skipped > 0
        # Same accounting identity as the vectorized driver.
        assert (
            r.edges_sampled + r.edges_final + r.edges_skipped
            == g.num_directed_edges
        )

    def test_empty_graph(self, empty_graph):
        m = SimulatedMachine(2)
        r = _afforest_simulated(empty_graph, m)
        assert r.labels.shape == (0,)


class TestSamplingModes:
    @pytest.mark.parametrize("sampling", ["first", "random"])
    @pytest.mark.parametrize("seed", range(4))
    def test_both_modes_exact(self, random_graph_factory, sampling, seed):
        g = random_graph_factory(60, 110, seed)
        r = afforest(g, sampling=sampling, seed=seed)
        assert is_valid_labeling(g, r.labels)

    def test_random_mode_reprocesses(self):
        """Random sampling can't track consumed slots, so its final phase
        starts at slot 0 — the trade-off Sec. VI-A cites for first-k."""
        g = kronecker_graph(9, edge_factor=8, seed=1)
        first = afforest(g, skip_largest=False, sampling="first")
        random_mode = afforest(g, skip_largest=False, sampling="random")
        assert (
            random_mode.edges_final
            == g.num_directed_edges
        )
        assert first.edges_final < random_mode.edges_final

    def test_unknown_mode_rejected(self, mixed_graph):
        with pytest.raises(ConfigurationError):
            afforest(mixed_graph, sampling="stratified")

    def test_random_mode_accounting(self):
        g = uniform_random_graph(300, edge_factor=6, seed=2)
        r = afforest(g, sampling="random", seed=3)
        # final + skipped covers every slot (sampled slots recounted).
        assert r.edges_final + r.edges_skipped == g.num_directed_edges


class TestProfiling:
    def test_profile_disabled_by_default(self, mixed_graph):
        r = afforest(mixed_graph)
        assert r.phase_seconds == {}

    def test_profile_records_all_phases(self):
        g = uniform_random_graph(500, edge_factor=6, seed=0)
        r = afforest(g, profile=True)
        assert {"L0", "C0", "L1", "C1", "F", "H-gather", "H", "C*"} <= set(
            r.phase_seconds
        )
        assert all(v >= 0.0 for v in r.phase_seconds.values())

    def test_profile_noskip_has_no_find_phase(self):
        g = uniform_random_graph(200, edge_factor=4, seed=1)
        r = afforest(g, skip_largest=False, profile=True)
        assert "F" not in r.phase_seconds

    def test_profile_does_not_change_result(self):
        g = uniform_random_graph(300, edge_factor=4, seed=2)
        a = afforest(g, profile=True)
        b = afforest(g, profile=False)
        assert np.array_equal(a.labels, b.labels)


class TestDynamicScheduleIntegration:
    def test_afforest_simulated_on_dynamic_schedule(self):
        g = uniform_random_graph(200, edge_factor=4, seed=6)
        m = SimulatedMachine(4, schedule="dynamic", chunk_size=8)
        r = _afforest_simulated(g, m)
        assert equivalent_labelings(r.labels, sequential_components(g))

    def test_sv_simulated_on_dynamic_schedule(self):
        g = uniform_random_graph(150, edge_factor=4, seed=7)
        m = SimulatedMachine(3, schedule="dynamic", chunk_size=4)
        r = engine.run("sv", g, backend=SimulatedBackend(m))
        assert equivalent_labelings(r.labels, sequential_components(g))
