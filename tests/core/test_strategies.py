"""Unit tests for subgraph partitioning strategies."""

import numpy as np
import pytest

from repro.generators import chung_lu_graph, grid_graph, kronecker_graph

from repro.constants import VERTEX_DTYPE
from repro.core.link import link_batch
from repro.core.strategies import (
    STRATEGIES,
    neighbor_sampling,
    optimal_sampling,
    row_sampling,
    uniform_edge_sampling,
)
from repro.errors import ConfigurationError
from repro.graph.properties import component_census
from repro.unionfind import ParentArray, sequential_components
from repro.analysis.verify import equivalent_labelings


from repro.graph import from_edge_list

GRAPH_FAMILIES = {
    "powerlaw": lambda: chung_lu_graph(200, exponent=2.1, seed=2),
    "lattice": lambda: grid_graph(9, 9),
    "kron": lambda: kronecker_graph(scale=7, seed=4),
    "empty": lambda: from_edge_list([], num_vertices=0),
    "singleton": lambda: from_edge_list([], num_vertices=1),
    "isolated": lambda: from_edge_list([], num_vertices=7),
}


def batch_edge_multiset(batches, n):
    keys = []
    for b in batches:
        keys.extend((b.src * np.int64(max(n, 1)) + b.dst).tolist())
    return sorted(keys)


def graph_edge_multiset(graph):
    src, dst = graph.edge_array()
    return sorted((src * np.int64(max(graph.num_vertices, 1)) + dst).tolist())


@pytest.mark.parametrize("name", sorted(STRATEGIES))
class TestCommonContract:
    def test_covers_every_directed_edge_once(self, name, mixed_graph):
        batches = STRATEGIES[name](mixed_graph)
        assert batch_edge_multiset(batches, mixed_graph.num_vertices) == \
            graph_edge_multiset(mixed_graph)

    def test_replay_produces_correct_components(self, name, mixed_graph):
        batches = STRATEGIES[name](mixed_graph)
        pi = np.arange(mixed_graph.num_vertices, dtype=VERTEX_DTYPE)
        for b in batches:
            link_batch(pi, b.src, b.dst)
        assert equivalent_labelings(
            ParentArray(pi).labels(), sequential_components(mixed_graph)
        )

    def test_random_graphs_covered(self, name, random_graph_factory):
        g = random_graph_factory(30, 60, seed=11)
        batches = STRATEGIES[name](g)
        assert batch_edge_multiset(batches, g.num_vertices) == \
            graph_edge_multiset(g)

    @pytest.mark.parametrize(
        "family",
        ["powerlaw", "lattice", "kron", "empty", "singleton", "isolated"],
    )
    def test_graph_families_covered_exactly_once(self, name, family):
        """Every directed edge slot appears in exactly one batch."""
        g = GRAPH_FAMILIES[family]()
        batches = STRATEGIES[name](g)
        assert batch_edge_multiset(batches, g.num_vertices) == \
            graph_edge_multiset(g)


class TestRowSampling:
    def test_batch_count(self, mixed_graph):
        assert len(row_sampling(mixed_graph, 4)) == 4

    def test_rejects_zero_batches(self, mixed_graph):
        with pytest.raises(ConfigurationError):
            row_sampling(mixed_graph, 0)

    def test_batches_respect_row_ranges(self, two_cliques):
        batches = row_sampling(two_cliques, 2)
        # First half of rows only contains vertices 0..3 as sources.
        assert batches[0].src.max() <= 3
        assert batches[1].src.min() >= 4


class TestUniformSampling:
    def test_batch_sizes_balanced(self, two_cliques):
        batches = uniform_edge_sampling(two_cliques, 4, seed=0)
        sizes = [b.num_edges for b in batches]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self, two_cliques):
        a = uniform_edge_sampling(two_cliques, 3, seed=5)
        b = uniform_edge_sampling(two_cliques, 3, seed=5)
        for x, y in zip(a, b):
            assert np.array_equal(x.src, y.src)


class TestNeighborSampling:
    def test_round_structure(self, star_graph):
        batches = neighbor_sampling(star_graph, rounds=2)
        assert len(batches) == 3
        # Round 0 contains every non-isolated vertex once.
        assert batches[0].num_edges == 8
        # Round 1 only the center has a second neighbour.
        assert batches[1].num_edges == 1
        assert batches[1].src.tolist() == [0]

    def test_degree_one_edges_in_round_zero(self, path_graph):
        batches = neighbor_sampling(path_graph, rounds=1)
        assert 0 in batches[0].src.tolist()
        assert 5 in batches[0].src.tolist()

    def test_zero_rounds_everything_in_remainder(self, mixed_graph):
        batches = neighbor_sampling(mixed_graph, rounds=0)
        assert len(batches) == 1
        assert batches[0].num_edges == mixed_graph.num_directed_edges

    def test_rejects_negative_rounds(self, mixed_graph):
        with pytest.raises(ConfigurationError):
            neighbor_sampling(mixed_graph, rounds=-1)

    def test_many_rounds_empty_remainder(self, path_graph):
        batches = neighbor_sampling(path_graph, rounds=10)
        assert batches[-1].num_edges == 0


class TestOptimalSampling:
    def test_first_batch_is_spanning_forest_sized(self, mixed_graph):
        census = component_census(mixed_graph)
        batches = optimal_sampling(mixed_graph)
        sf_directed = 2 * (mixed_graph.num_vertices - census.num_components)
        assert batches[0].num_edges == sf_directed

    def test_first_batch_fully_links(self, two_cliques):
        batches = optimal_sampling(two_cliques)
        pi = np.arange(8, dtype=VERTEX_DTYPE)
        link_batch(pi, batches[0].src, batches[0].dst)
        labels = ParentArray(pi).labels()
        assert len(set(labels.tolist())) == 2
