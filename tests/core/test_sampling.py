"""Unit tests for giant-component sampling."""

import numpy as np
import pytest

from repro.core.sampling import (
    approximate_largest_label,
    exact_largest_label,
    most_frequent_element,
)
from repro.errors import ConfigurationError


class TestMostFrequent:
    def test_dominant_value_found(self):
        values = np.array([7] * 90 + [3] * 10)
        rng = np.random.default_rng(0)
        assert most_frequent_element(values, 64, rng=rng) == 7

    def test_unanimous(self):
        assert most_frequent_element(np.full(50, 4), 16) == 4

    def test_sample_larger_than_array(self):
        values = np.array([1, 1, 1, 2])
        assert most_frequent_element(values, 1000) == 1

    def test_deterministic_with_rng(self):
        values = np.arange(100)
        a = most_frequent_element(values, 10, rng=np.random.default_rng(5))
        b = most_frequent_element(values, 10, rng=np.random.default_rng(5))
        assert a == b

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            most_frequent_element(np.array([]), 4)

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            most_frequent_element(np.array([1]), 0)


class TestLargestLabel:
    def test_compressed_pi_giant_found(self):
        # Giant component labelled 0 covering 80%.
        pi = np.zeros(1000, dtype=np.int64)
        pi[800:] = np.arange(800, 1000)
        assert approximate_largest_label(pi, 256, rng=np.random.default_rng(1)) == 0

    def test_exact_scan(self):
        pi = np.array([0, 0, 0, 3, 3, 5])
        assert exact_largest_label(pi) == 0

    def test_exact_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            exact_largest_label(np.array([], dtype=np.int64))

    def test_probabilistic_matches_exact_on_giants(self):
        rng = np.random.default_rng(2)
        for frac in (0.5, 0.7, 0.9):
            n = 2000
            pi = np.arange(n, dtype=np.int64)
            giant = rng.choice(n, size=int(frac * n), replace=False)
            pi[giant] = 42  # depth-1 tree rooted at 42 (plus 42 itself)
            pi[42] = 42
            approx = approximate_largest_label(pi, 512, rng=rng)
            assert approx == exact_largest_label(pi) == 42
