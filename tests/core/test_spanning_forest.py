"""Unit tests for spanning forest extraction."""

import numpy as np

from repro.analysis.verify import equivalent_labelings
from repro.core.spanning_forest import spanning_forest, spanning_forest_size
from repro.graph.builder import build_csr
from repro.graph.properties import component_census
from repro.unionfind import sequential_components


class TestSpanningForest:
    def test_size_is_v_minus_c(self, mixed_graph):
        census = component_census(mixed_graph)
        sf = spanning_forest(mixed_graph)
        assert sf.num_edges == mixed_graph.num_vertices - census.num_components
        assert spanning_forest_size(mixed_graph) == sf.num_edges

    def test_preserves_connectivity(self, mixed_graph):
        sf = spanning_forest(mixed_graph)
        # EdgeList carries the full vertex count, so the SF graph keeps
        # isolated vertices and the partitions are directly comparable.
        orig = sequential_components(mixed_graph)
        reduced = sequential_components(build_csr(sf))
        assert equivalent_labelings(orig, reduced)

    def test_acyclic(self, two_cliques):
        sf = spanning_forest(two_cliques)
        # |V| - C edges and preserved connectivity => forest (acyclic).
        assert sf.num_edges == 8 - 2

    def test_tree_input_returns_all_edges(self, path_graph):
        sf = spanning_forest(path_graph)
        assert sf.num_edges == path_graph.num_edges

    def test_empty_graph(self, empty_graph):
        assert spanning_forest(empty_graph).num_edges == 0
        assert spanning_forest_size(empty_graph) == 0

    def test_isolated_vertices(self, isolated_vertices):
        assert spanning_forest(isolated_vertices).num_edges == 0

    def test_random_graphs(self, random_graph_factory):
        for seed in range(6):
            g = random_graph_factory(40, 70, seed)
            census = component_census(g)
            sf = spanning_forest(g)
            assert sf.num_edges == g.num_vertices - census.num_components
            orig = sequential_components(g)
            reduced = sequential_components(build_csr(sf))
            assert equivalent_labelings(orig, reduced)


class TestBatchSpanningForest:
    def test_size_matches_sequential(self, mixed_graph):
        from repro.core.spanning_forest import spanning_forest_batch

        sf = spanning_forest_batch(mixed_graph)
        assert sf.num_edges == spanning_forest_size(mixed_graph)

    def test_preserves_connectivity(self, random_graph_factory):
        from repro.core.spanning_forest import spanning_forest_batch

        for seed in range(8):
            g = random_graph_factory(50, 120, seed)
            sf = spanning_forest_batch(g)
            assert sf.num_edges == spanning_forest_size(g)
            orig = sequential_components(g)
            reduced = sequential_components(build_csr(sf))
            assert equivalent_labelings(orig, reduced)

    def test_credited_edges_are_graph_edges(self, two_cliques):
        from repro.core.spanning_forest import spanning_forest_batch

        sf = spanning_forest_batch(two_cliques)
        for u, v in sf.as_pairs():
            assert two_cliques.has_edge(u, v)

    def test_empty_and_isolated(self, empty_graph, isolated_vertices):
        from repro.core.spanning_forest import spanning_forest_batch

        assert spanning_forest_batch(empty_graph).num_edges == 0
        assert spanning_forest_batch(isolated_vertices).num_edges == 0

    def test_generator_families(self):
        from repro.core.spanning_forest import spanning_forest_batch
        from repro.generators import kronecker_graph, uniform_random_graph
        from repro.graph.properties import component_census

        for g in (
            uniform_random_graph(400, edge_factor=4, seed=0),
            kronecker_graph(9, edge_factor=8, seed=1),
        ):
            sf = spanning_forest_batch(g)
            census = component_census(g)
            assert sf.num_edges == g.num_vertices - census.num_components
