"""Unit tests for the compress primitive (all three forms)."""

import numpy as np
import pytest

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress, compress_all, compress_kernel
from repro.parallel import SimulatedMachine
from repro.unionfind import ParentArray


def chain(n):
    """pi = [0, 0, 1, 2, ...]: one tree of depth n-1."""
    pi = np.arange(n, dtype=VERTEX_DTYPE)
    pi[1:] = np.arange(n - 1, dtype=VERTEX_DTYPE)
    return pi


class TestScalarCompress:
    def test_flattens_single_vertex_path(self):
        pi = chain(5)
        steps = compress(pi, 4)
        assert pi[4] == 0
        assert steps == 3

    def test_noop_on_root(self):
        pi = np.arange(3, dtype=VERTEX_DTYPE)
        assert compress(pi, 0) == 0

    def test_noop_on_depth_one(self):
        pi = np.array([0, 0, 0], dtype=VERTEX_DTYPE)
        assert compress(pi, 2) == 0

    def test_preserves_connectivity(self):
        pi = chain(6)
        before = ParentArray(pi).labels()
        compress(pi, 5)
        assert np.array_equal(ParentArray(pi).labels(), before)

    def test_applied_to_all_gives_flat_forest(self):
        pi = chain(8)
        for v in range(8):
            compress(pi, v)
        assert ParentArray(pi).is_flat()


class TestCompressAll:
    def test_flattens_everything(self):
        pi = chain(16)
        passes = compress_all(pi)
        assert ParentArray(pi).is_flat()
        assert np.all(pi == 0)
        # Pointer doubling: log2(15) ~ 4 passes.
        assert passes <= 5

    def test_idempotent(self):
        pi = chain(8)
        compress_all(pi)
        snapshot = pi.copy()
        assert compress_all(pi) == 0
        assert np.array_equal(pi, snapshot)

    def test_multiple_trees(self):
        pi = np.array([0, 0, 1, 3, 3, 4], dtype=VERTEX_DTYPE)
        compress_all(pi)
        assert pi.tolist() == [0, 0, 0, 3, 3, 3]

    def test_empty(self):
        pi = np.empty(0, dtype=VERTEX_DTYPE)
        assert compress_all(pi) == 0

    def test_preserves_labels(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = 20
            # Random valid downward-pointing forest.
            pi = np.array(
                [int(rng.integers(0, v + 1)) for v in range(n)],
                dtype=VERTEX_DTYPE,
            )
            before = ParentArray(pi).labels()
            compress_all(pi)
            assert np.array_equal(ParentArray(pi).labels(), before)
            assert ParentArray(pi).is_flat()


class TestCompressKernel:
    @pytest.mark.parametrize("interleave", ["roundrobin", "random", "sequential"])
    def test_concurrent_compress_flattens(self, interleave):
        pi = chain(12)
        before = ParentArray(pi).labels()
        m = SimulatedMachine(4, schedule="cyclic", interleave=interleave, seed=1)
        m.parallel_for(12, compress_kernel, pi)
        assert ParentArray(pi).is_flat()
        assert np.array_equal(ParentArray(pi).labels(), before)

    def test_concurrent_compress_random_forests(self):
        rng = np.random.default_rng(3)
        for seed in range(8):
            n = 24
            pi = np.array(
                [int(rng.integers(0, v + 1)) for v in range(n)],
                dtype=VERTEX_DTYPE,
            )
            before = ParentArray(pi).labels()
            m = SimulatedMachine(
                5, schedule="cyclic", interleave="random", seed=seed
            )
            m.parallel_for(n, compress_kernel, pi)
            assert ParentArray(pi).is_flat()
            assert np.array_equal(ParentArray(pi).labels(), before)

    def test_counts_reads_and_writes(self):
        pi = chain(4)
        m = SimulatedMachine(1)
        ph = m.parallel_for(4, compress_kernel, pi)
        assert ph.reads > 0
        assert ph.writes > 0
