"""Tests for incremental connectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import equivalent_labelings
from repro.core.incremental import IncrementalConnectivity
from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.unionfind import SequentialUnionFind, sequential_components


class TestBasics:
    def test_initial_state(self):
        inc = IncrementalConnectivity(5)
        assert inc.num_components == 5
        assert not inc.connected(0, 4)

    def test_add_edge_merges(self):
        inc = IncrementalConnectivity(4)
        assert inc.add_edge(0, 3)
        assert inc.connected(0, 3)
        assert inc.num_components == 3

    def test_duplicate_edge_no_merge(self):
        inc = IncrementalConnectivity(4)
        inc.add_edge(0, 1)
        assert not inc.add_edge(1, 0)
        assert inc.num_components == 3

    def test_self_loop_no_merge(self):
        inc = IncrementalConnectivity(3)
        assert not inc.add_edge(1, 1)
        assert inc.num_components == 3

    def test_transitivity(self):
        inc = IncrementalConnectivity(6)
        inc.add_edge(0, 1)
        inc.add_edge(2, 3)
        assert not inc.connected(0, 3)
        inc.add_edge(1, 2)
        assert inc.connected(0, 3)

    def test_find_compresses(self):
        inc = IncrementalConnectivity(8, compress_every=0)
        for i in range(7):
            inc.add_edge(i, i + 1)
        root = inc.find(7)
        assert root == inc.find(0)
        # After find, 7 points directly at the root.
        assert inc._pi[7] == root

    def test_labels_partition(self):
        inc = IncrementalConnectivity(6)
        inc.add_edge(0, 1)
        inc.add_edge(3, 4)
        labels = inc.labels()
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[2] != labels[0]

    def test_component_of(self):
        inc = IncrementalConnectivity(5)
        inc.add_edge(1, 3)
        assert inc.component_of(1).tolist() == [1, 3]

    def test_bounds_checked(self):
        inc = IncrementalConnectivity(3)
        with pytest.raises(ConfigurationError):
            inc.add_edge(0, 3)
        with pytest.raises(ConfigurationError):
            inc.find(-1)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            IncrementalConnectivity(-1)
        with pytest.raises(ConfigurationError):
            IncrementalConnectivity(4, compress_every=-1)


class TestBulk:
    def test_add_edges_counts_merges(self):
        inc = IncrementalConnectivity(6)
        merged = inc.add_edges(np.array([0, 2, 0]), np.array([1, 3, 1]))
        assert merged == 2
        assert inc.num_components == 4

    def test_from_graph(self):
        g = uniform_random_graph(300, edge_factor=4, seed=0)
        inc = IncrementalConnectivity.from_graph(g)
        assert equivalent_labelings(inc.labels(), sequential_components(g))

    def test_mixed_bulk_and_single(self):
        inc = IncrementalConnectivity(10)
        inc.add_edges(np.array([0, 1]), np.array([1, 2]))
        inc.add_edge(2, 3)
        inc.add_edges(np.array([5]), np.array([6]))
        assert inc.connected(0, 3)
        assert not inc.connected(0, 5)
        # Four merges total: {0,1},{1,2} bulk, {2,3} single, {5,6} bulk.
        assert inc.num_components == 10 - 4

    def test_rejects_mismatched_arrays(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.add_edges(np.array([0]), np.array([1, 2]))

    def test_rejects_out_of_range_bulk(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.add_edges(np.array([0]), np.array([9]))


class TestCompression:
    def test_periodic_compression_bounds_depth(self):
        inc = IncrementalConnectivity(100, compress_every=10)
        for i in range(99):
            inc.add_edge(i, i + 1)
        from repro.unionfind import ParentArray

        assert ParentArray(inc._pi).max_depth() <= 12

    def test_compress_every_zero_still_correct(self):
        inc = IncrementalConnectivity(50, compress_every=0)
        for i in range(49):
            inc.add_edge(i, i + 1)
        assert inc.num_components == 1


class TestBatchQueries:
    def _chain(self, n=40, compress_every=0):
        inc = IncrementalConnectivity(n, compress_every=compress_every)
        for i in range(n - 1):
            # Insert high-to-low so the forest grows deep chains when
            # periodic compression is off.
            inc.add_edge(n - 1 - i, n - 2 - i)
        return inc

    def test_roots_of_matches_scalar_find(self):
        inc = IncrementalConnectivity(20, compress_every=0)
        inc.add_edges(
            np.array([0, 2, 4, 0, 10]), np.array([1, 3, 5, 2, 11])
        )
        vs = np.arange(20)
        roots = inc.roots_of(vs)
        assert roots.tolist() == [inc.find(int(v)) for v in vs]

    def test_roots_of_does_not_mutate_pi(self):
        inc = self._chain()
        before = inc._pi.copy()
        inc.roots_of(np.arange(inc.num_vertices))
        assert np.array_equal(inc._pi, before)

    def test_same_component_batch(self):
        inc = IncrementalConnectivity(10)
        inc.add_edges(np.array([0, 1, 5]), np.array([1, 2, 6]))
        us = np.array([0, 0, 5, 3])
        vs = np.array([2, 5, 6, 3])
        assert inc.same_component_batch(us, vs).tolist() == [
            True, False, True, True,
        ]

    @pytest.mark.parametrize("compress_every", [0, 1, 4096])
    def test_batch_matches_scalar_on_random_stream(self, compress_every):
        rng = np.random.default_rng(11)
        n = 60
        inc = IncrementalConnectivity(n, compress_every=compress_every)
        inc.add_edges(rng.integers(0, n, 80), rng.integers(0, n, 80))
        us = rng.integers(0, n, 200)
        vs = rng.integers(0, n, 200)
        batch = inc.same_component_batch(us, vs)
        scalar = [inc.connected(int(u), int(v)) for u, v in zip(us, vs)]
        assert batch.tolist() == scalar

    def test_component_sizes(self):
        inc = IncrementalConnectivity(8)
        inc.add_edges(np.array([0, 1, 4]), np.array([1, 2, 5]))
        sizes = inc.component_sizes(np.array([0, 2, 4, 7]))
        assert sizes.tolist() == [3, 3, 2, 1]

    def test_component_sizes_compresses(self):
        inc = self._chain()
        inc.component_sizes(np.array([0]))
        # The census path full-compresses as a documented side effect.
        assert np.array_equal(inc._pi, np.zeros_like(inc._pi))

    def test_batch_rejects_out_of_range(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.roots_of(np.array([0, 4]))
        with pytest.raises(ConfigurationError):
            inc.same_component_batch(np.array([-1]), np.array([0]))
        with pytest.raises(ConfigurationError):
            inc.component_sizes(np.array([17]))

    def test_batch_rejects_mismatched_lengths(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.same_component_batch(np.array([0]), np.array([1, 2]))

    def test_empty_batches(self):
        inc = IncrementalConnectivity(4)
        empty = np.empty(0, dtype=np.int64)
        assert inc.roots_of(empty).shape == (0,)
        assert inc.same_component_batch(empty, empty).shape == (0,)
        assert inc.component_sizes(empty).shape == (0,)


class TestLazySelfCompression:
    """The documented ``compress_every=0`` query paths stay exact."""

    def test_deep_chain_queries_exact_without_compression(self):
        n = 30
        inc = IncrementalConnectivity(n, compress_every=0)
        for i in range(n - 1, 0, -1):
            inc.add_edge(i, i - 1)
        # Batch reads answer exactly without touching π...
        before = inc._pi.copy()
        assert inc.same_component_batch(
            np.array([0, n - 1]), np.array([n - 1, 0])
        ).all()
        assert np.array_equal(inc._pi, before)
        # ...scalar find compresses exactly the walked chain...
        root = inc.find(n - 1)
        assert root == 0
        assert inc._pi[n - 1] == 0
        # ...and labels() still full-compresses.
        assert np.array_equal(inc.labels(), np.zeros(n, dtype=inc._pi.dtype))

    def test_lazy_matches_eager_labels(self):
        rng = np.random.default_rng(23)
        n = 80
        lazy = IncrementalConnectivity(n, compress_every=0)
        eager = IncrementalConnectivity(n, compress_every=8)
        src, dst = rng.integers(0, n, 120), rng.integers(0, n, 120)
        lazy.add_edges(src, dst)
        eager.add_edges(src, dst)
        assert np.array_equal(lazy.labels(), eager.labels())


class TestFromLabels:
    def test_adopts_solved_labeling(self):
        import repro.engine as engine

        g = uniform_random_graph(400, edge_factor=3, seed=4)
        result = engine.run("afforest", g)
        inc = IncrementalConnectivity.from_labels(result.labels)
        assert inc.num_components == result.num_components
        assert np.array_equal(inc.labels(), result.labels)

    def test_copies_input(self):
        labels = np.array([0, 0, 2, 2])
        inc = IncrementalConnectivity.from_labels(labels)
        inc.add_edge(1, 3)
        assert labels.tolist() == [0, 0, 2, 2]

    def test_stream_continues_from_adopted_state(self):
        labels = np.array([0, 0, 2, 2, 4])
        inc = IncrementalConnectivity.from_labels(labels)
        assert inc.num_components == 3
        assert inc.add_edge(1, 2)
        assert inc.connected(0, 3)
        assert inc.num_components == 2

    def test_rejects_invalid_parent_array(self):
        from repro.errors import InvariantViolationError

        with pytest.raises(InvariantViolationError):
            IncrementalConnectivity.from_labels(np.array([1, 2, 0]))


class TestAgainstOracle:
    @given(
        st.integers(2, 25),
        st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=60),
        st.sampled_from([0, 1, 7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_matches_union_find(self, n, edges, compress_every):
        edges = [(u % n, v % n) for u, v in edges]
        inc = IncrementalConnectivity(n, compress_every=compress_every)
        uf = SequentialUnionFind(n)
        for u, v in edges:
            merged_inc = inc.add_edge(u, v)
            merged_uf = uf.union(u, v)
            assert merged_inc == merged_uf
            assert inc.num_components == uf.num_sets
        for u in range(n):
            for v in range(u + 1, n):
                assert inc.connected(u, v) == uf.connected(u, v)
