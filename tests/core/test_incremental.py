"""Tests for incremental connectivity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import equivalent_labelings
from repro.core.incremental import IncrementalConnectivity
from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.unionfind import SequentialUnionFind, sequential_components


class TestBasics:
    def test_initial_state(self):
        inc = IncrementalConnectivity(5)
        assert inc.num_components == 5
        assert not inc.connected(0, 4)

    def test_add_edge_merges(self):
        inc = IncrementalConnectivity(4)
        assert inc.add_edge(0, 3)
        assert inc.connected(0, 3)
        assert inc.num_components == 3

    def test_duplicate_edge_no_merge(self):
        inc = IncrementalConnectivity(4)
        inc.add_edge(0, 1)
        assert not inc.add_edge(1, 0)
        assert inc.num_components == 3

    def test_self_loop_no_merge(self):
        inc = IncrementalConnectivity(3)
        assert not inc.add_edge(1, 1)
        assert inc.num_components == 3

    def test_transitivity(self):
        inc = IncrementalConnectivity(6)
        inc.add_edge(0, 1)
        inc.add_edge(2, 3)
        assert not inc.connected(0, 3)
        inc.add_edge(1, 2)
        assert inc.connected(0, 3)

    def test_find_compresses(self):
        inc = IncrementalConnectivity(8, compress_every=0)
        for i in range(7):
            inc.add_edge(i, i + 1)
        root = inc.find(7)
        assert root == inc.find(0)
        # After find, 7 points directly at the root.
        assert inc._pi[7] == root

    def test_labels_partition(self):
        inc = IncrementalConnectivity(6)
        inc.add_edge(0, 1)
        inc.add_edge(3, 4)
        labels = inc.labels()
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[2] != labels[0]

    def test_component_of(self):
        inc = IncrementalConnectivity(5)
        inc.add_edge(1, 3)
        assert inc.component_of(1).tolist() == [1, 3]

    def test_bounds_checked(self):
        inc = IncrementalConnectivity(3)
        with pytest.raises(ConfigurationError):
            inc.add_edge(0, 3)
        with pytest.raises(ConfigurationError):
            inc.find(-1)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            IncrementalConnectivity(-1)
        with pytest.raises(ConfigurationError):
            IncrementalConnectivity(4, compress_every=-1)


class TestBulk:
    def test_add_edges_counts_merges(self):
        inc = IncrementalConnectivity(6)
        merged = inc.add_edges(np.array([0, 2, 0]), np.array([1, 3, 1]))
        assert merged == 2
        assert inc.num_components == 4

    def test_from_graph(self):
        g = uniform_random_graph(300, edge_factor=4, seed=0)
        inc = IncrementalConnectivity.from_graph(g)
        assert equivalent_labelings(inc.labels(), sequential_components(g))

    def test_mixed_bulk_and_single(self):
        inc = IncrementalConnectivity(10)
        inc.add_edges(np.array([0, 1]), np.array([1, 2]))
        inc.add_edge(2, 3)
        inc.add_edges(np.array([5]), np.array([6]))
        assert inc.connected(0, 3)
        assert not inc.connected(0, 5)
        # Four merges total: {0,1},{1,2} bulk, {2,3} single, {5,6} bulk.
        assert inc.num_components == 10 - 4

    def test_rejects_mismatched_arrays(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.add_edges(np.array([0]), np.array([1, 2]))

    def test_rejects_out_of_range_bulk(self):
        inc = IncrementalConnectivity(4)
        with pytest.raises(ConfigurationError):
            inc.add_edges(np.array([0]), np.array([9]))


class TestCompression:
    def test_periodic_compression_bounds_depth(self):
        inc = IncrementalConnectivity(100, compress_every=10)
        for i in range(99):
            inc.add_edge(i, i + 1)
        from repro.unionfind import ParentArray

        assert ParentArray(inc._pi).max_depth() <= 12

    def test_compress_every_zero_still_correct(self):
        inc = IncrementalConnectivity(50, compress_every=0)
        for i in range(49):
            inc.add_edge(i, i + 1)
        assert inc.num_components == 1


class TestAgainstOracle:
    @given(
        st.integers(2, 25),
        st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=60),
        st.sampled_from([0, 1, 7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_matches_union_find(self, n, edges, compress_every):
        edges = [(u % n, v % n) for u, v in edges]
        inc = IncrementalConnectivity(n, compress_every=compress_every)
        uf = SequentialUnionFind(n)
        for u, v in edges:
            merged_inc = inc.add_edge(u, v)
            merged_uf = uf.union(u, v)
            assert merged_inc == merged_uf
            assert inc.num_components == uf.num_sets
        for u in range(n):
            for v in range(u + 1, n):
                assert inc.connected(u, v) == uf.connected(u, v)
