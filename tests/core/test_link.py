"""Unit tests for the link primitive (all three forms)."""

import numpy as np
import pytest

from repro.constants import VERTEX_DTYPE
from repro.core.link import LinkCounters, link, link_batch, link_kernel
from repro.errors import ConvergenceError
from repro.parallel import SimulatedMachine
from repro.unionfind import ParentArray


def fresh(n):
    return np.arange(n, dtype=VERTEX_DTYPE)


def same_tree(pi, u, v):
    return ParentArray(pi).find_root(u) == ParentArray(pi).find_root(v)


class TestScalarLink:
    def test_merges_singletons(self):
        pi = fresh(4)
        assert link(pi, 1, 3)
        assert same_tree(pi, 1, 3)
        assert ParentArray(pi).holds_invariant1()

    def test_idempotent(self):
        pi = fresh(4)
        link(pi, 1, 3)
        assert not link(pi, 1, 3)  # already same tree
        assert not link(pi, 3, 1)

    def test_hooks_higher_under_lower(self):
        pi = fresh(5)
        link(pi, 2, 4)
        assert pi[4] == 2

    def test_merges_deep_chains(self):
        # Two chains: 0<-1<-2 and 3<-4<-5 (pi[x] points down-index).
        pi = np.array([0, 0, 1, 3, 3, 4], dtype=VERTEX_DTYPE)
        link(pi, 2, 5)
        assert same_tree(pi, 0, 3)
        assert ParentArray(pi).holds_invariant1()
        assert not ParentArray(pi).has_cycle()

    def test_self_edge_is_noop(self):
        pi = fresh(3)
        assert not link(pi, 1, 1)
        assert pi.tolist() == [0, 1, 2]

    def test_counters(self):
        pi = fresh(4)
        c = LinkCounters()
        link(pi, 0, 1, c)
        link(pi, 0, 1, c)  # no-op edge: still one local iteration
        assert c.edges_processed == 2
        assert c.hooks == 1
        assert c.mean_iterations >= 1.0
        assert sum(c.iterations_histogram.values()) == 2

    def test_detects_corruption(self):
        # A 3-cycle in pi: the climb loop revisits the same states forever,
        # so the safety cap must fire instead of hanging.
        pi = np.array([1, 2, 0], dtype=VERTEX_DTYPE)
        with pytest.raises(ConvergenceError):
            link(pi, 0, 1)

    def test_transitive_merging(self):
        pi = fresh(6)
        link(pi, 0, 1)
        link(pi, 2, 3)
        link(pi, 1, 2)
        for v in range(4):
            assert same_tree(pi, 0, v)
        assert not same_tree(pi, 0, 4)


class TestBatchLink:
    def test_matches_scalar_result(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(2, 40))
            m = int(rng.integers(0, 80))
            src = rng.integers(0, n, size=m).astype(VERTEX_DTYPE)
            dst = rng.integers(0, n, size=m).astype(VERTEX_DTYPE)
            pi_batch = fresh(n)
            link_batch(pi_batch, src, dst)
            pi_scalar = fresh(n)
            for u, v in zip(src.tolist(), dst.tolist()):
                link(pi_scalar, u, v)
            assert np.array_equal(
                ParentArray(pi_batch).labels(),
                ParentArray(pi_scalar).labels(),
            )

    def test_empty_batch(self):
        pi = fresh(5)
        assert link_batch(pi, np.empty(0, dtype=VERTEX_DTYPE),
                          np.empty(0, dtype=VERTEX_DTYPE)) == 0
        assert pi.tolist() == [0, 1, 2, 3, 4]

    def test_preserves_invariant1(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            n = 30
            src = rng.integers(0, n, size=60).astype(VERTEX_DTYPE)
            dst = rng.integers(0, n, size=60).astype(VERTEX_DTYPE)
            pi = fresh(n)
            link_batch(pi, src, dst)
            p = ParentArray(pi)
            assert p.holds_invariant1()
            assert not p.has_cycle()

    def test_conflicting_hooks_resolve_to_min(self):
        # Edges (0,9) and (1,9): both want to hook 9; min label wins first,
        # the loser re-links and all three end in one tree.
        pi = fresh(10)
        link_batch(
            pi,
            np.array([0, 1], dtype=VERTEX_DTYPE),
            np.array([9, 9], dtype=VERTEX_DTYPE),
        )
        labels = ParentArray(pi).labels()
        assert labels[0] == labels[1] == labels[9] == 0

    def test_returns_round_count(self):
        pi = fresh(4)
        rounds = link_batch(
            pi, np.array([0], dtype=VERTEX_DTYPE), np.array([1], dtype=VERTEX_DTYPE)
        )
        assert rounds >= 1


class TestLinkKernel:
    def run_machine(self, n, edges, workers=3, interleave="roundrobin", seed=0):
        pi = fresh(n)
        src = np.asarray([e[0] for e in edges], dtype=VERTEX_DTYPE)
        dst = np.asarray([e[1] for e in edges], dtype=VERTEX_DTYPE)
        m = SimulatedMachine(workers, schedule="cyclic", interleave=interleave, seed=seed)
        m.parallel_for(len(edges), link_kernel, pi, src, dst)
        return pi

    def test_concurrent_links_converge(self):
        edges = [(0, 1), (1, 2), (2, 3), (4, 5), (3, 4)]
        pi = self.run_machine(6, edges)
        labels = ParentArray(pi).labels()
        assert len(set(labels.tolist())) == 1

    def test_concurrent_equivalent_to_scalar(self):
        rng = np.random.default_rng(2)
        for seed in range(10):
            n = 25
            edges = [
                (int(rng.integers(0, n)), int(rng.integers(0, n)))
                for _ in range(40)
            ]
            pi_con = self.run_machine(n, edges, workers=5,
                                      interleave="random", seed=seed)
            pi_seq = fresh(n)
            for u, v in edges:
                link(pi_seq, u, v)
            assert np.array_equal(
                ParentArray(pi_con).labels(), ParentArray(pi_seq).labels()
            )
            assert ParentArray(pi_con).holds_invariant1()
            assert not ParentArray(pi_con).has_cycle()

    def test_contention_produces_cas_failures(self):
        # A star of edges all hooking the same high vertex from different
        # low roots: workers race on the root's CAS.
        n = 32
        edges = [(i, n - 1) for i in range(8)]
        pi = fresh(n)
        src = np.asarray([e[0] for e in edges], dtype=VERTEX_DTYPE)
        dst = np.asarray([e[1] for e in edges], dtype=VERTEX_DTYPE)
        m = SimulatedMachine(8, schedule="cyclic")
        ph = m.parallel_for(len(edges), link_kernel, pi, src, dst)
        labels = ParentArray(pi).labels()
        assert len({int(labels[i]) for i in list(range(8)) + [n - 1]}) == 1
        assert ph.cas_attempts >= 1
