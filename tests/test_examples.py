"""Every example script must run to completion and tell its story.

Examples are executed in-process (runpy) with stdout captured, so they
stay green as the library evolves; a broken example is a broken tutorial.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["components: 4", "agrees", "kron scale 14"],
    "social_network_analysis.py": ["giant covers", "speedup over SV", "work profile"],
    "road_network_resilience.py": ["progressive closures", "reachable"],
    "sampling_strategies.py": ["linkage by % of edges", "neighbour rounds"],
    "simulated_machine_tour.py": ["afforest phases", "modeled scaling"],
    "distributed_components.py": ["merge_rounds", "traffic vs density"],
    "streaming_connectivity.py": [
        "edges_seen",
        "merges",
        "serving layer",
        "epochs published",
        "identical to batch re-solve? True",
    ],
}


def test_every_example_has_expectations():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS), (
        "examples and EXPECTED_SNIPPETS out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in out, f"{script}: missing {snippet!r} in output"
