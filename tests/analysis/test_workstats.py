"""Tests for the Table II work statistics."""

import pytest

from repro.analysis.workstats import afforest_workstats, sv_workstats
from repro.generators import kronecker_graph, uniform_random_graph


class TestSVStats:
    def test_fields(self, mixed_graph):
        s = sv_workstats(mixed_graph)
        assert s.algorithm == "sv"
        assert s.iterations >= 1
        assert s.edges_processed > 0

    def test_depth_tracked(self):
        g = uniform_random_graph(200, edge_factor=6, seed=0)
        s = sv_workstats(g)
        assert s.max_tree_depth >= 1


class TestAfforestStats:
    def test_fields(self, mixed_graph):
        s = afforest_workstats(mixed_graph)
        assert s.algorithm == "afforest"
        assert s.edges_processed == mixed_graph.num_directed_edges

    def test_mean_local_iterations_near_one(self):
        """The paper's Table II headline: Afforest's average per-edge link
        iterations is close to 1 on every graph family."""
        for g in (
            uniform_random_graph(400, edge_factor=8, seed=1),
            kronecker_graph(9, edge_factor=8, seed=2),
        ):
            s = afforest_workstats(g)
            assert 1.0 <= s.iterations < 1.5

    def test_depth_stays_small(self):
        g = uniform_random_graph(300, edge_factor=6, seed=3)
        s = afforest_workstats(g)
        # Compress interleaving keeps trees shallow.
        assert s.max_tree_depth <= 32


class TestComparison:
    def test_paper_shape_afforest_vs_sv(self):
        """Afforest's local iteration count ~1 while SV's outer iteration
        count is > 1; depths comparable (Table II's conclusion)."""
        g = uniform_random_graph(300, edge_factor=8, seed=4)
        sv = sv_workstats(g)
        af = afforest_workstats(g)
        assert af.iterations < sv.iterations
        assert sv.iterations >= 2
