"""Empirical validation of the Sec. IV-B sampling theory."""

import numpy as np
import pytest

from repro.analysis.theory import (
    degree_one_miss_rate,
    expected_sampled_edges,
    frieze_threshold,
    sample_edges_uniform,
    uniform_sampling_experiment,
)
from repro.errors import ConfigurationError
from repro.generators import random_regular_graph, uniform_random_graph
from repro.graph import GraphBuilder


class TestArithmetic:
    def test_threshold(self):
        assert frieze_threshold(8, 0.0) == pytest.approx(1 / 8)
        assert frieze_threshold(8, 0.6) == pytest.approx(1.6 / 8)

    def test_threshold_capped_at_one(self):
        assert frieze_threshold(1, 5.0) == 1.0

    def test_claim1_expected_edges(self):
        # (1 + eps) * n / 2, independent of d.
        assert expected_sampled_edges(1000, 8, 0.0) == pytest.approx(500.0)
        assert expected_sampled_edges(1000, 32, 0.5) == pytest.approx(750.0)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            frieze_threshold(0)
        with pytest.raises(ConfigurationError):
            sample_edges_uniform(GraphBuilder(2).add_edge(0, 1).build(), 1.5)


class TestSampling:
    def test_p_zero_and_one(self, two_cliques):
        assert sample_edges_uniform(two_cliques, 0.0).num_edges == 0
        assert (
            sample_edges_uniform(two_cliques, 1.0).num_edges
            == two_cliques.num_edges
        )

    def test_expected_count(self):
        g = random_regular_graph(2000, 8, seed=0)
        sampled = sample_edges_uniform(g, 0.25, seed=1)
        assert sampled.num_edges == pytest.approx(0.25 * g.num_edges, rel=0.1)

    def test_deterministic(self, two_cliques):
        a = sample_edges_uniform(two_cliques, 0.5, seed=3)
        b = sample_edges_uniform(two_cliques, 0.5, seed=3)
        assert a.as_pairs() == b.as_pairs()


class TestPhaseTransition:
    """The Frieze et al. result the paper builds on, observed directly."""

    @pytest.fixture(scope="class")
    def regular(self):
        return random_regular_graph(4000, 8, seed=0)

    def test_supercritical_giant(self, regular):
        p = frieze_threshold(8, eps=0.6)
        fractions = [
            uniform_sampling_experiment(regular, p, seed=s).largest_component_fraction
            for s in range(3)
        ]
        assert min(fractions) > 0.25  # Θ(n) component

    def test_subcritical_shatter(self, regular):
        p = frieze_threshold(8, eps=-0.5)  # p = 0.5/d, below threshold
        fractions = [
            uniform_sampling_experiment(regular, p, seed=s).largest_component_fraction
            for s in range(3)
        ]
        assert max(fractions) < 0.05  # o(n) components only

    def test_sampled_edges_linear_in_n(self, regular):
        p = frieze_threshold(8, eps=0.6)
        outcome = uniform_sampling_experiment(regular, p, seed=0)
        assert outcome.sampled_edges < 1.2 * expected_sampled_edges(4000, 8, 0.6)


class TestDegreeBias:
    def test_pendant_vertices_missed(self):
        """Uniform sampling at the O(|V|) budget misses ~(1-p) of the
        degree-one vertices — the paper's motivation for neighbour
        sampling."""
        # Star forest: many pendant vertices.
        b = GraphBuilder(1001)
        b.add_star(0, list(range(1, 1001)))
        g = b.build()
        miss = degree_one_miss_rate(g, 0.2, seed=0)
        assert 0.65 < miss < 0.95  # ~0.8 expected

    def test_full_sampling_misses_nothing(self, path_graph):
        assert degree_one_miss_rate(path_graph, 1.0) == 0.0

    def test_no_pendants(self, cycle_graph):
        assert degree_one_miss_rate(cycle_graph, 0.1) == 0.0
