"""Tests for the Fig. 7 memory-access reduction."""

import numpy as np
import pytest

from repro import engine
from repro.analysis.memaccess import reduce_trace
from repro.engine import SimulatedBackend
from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.parallel import MemoryTrace, SimulatedMachine
from repro.parallel.memtrace import OP_READ, OP_WRITE


def synthetic_trace(events, labels):
    """events: list of (addr, worker, phase_idx)."""
    t = MemoryTrace()
    current = -1
    for addr, worker, phase in events:
        while current < phase:
            current += 1
            t.begin_phase(labels[current])
        t.record(addr, worker, OP_READ)
    # Register any trailing phases.
    while current < len(labels) - 1:
        current += 1
        t.begin_phase(labels[current])
    return t.finalize()


class TestReduction:
    def test_histogram_and_counts(self):
        ta = synthetic_trace(
            [(0, 0, 0), (1, 0, 0), (63, 1, 0), (10, 0, 1)], ["a", "b"]
        )
        summ = reduce_trace(ta, 64, bins=4)
        a = summ.phase("a")
        assert a.events == 3
        assert a.address_histogram.sum() == 3
        assert a.per_worker.tolist() == [2, 1]
        assert summ.phase("b").events == 1
        assert summ.total_events == 4

    def test_sequential_stream_scores_high(self):
        ta = synthetic_trace([(i, 0, 0) for i in range(50)], ["seq"])
        summ = reduce_trace(ta, 64)
        assert summ.phase("seq").sequentiality == 1.0

    def test_random_stream_scores_low(self):
        rng = np.random.default_rng(0)
        ta = synthetic_trace(
            [(int(rng.integers(0, 4096)), 0, 0) for _ in range(300)], ["rnd"]
        )
        summ = reduce_trace(ta, 4096)
        assert summ.phase("rnd").sequentiality < 0.2

    def test_interleaved_workers_scored_independently(self):
        # Two workers each streaming sequentially, interleaved globally.
        events = []
        for i in range(40):
            events.append((i, 0, 0))
            events.append((100 + i, 1, 0))
        summ = reduce_trace(synthetic_trace(events, ["x"]), 256)
        assert summ.phase("x").sequentiality == 1.0

    def test_low_address_fraction(self):
        events = [(i, 0, 0) for i in range(10)] + [(90, 0, 0)] * 10
        summ = reduce_trace(synthetic_trace(events, ["x"]), 100, root_region=0.1)
        assert summ.phase("x").low_address_fraction == pytest.approx(0.5)

    def test_combined_histogram(self):
        ta = synthetic_trace([(0, 0, 0), (0, 0, 1)], ["a", "b"])
        summ = reduce_trace(ta, 16, bins=2)
        assert summ.combined_histogram().tolist() == [2, 0]

    def test_missing_phase_raises(self):
        summ = reduce_trace(synthetic_trace([], []), 16)
        with pytest.raises(KeyError):
            summ.phase("nope")

    def test_rejects_bad_args(self):
        ta = synthetic_trace([], [])
        with pytest.raises(ConfigurationError):
            reduce_trace(ta, 0)
        with pytest.raises(ConfigurationError):
            reduce_trace(ta, 10, root_region=0.0)


class TestPaperShape:
    """Fig. 7's qualitative claims, measured on real traces."""

    @pytest.fixture(scope="class")
    def traces(self):
        g = uniform_random_graph(512, edge_factor=8, seed=0)
        out = {}
        for name, runner in (
            (
                "afforest",
                lambda m: engine.run(
                    "afforest", g, backend=SimulatedBackend(m)
                ),
            ),
            ("sv", lambda m: engine.run("sv", g, backend=SimulatedBackend(m))),
        ):
            trace = MemoryTrace()
            m = SimulatedMachine(4, trace=trace)
            runner(m)
            out[name] = reduce_trace(trace.finalize(), g.num_vertices)
        return out

    def test_afforest_link_rounds_sequential(self, traces):
        """Neighbour rounds stream π: high sequentiality on the reads."""
        af = traces["afforest"]
        assert af.phase("I").sequentiality > 0.9
        assert af.phase("L0").sequentiality > 0.3

    def test_sv_hook_random(self, traces):
        """SV's hook phase scatters across π."""
        sv = traces["sv"]
        hook = sv.phase("H1")
        af_l0 = traces["afforest"].phase("L0")
        assert hook.sequentiality < af_l0.sequentiality

    def test_afforest_concentrates_on_roots(self, traces):
        """Later Afforest phases hit the low-address (root) region more
        than the uniform 10% baseline."""
        af = traces["afforest"]
        assert af.phase("L1").low_address_fraction > 0.2

    def test_sv_total_accesses_higher(self, traces):
        assert traces["sv"].total_events > traces["afforest"].total_events
