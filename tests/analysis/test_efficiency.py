"""Tests for the work-efficiency report."""

import pytest

from repro.analysis.efficiency import (
    WorkRecord,
    work_efficiency_report,
    work_ratio,
)
from repro.generators import grid_graph, uniform_random_graph


@pytest.fixture(scope="module")
def urand_report():
    return work_efficiency_report(uniform_random_graph(1000, edge_factor=8, seed=0))


class TestReport:
    def test_all_algorithms_present(self, urand_report):
        names = {r.algorithm for r in urand_report}
        assert names == {
            "afforest", "afforest-noskip", "dobfs", "bfs", "sv", "lp",
            "lp-datadriven",
        }

    def test_paper_work_hierarchy_on_giant_urand(self, urand_report):
        ratio = lambda a, b: work_ratio(urand_report, a, b)
        # Afforest touches the least; SV and LP pay per-iteration |E|.
        assert ratio("afforest", "sv") > 2.0
        assert ratio("afforest", "lp") > 2.0
        assert ratio("afforest", "bfs") > 1.0

    def test_normalisation(self, urand_report):
        bfs = next(r for r in urand_report if r.algorithm == "bfs")
        assert bfs.edges_per_directed_edge == pytest.approx(1.0)

    def test_detail_strings(self, urand_report):
        sv = next(r for r in urand_report if r.algorithm == "sv")
        assert "iterations" in sv.detail
        af = next(r for r in urand_report if r.algorithm == "afforest")
        assert "skipped" in af.detail

    def test_lp_pays_for_diameter(self):
        report = work_efficiency_report(grid_graph(24, 24))
        assert work_ratio(report, "bfs", "lp") > 5.0

    def test_datadriven_cheaper_than_sync_lp(self):
        report = work_efficiency_report(grid_graph(20, 20))
        assert work_ratio(report, "lp-datadriven", "lp") > 1.0
