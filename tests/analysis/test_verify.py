"""Tests for labeling verification helpers."""

import numpy as np
import pytest

from repro.analysis.verify import (
    assert_equivalent_labeling,
    canonical_labels,
    equivalent_labelings,
    is_valid_labeling,
)
from repro.errors import InvariantViolationError


class TestCanonical:
    def test_renames_to_smallest_member(self):
        labels = np.array([7, 7, 3, 3, 7])
        assert canonical_labels(labels).tolist() == [0, 0, 2, 2, 0]

    def test_identity_for_canonical_input(self):
        labels = np.array([0, 0, 2, 2])
        assert canonical_labels(labels).tolist() == [0, 0, 2, 2]

    def test_empty(self):
        assert canonical_labels(np.array([])).shape == (0,)


class TestEquivalence:
    def test_same_partition_different_values(self):
        a = np.array([5, 5, 9, 9])
        b = np.array([1, 1, 0, 0])
        assert equivalent_labelings(a, b)

    def test_different_partition(self):
        a = np.array([0, 0, 0])
        b = np.array([0, 0, 2])
        assert not equivalent_labelings(a, b)

    def test_shape_mismatch(self):
        assert not equivalent_labelings(np.array([0]), np.array([0, 1]))

    def test_assert_passes(self):
        assert_equivalent_labeling(np.array([3, 3]), np.array([9, 9]))

    def test_assert_raises_with_context(self):
        with pytest.raises(InvariantViolationError, match="afforest-vs-sv"):
            assert_equivalent_labeling(
                np.array([0, 0]), np.array([0, 1]), context="afforest-vs-sv"
            )


class TestValidity:
    def test_correct_labeling_valid(self, mixed_graph):
        from repro.unionfind import sequential_components

        assert is_valid_labeling(mixed_graph, sequential_components(mixed_graph))

    def test_under_merged_invalid(self, path_graph):
        labels = np.arange(6)  # all singletons despite edges
        assert not is_valid_labeling(path_graph, labels)

    def test_over_merged_invalid(self, two_cliques):
        labels = np.zeros(8, dtype=np.int64)  # one label spanning both cliques
        assert not is_valid_labeling(two_cliques, labels)

    def test_wrong_length_invalid(self, path_graph):
        assert not is_valid_labeling(path_graph, np.zeros(3, dtype=np.int64))

    def test_empty_graph_valid(self, empty_graph):
        assert is_valid_labeling(empty_graph, np.array([], dtype=np.int64))

    def test_split_giant_detected(self, cycle_graph):
        # Edge-consistent labels are impossible to fake on a cycle without
        # merging everything, so use a labeling violating edge consistency.
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert not is_valid_labeling(cycle_graph, labels)
