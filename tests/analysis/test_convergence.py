"""Tests for the Linkage/Coverage convergence machinery."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    ConvergenceCurve,
    convergence_curve,
    coverage,
    linkage,
)
from repro.constants import VERTEX_DTYPE
from repro.core.strategies import STRATEGIES, neighbor_sampling
from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph, web_graph


class TestMeasures:
    def test_linkage_initial_zero(self):
        pi = np.arange(10, dtype=VERTEX_DTYPE)
        assert linkage(pi, final_components=2) == 0.0

    def test_linkage_full(self):
        pi = np.zeros(10, dtype=VERTEX_DTYPE)  # one tree
        assert linkage(pi, final_components=1) == 1.0

    def test_linkage_partial(self):
        pi = np.array([0, 0, 2, 3], dtype=VERTEX_DTYPE)  # 3 trees, C=1
        assert linkage(pi, 1) == pytest.approx((4 - 3) / (4 - 1))

    def test_linkage_degenerate_all_singletons(self):
        pi = np.arange(4, dtype=VERTEX_DTYPE)
        assert linkage(pi, final_components=4) == 1.0

    def test_coverage_initial(self):
        pi = np.arange(10, dtype=VERTEX_DTYPE)
        assert coverage(pi, largest_component_size=5) == pytest.approx(0.2)

    def test_coverage_full(self):
        pi = np.zeros(8, dtype=VERTEX_DTYPE)
        assert coverage(pi, 8) == 1.0

    def test_coverage_resolves_chains(self):
        # Depth-3 chain counts as one tree of 4 vertices.
        pi = np.array([0, 0, 1, 2, 4], dtype=VERTEX_DTYPE)
        assert coverage(pi, 4) == 1.0


class TestCurve:
    def test_monotone_and_converges(self):
        g = uniform_random_graph(300, edge_factor=6, seed=0)
        batches = neighbor_sampling(g, rounds=2)
        curve = convergence_curve(g, batches, resolution=20)
        assert curve.linkage[0] == 0.0
        assert curve.linkage[-1] == pytest.approx(1.0)
        assert curve.coverage[-1] == pytest.approx(1.0)
        assert all(
            b >= a - 1e-12
            for a, b in zip(curve.linkage, curve.linkage[1:])
        )

    def test_percent_axis(self):
        g = uniform_random_graph(100, edge_factor=4, seed=1)
        curve = convergence_curve(g, neighbor_sampling(g, 1), resolution=10)
        pct = curve.percent_processed
        assert pct[0] == 0.0
        assert pct[-1] == pytest.approx(100.0)

    def test_measure_at_lookup(self):
        curve = ConvergenceCurve("x", edges_total=100)
        curve.edges_processed = [0, 50, 100]
        curve.linkage = [0.0, 0.6, 1.0]
        curve.coverage = [0.1, 0.5, 1.0]
        assert curve.linkage_at(50.0) == 0.6
        assert curve.linkage_at(75.0) == 0.6
        assert curve.coverage_at(100.0) == 1.0
        assert curve.linkage_at(-5.0) == 0.0

    def test_rejects_bad_resolution(self):
        g = uniform_random_graph(50, edge_factor=2, seed=2)
        with pytest.raises(ConfigurationError):
            convergence_curve(g, neighbor_sampling(g, 1), resolution=0)


class TestPaperShape:
    """Fig. 6's qualitative ordering must hold on the web proxy."""

    @pytest.fixture(scope="class")
    def curves(self):
        g = web_graph(2000, seed=0)
        out = {}
        for name, strategy in STRATEGIES.items():
            out[name] = convergence_curve(
                g, strategy(g), strategy_name=name, resolution=25
            )
        return out

    def test_neighbor_beats_uniform_and_row(self, curves):
        at = 20.0  # after ~20% of edges
        assert curves["neighbor"].linkage_at(at) > curves["uniform"].linkage_at(at)
        assert curves["neighbor"].linkage_at(at) > curves["row"].linkage_at(at)

    def test_optimal_is_upper_bound_early(self, curves):
        at = 10.0
        for name in ("neighbor", "uniform", "row"):
            assert curves["optimal"].linkage_at(at) >= curves[name].linkage_at(at) - 0.02

    def test_neighbor_two_rounds_high_linkage(self, curves):
        """Paper: ~83% linkage after two neighbour rounds (a small
        fraction of the edges)."""
        g_edges = curves["neighbor"].edges_total
        # Two rounds touch at most 2n directed slots.
        two_rounds_pct = 100.0 * 2 * 2000 / g_edges
        assert curves["neighbor"].linkage_at(two_rounds_pct) > 0.7

    def test_row_sampling_slowest(self, curves):
        at = 30.0
        assert curves["row"].coverage_at(at) <= curves["neighbor"].coverage_at(at)


class TestCrossDatasetConsistency:
    """Paper Sec. V-B: "adjacency matrix row sampling attains the slowest
    rate of convergence.  This behavior is consistent with the other
    tested graphs." — checked across topology classes, not just web."""

    @pytest.mark.parametrize("dataset", ["twitter", "kron", "urand"])
    def test_neighbor_dominates_row_everywhere(self, dataset):
        from repro.generators import load_dataset

        g = load_dataset(dataset, "tiny")
        curves = {
            name: convergence_curve(
                g, STRATEGIES[name](g), strategy_name=name, resolution=20
            )
            for name in ("neighbor", "row")
        }
        for pct in (10.0, 25.0):
            assert (
                curves["neighbor"].linkage_at(pct)
                >= curves["row"].linkage_at(pct) - 0.02
            ), (dataset, pct)
