"""The smoke benchmark's baseline comparison and CI perf gate.

Pure-JSON tests: every case builds small report/baseline dicts (or tmp
files for the CLI paths) instead of running benchmarks, so the gate
semantics — semantic drift always fails, timing fails only past the
threshold, missing files diagnose instead of raising — are pinned
without timing noise.
"""

from __future__ import annotations

import json

from repro.bench.smoke import (
    compare_against_baseline,
    gate_summary_markdown,
    main,
)


def _record(
    dataset="powerlaw-5k",
    algorithm="fastsv",
    backend="vectorized",
    median=0.010,
    components=3,
    **extra,
):
    rec = {
        "dataset": dataset,
        "algorithm": algorithm,
        "backend": backend,
        "median_seconds": median,
        "num_components": components,
        "matches_oracle": True,
    }
    rec.update(extra)
    return rec


def _report(*records, failures=0):
    return {"python": "3.12.0", "failures": failures, "records": list(records)}


class TestCompareAgainstBaseline:
    def test_matching_reports_pass(self):
        base = _report(_record())
        now = _report(_record(median=0.011))
        failures, notes = compare_against_baseline(now, base)
        assert failures == []
        assert any("1.10x" in n for n in notes)

    def test_slowdown_is_note_without_threshold(self):
        base = _report(_record(median=0.010))
        now = _report(_record(median=0.030))
        failures, notes = compare_against_baseline(now, base)
        assert failures == []
        assert any("3.00x" in n for n in notes)

    def test_slowdown_fails_past_threshold(self):
        base = _report(_record(median=0.010))
        now = _report(_record(median=0.030))
        failures, _ = compare_against_baseline(
            now, base, fail_threshold=1.25
        )
        assert len(failures) == 1
        assert "3.00x" in failures[0] and "threshold" in failures[0]

    def test_slowdown_within_threshold_passes(self):
        base = _report(_record(median=0.010))
        now = _report(_record(median=0.012))
        failures, _ = compare_against_baseline(
            now, base, fail_threshold=1.25
        )
        assert failures == []

    def test_missing_combination_always_fails(self):
        base = _report(_record(), _record(algorithm="sv"))
        now = _report(_record())
        failures, _ = compare_against_baseline(now, base)
        assert any("missing from this run" in f for f in failures)

    def test_component_drift_always_fails(self):
        base = _report(_record(components=3))
        now = _report(_record(components=4))
        failures, _ = compare_against_baseline(now, base)
        assert any("num_components" in f for f in failures)

    def test_plan_drift_always_fails(self):
        base = _report(_record(algorithm="auto", plan="kout+lp-async"))
        now = _report(_record(algorithm="auto", plan="none+fastsv"))
        failures, _ = compare_against_baseline(now, base)
        assert any("plan" in f for f in failures)

    def test_new_combination_is_a_note(self):
        base = _report(_record())
        now = _report(_record(), _record(algorithm="fastsv-new"))
        failures, notes = compare_against_baseline(now, base)
        assert failures == []
        assert any("new combination" in n for n in notes)

    def test_timing_failure_carries_attribution(self):
        base = _report(_record(
            median=0.010,
            phase_seconds={"HS3": 0.002, "total": 0.010},
            counters={"rounds_skipped": 4},
        ))
        now = _report(_record(
            median=0.030,
            phase_seconds={"HS3": 0.020, "total": 0.030},
            counters={"rounds_skipped": 0},
        ))
        failures, _ = compare_against_baseline(
            now, base, fail_threshold=1.25
        )
        assert len(failures) == 1
        # The gate names the regressed phase and the moved counter so
        # the CI log explains the failure, not just reports it.
        assert "HS3" in failures[0]
        assert "rounds_skipped 4→0" in failures[0]

    def test_timing_failure_without_phases_degrades(self):
        base = _report(_record(median=0.010))
        now = _report(_record(median=0.030))
        failures, _ = compare_against_baseline(
            now, base, fail_threshold=1.25
        )
        assert len(failures) == 1
        assert "threshold" in failures[0]

    def test_scaling_records_ignored(self):
        base = _report(
            _record(),
            {"dataset": "powerlaw-5k", "algorithm": "afforest",
             "worker_scaling": {"1": 0.01}},
        )
        failures, _ = compare_against_baseline(_report(_record()), base)
        assert failures == []


class TestGateSummaryMarkdown:
    def test_contains_table_and_verdict(self):
        base = _report(_record(median=0.010))
        now = _report(
            _record(median=0.008, iterations=5, rounds_skipped=1,
                    bytes_allocated=4096)
        )
        md = gate_summary_markdown(now, base, [], [], fail_threshold=1.25)
        assert "## Smoke perf gate" in md
        assert "**passed**" in md
        assert "| powerlaw-5k | fastsv | vectorized |" in md
        assert "0.80x" in md
        assert "4096" in md

    def test_failures_render_as_regressions(self):
        base = _report(_record())
        now = _report(_record(median=0.050))
        failures, notes = compare_against_baseline(
            now, base, fail_threshold=1.25
        )
        md = gate_summary_markdown(
            now, base, failures, notes, fail_threshold=1.25
        )
        assert "**FAILED**" in md
        assert "### Regressions" in md

    def test_attribution_table_for_comparable_runs(self):
        base = _report(_record(
            median=0.010,
            phase_seconds={"HS3": 0.002, "total": 0.010},
            counters={"rounds_skipped": 4},
        ))
        now = _report(_record(
            median=0.030,
            phase_seconds={"HS3": 0.020, "total": 0.030},
            counters={"rounds_skipped": 0},
        ))
        md = gate_summary_markdown(now, base, [], [], fail_threshold=1.25)
        assert "### Regression attribution" in md
        assert "HS3" in md
        assert "rounds_skipped 4→0" in md

    def test_attribution_section_absent_without_baseline_pairs(self):
        base = _report(_record(algorithm="other"))
        now = _report(_record())
        md = gate_summary_markdown(now, base, [], [], fail_threshold=1.25)
        assert "_no comparable runs_" in md or "attribution" not in md


class TestGateCli:
    """``--gate-report`` re-gates a saved report without benchmarking."""

    def _write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_gate_passes_and_writes_summary(self, tmp_path, capsys):
        report = self._write(tmp_path / "r.json", _report(_record()))
        baseline = self._write(tmp_path / "b.json", _report(_record()))
        summary = tmp_path / "summary.md"
        rc = main([
            "--gate-report", report, "--baseline", baseline,
            "--fail-threshold", "1.25", "--summary-out", str(summary),
        ])
        assert rc == 0
        assert "## Smoke perf gate" in summary.read_text(encoding="utf-8")

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        report = self._write(
            tmp_path / "r.json", _report(_record(median=0.050))
        )
        baseline = self._write(
            tmp_path / "b.json", _report(_record(median=0.010))
        )
        rc = main([
            "--gate-report", report, "--baseline", baseline,
            "--fail-threshold", "1.25",
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "baseline regression" in err

    def test_gate_carries_oracle_failures_from_report(self, tmp_path):
        report = self._write(
            tmp_path / "r.json", _report(_record(), failures=2)
        )
        baseline = self._write(tmp_path / "b.json", _report(_record()))
        rc = main(["--gate-report", report, "--baseline", baseline])
        assert rc == 1

    def test_gate_requires_baseline(self, tmp_path, capsys):
        report = self._write(tmp_path / "r.json", _report(_record()))
        rc = main(["--gate-report", report])
        assert rc == 2
        assert "--baseline" in capsys.readouterr().err

    def test_missing_baseline_file_diagnosed(self, tmp_path, capsys):
        report = self._write(tmp_path / "r.json", _report(_record()))
        rc = main([
            "--gate-report", report,
            "--baseline", str(tmp_path / "nope.json"),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "baseline file not found" in err
        assert "Traceback" not in err

    def test_missing_report_file_diagnosed(self, tmp_path, capsys):
        baseline = self._write(tmp_path / "b.json", _report(_record()))
        rc = main([
            "--gate-report", str(tmp_path / "nope.json"),
            "--baseline", baseline,
        ])
        assert rc == 1
        assert "report file not found" in capsys.readouterr().err

    def test_corrupt_baseline_diagnosed(self, tmp_path, capsys):
        report = self._write(tmp_path / "r.json", _report(_record()))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        rc = main([
            "--gate-report", report, "--baseline", str(bad),
        ])
        assert rc == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_baseline_diagnosed(self, tmp_path, capsys):
        report = self._write(tmp_path / "r.json", _report(_record()))
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]", encoding="utf-8")
        rc = main([
            "--gate-report", report, "--baseline", str(arr),
        ])
        assert rc == 1
        assert "not a JSON report object" in capsys.readouterr().err
