"""Tests for the serving benchmark and its oracle gate."""

import json

import numpy as np
import pytest

from repro.bench import serving
from repro.generators import uniform_random_graph


@pytest.fixture
def small_graph():
    return uniform_random_graph(300, num_edges=400, seed=8)


@pytest.fixture
def tiny_matrix(monkeypatch, small_graph):
    """Shrink the benchmark matrix to one small graph for fast tests."""
    monkeypatch.setattr(
        serving, "SERVING_GRAPHS", (("tiny", lambda: small_graph),)
    )


class TestWorkload:
    def test_deterministic_for_a_seed(self):
        a = serving.build_workload(np.random.default_rng(5), 100, 50)
        b = serving.build_workload(np.random.default_rng(5), 100, 50)
        assert len(a) == len(b) == 50
        for op_a, op_b in zip(a, b):
            assert op_a[0] == op_b[0]
            assert all(
                np.array_equal(x, y) for x, y in zip(op_a[1:], op_b[1:])
            )

    def test_mix_fractions(self):
        ops = serving.build_workload(
            np.random.default_rng(6), 100, 300,
            query_frac=0.5, size_frac=0.3,
        )
        kinds = [op[0] for op in ops]
        assert 100 < kinds.count("same") < 200
        assert 50 < kinds.count("sizes") < 130
        assert kinds.count("update") > 30

    def test_vertices_in_range(self):
        ops = serving.build_workload(np.random.default_rng(7), 50, 40)
        for op in ops:
            for arr in op[1:]:
                assert arr.min() >= 0
                assert arr.max() < 50


class TestDriveSession:
    def test_record_shape_and_oracle(self, small_graph):
        record, service = serving.drive_session(
            small_graph, "tiny",
            requests=60, recompress_every=128, seed=5,
        )
        assert record["dataset"] == "tiny"
        assert record["backend"] == service.backend_kind
        assert record["requests"] == 61  # workload + closing refresh
        assert record["matches_oracle"] is True
        assert record["oracle_epochs"] >= 1
        assert record["median_seconds"] >= 0
        assert record["p99_ms"] >= record["p50_ms"] >= 0
        assert record["throughput_rps"] > 0
        assert record["counters"]["serve_requests"] == 61

    def test_ledger_records_session(self, small_graph, tmp_path):
        from repro.obs.ledger import RunLedger

        ledger = tmp_path / "ledger.jsonl"
        record, _ = serving.drive_session(
            small_graph, "tiny", requests=20, ledger=str(ledger), seed=5,
        )
        entries = RunLedger(ledger).records()
        assert len(entries) == 1
        assert entries[0].kind == "serve"
        assert record["run_id"] == entries[0].run_id

    def test_oracle_off_skips_verdict(self, small_graph):
        record, _ = serving.drive_session(
            small_graph, "tiny", requests=20, oracle=False, seed=5,
        )
        assert "matches_oracle" not in record


class TestRunServing:
    def test_report_shape(self, tiny_matrix, capsys):
        report, failures = serving.run_serving(requests=40, seed=5)
        assert failures == 0
        assert report["kind"] == "serving"
        assert len(report["records"]) == 1
        assert "req/s" in capsys.readouterr().out

    def test_main_writes_report(self, tiny_matrix, tmp_path, capsys):
        out = tmp_path / "serving.json"
        code = serving.main(
            ["--requests", "40", "--seed", "5", "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["failures"] == 0
        assert report["records"][0]["matches_oracle"] is True

    def test_main_fails_on_oracle_mismatch(
        self, tiny_matrix, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            serving, "verify_epochs", lambda service, epochs: (False, 1)
        )
        assert serving.main(["--requests", "20", "--seed", "5"]) == 1
        assert "oracle" in capsys.readouterr().err

    def test_reports_diff_through_obs(self, tiny_matrix, tmp_path, capsys):
        """Two serving reports flow through ``repro obs diff`` (matrix mode)."""
        from repro.cli import main as cli_main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        serving.main(["--requests", "40", "--seed", "5", "--output", str(a)])
        serving.main(["--requests", "40", "--seed", "6", "--output", str(b)])
        capsys.readouterr()
        assert cli_main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "tiny/afforest" in out
