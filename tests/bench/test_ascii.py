"""Tests for the ASCII figure renderings."""

import numpy as np
import pytest

from repro.bench.ascii import heatmap, line_plot, sparkline
from repro.errors import ConfigurationError


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([0, 1, 2, 3])
        assert len(s) == 4
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestHeatmap:
    def test_shape(self):
        out = heatmap(np.arange(12).reshape(3, 4), legend=False)
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 4 for l in lines)

    def test_zero_matrix(self):
        out = heatmap(np.zeros((2, 2)), legend=False)
        assert out == "  \n  "

    def test_max_cell_saturates(self):
        out = heatmap(np.array([[0, 1000]]), legend=False)
        assert out[-1] == "█"

    def test_legend(self):
        out = heatmap(np.ones((1, 1)))
        assert "log scale" in out

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            heatmap(np.arange(3))

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            heatmap(np.array([[-1.0]]))

    def test_empty(self):
        assert heatmap(np.empty((0, 0))) == ""


class TestLinePlot:
    def test_renders_all_series(self):
        out = line_plot(
            [1, 2, 3],
            {"alpha": [1, 2, 3], "beta": [3, 2, 1]},
            width=20,
            height=6,
        )
        assert "A" in out and "B" in out
        assert "A=alpha" in out
        assert "x →" in out

    def test_marker_collision_fallback(self):
        out = line_plot(
            [0, 1], {"aa": [0, 1], "ab": [1, 0]}, width=10, height=4
        )
        assert "A=aa" in out
        assert "1=ab" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot([0, 1], {"s": [1]}, width=10, height=4)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            line_plot([0, 1], {"s": [0, 1]}, width=2, height=2)

    def test_empty(self):
        assert line_plot([], {}) == ""

    def test_flat_series_handled(self):
        out = line_plot([0, 1], {"s": [2, 2]}, width=10, height=4)
        assert "S" in out
