"""Tests for the distributed traffic benchmark and its gates."""

from repro.bench.dist_traffic import (
    compare_against_baseline,
    main,
    run_traffic,
)


class TestRunTraffic:
    def test_delta_exchange_beats_reduction_baseline(self):
        report, failures = run_traffic((2, 4))
        assert failures == 0
        for rec in report["records"]:
            assert rec["bit_identical"]
            assert rec["under_reduction_baseline"]
            assert 0 < rec["max_rank_bytes"] < rec["reduction_baseline_bytes"]
            assert len(rec["bytes_per_rank"]) == rec["ranks"]
            assert rec["supersteps"] >= 1

    def test_traffic_grows_with_ranks_but_total_is_recorded(self):
        report, _ = run_traffic((2, 4))
        by_ranks = {r["ranks"]: r for r in report["records"]}
        assert by_ranks[4]["bytes_sent"] > by_ranks[2]["bytes_sent"]


class TestBaselineGate:
    def _rec(self, ranks, max_bytes):
        return {"ranks": ranks, "max_rank_bytes": max_bytes}

    def test_identical_reports_pass(self):
        rep = {"records": [self._rec(2, 100)]}
        failures, notes = compare_against_baseline(rep, rep)
        assert failures == [] and notes == []

    def test_drift_is_a_note_without_threshold(self):
        failures, notes = compare_against_baseline(
            {"records": [self._rec(2, 150)]},
            {"records": [self._rec(2, 100)]},
        )
        assert failures == []
        assert notes and "1.50x" in notes[0]

    def test_threshold_makes_drift_fail(self):
        failures, _ = compare_against_baseline(
            {"records": [self._rec(2, 150)]},
            {"records": [self._rec(2, 100)]},
            fail_threshold=1.25,
        )
        assert failures and "ranks=2" in failures[0]

    def test_missing_rank_count_fails(self):
        failures, _ = compare_against_baseline(
            {"records": []},
            {"records": [self._rec(2, 100)]},
        )
        assert failures and "missing" in failures[0]


def test_main_writes_report_and_passes(tmp_path, capsys):
    out = tmp_path / "traffic.json"
    assert main(["--ranks", "2", "--output", str(out)]) == 0
    assert out.exists()
    assert "ranks=2" in capsys.readouterr().out
