"""Tests for the worker-scaling curve and the CI smoke benchmark."""

import json

import numpy as np
import pytest

from repro.bench.runner import run_algorithm, worker_scaling_curve
from repro.bench.smoke import check_against_oracle, main as smoke_main, run_smoke
from repro.errors import ConfigurationError
from repro.generators.powerlaw import barabasi_albert_graph


@pytest.fixture(scope="module")
def small_graph():
    return barabasi_albert_graph(400, edges_per_vertex=3, seed=6)


class TestWorkerScaling:
    def test_curve_has_one_entry_per_worker_count(self, small_graph):
        curve = worker_scaling_curve(small_graph, "afforest", (1, 2), repeats=2)
        assert sorted(curve) == ["1", "2"]
        assert all(t > 0 for t in curve.values())

    def test_run_algorithm_records_curve_in_extra(self, small_graph):
        rec = run_algorithm(
            small_graph, "afforest", "ba", repeats=2, scaling_workers=(1, 2)
        )
        assert rec.extra["worker_scaling"].keys() == {"1", "2"}
        # The record itself still carries the base (vectorized) timing.
        assert rec.median_seconds > 0

    def test_no_scaling_key_without_request(self, small_graph):
        rec = run_algorithm(small_graph, "afforest", "ba", repeats=2)
        assert "worker_scaling" not in rec.extra

    def test_unsupported_algorithm_raises(self, small_graph):
        with pytest.raises(ConfigurationError, match="process backend"):
            worker_scaling_curve(small_graph, "sequential", (1,), repeats=2)

    def test_curve_is_json_serializable(self, small_graph):
        curve = worker_scaling_curve(small_graph, "sv", (1,), repeats=2)
        assert json.loads(json.dumps(curve)) == curve


class TestSmoke:
    def test_oracle_check_accepts_correct_labels(self, small_graph):
        from repro.unionfind import sequential_components

        labels = np.asarray(sequential_components(small_graph))
        assert check_against_oracle(small_graph, labels)

    def test_oracle_check_rejects_wrong_labels(self, small_graph):
        labels = np.zeros(small_graph.num_vertices, dtype=np.int64)
        # A single-component labeling is wrong whenever the graph has >1.
        from repro.unionfind import sequential_components

        ref = np.asarray(sequential_components(small_graph))
        if len(np.unique(ref)) > 1:
            assert not check_against_oracle(small_graph, labels)

    def test_run_smoke_passes_and_reports(self):
        report, failures = run_smoke(repeats=1, workers=2)
        assert failures == 0
        assert report["failures"] == 0
        combos = {
            (r["dataset"], r["algorithm"], r["backend"])
            for r in report["records"]
            if "backend" in r
        }
        # Full matrix: graphs x algorithms x backends (7 algorithms since
        # the fused fastsv hot path joined the smoke set).
        from repro.bench.smoke import (
            SMOKE_ALGORITHMS,
            SMOKE_BACKENDS,
            SMOKE_GRAPHS,
        )

        assert len(combos) == (
            len(SMOKE_GRAPHS) * len(SMOKE_ALGORITHMS) * len(SMOKE_BACKENDS)
        )
        assert len(SMOKE_ALGORITHMS) == 7
        assert all(r.get("matches_oracle", True) for r in report["records"])
        # Plan provenance: auto's record names the plan the probes chose.
        plans = {
            (r["dataset"], r["algorithm"]): r["plan"]
            for r in report["records"]
            if "plan" in r
        }
        assert plans[("powerlaw-5k", "auto")] == "kout+settle"
        assert plans[("lattice-70x70", "auto")] == "none+fastsv"
        assert plans[("powerlaw-5k", "kout+sv")] == "kout+sv"

    def test_baseline_compare_flags_semantic_drift(self):
        from repro.bench.smoke import compare_against_baseline

        record = {
            "dataset": "g",
            "algorithm": "auto",
            "backend": "vectorized",
            "median_seconds": 1.0,
            "num_components": 3,
            "plan": "kout+settle",
        }
        same, _ = compare_against_baseline(
            {"records": [record]}, {"records": [record]}
        )
        assert same == []
        drifted = dict(record, num_components=4, plan="none+lp")
        failures, notes = compare_against_baseline(
            {"records": [drifted]}, {"records": [record]}
        )
        assert len(failures) == 2  # component count + plan choice
        missing, _ = compare_against_baseline(
            {"records": []}, {"records": [record]}
        )
        assert missing and "missing" in missing[0]

    def test_smoke_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = smoke_main(["--repeats", "1", "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["failures"] == 0
        assert report["records"]

    def test_smoke_trace_export(self, tmp_path, capsys):
        from repro.bench.smoke import export_smoke_trace

        path = tmp_path / "smoke-trace.json"
        export_smoke_trace(str(path), workers=2)
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "total" in names
        assert any(e.get("tid", 0) != 0 for e in events if e.get("ph") == "X")


class TestRecordTelemetry:
    def test_profiled_sample_attaches_trace_and_extras(self, small_graph):
        from repro.engine import ProcessParallelBackend

        with ProcessParallelBackend(workers=2) as backend:
            rec = run_algorithm(
                small_graph, "afforest", "ba", repeats=2, backend=backend
            )
        assert rec.trace is not None
        assert rec.extra["phase_seconds"].keys() == rec.trace.phase_seconds().keys()
        assert "worker_skew" in rec.extra
        assert all(s["skew"] >= 1.0 for s in rec.extra["worker_skew"].values())
        assert "histograms" in rec.extra
        assert "block_imbalance" in rec.extra["histograms"]
        # Everything in extra (not the trace) must stay JSON-serializable.
        assert json.loads(json.dumps(rec.extra))

    def test_vectorized_record_has_no_worker_skew(self, small_graph):
        rec = run_algorithm(small_graph, "afforest", "ba", repeats=2)
        assert rec.trace is not None
        assert "worker_skew" not in rec.extra
