"""Tests for the benchmark harness helpers."""

import numpy as np

from repro.bench.datasets import evaluation_suite
from repro.bench.report import format_series, format_table
from repro.bench.runner import BenchmarkRecord, median_time, run_algorithm
from repro.generators import uniform_random_graph


class TestMedianTime:
    def test_returns_quartiles(self):
        med, p25, p75, samples = median_time(lambda: None, repeats=5)
        assert p25 <= med <= p75
        assert len(samples) == 5

    def test_slow_path_fewer_repeats(self):
        import time

        calls = []
        med, _, _, samples = median_time(
            lambda: (calls.append(1), time.sleep(0.01))[0],
            repeats=16,
            slow_threshold=0.001,
            slow_repeats=3,
        )
        assert len(samples) == 3


class TestRunAlgorithm:
    def test_record_fields(self):
        g = uniform_random_graph(100, edge_factor=4, seed=0)
        rec = run_algorithm(g, "afforest", "urand-test", repeats=3)
        assert rec.algorithm == "afforest"
        assert rec.dataset == "urand-test"
        assert rec.median_seconds > 0

    def test_speedup(self):
        a = BenchmarkRecord("d", "fast", 1.0, 1.0, 1.0)
        b = BenchmarkRecord("d", "slow", 4.0, 4.0, 4.0)
        assert a.speedup_over(b) == 4.0


class TestEvaluationSuite:
    def test_contains_cpu_datasets(self):
        suite = evaluation_suite("tiny")
        assert set(suite) == {"road", "osm-eur", "twitter", "web", "kron", "urand"}

    def test_cached(self):
        a = evaluation_suite("tiny")
        b = evaluation_suite("tiny")
        assert a["road"] is b["road"]


class TestReport:
    def test_table_renders_all_rows(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], ["x", 0.000001]])
        assert "T" in out
        assert "bb" in out
        assert "2.5" in out
        assert "1.000e-06" in out

    def test_series(self):
        out = format_series(
            "F", "x", [1, 2], {"alg1": [0.5, 0.25], "alg2": [1.0, 2.0]}
        )
        lines = out.splitlines()
        assert "alg1" in lines[2]
        assert len(lines) == 6  # title, rule, header, divider, 2 rows

    def test_empty_table(self):
        out = format_table("E", ["c"], [])
        assert "c" in out
