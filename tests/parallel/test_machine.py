"""Tests for the simulated parallel machine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel import MemoryTrace, SimulatedMachine


def write_kernel(ctx, item, arr):
    """Each item writes its own slot (no races)."""
    yield from ctx.write(arr, item, item * 10)


def increment_kernel(ctx, item, arr, slot):
    """Racy read-modify-write on a shared slot (intentionally non-atomic)."""
    val = yield from ctx.read(arr, slot)
    yield from ctx.write(arr, slot, val + 1)


def cas_increment_kernel(ctx, item, arr, slot):
    """Atomic increment via CAS retry loop."""
    while True:
        val = yield from ctx.read(arr, slot)
        ok = yield from ctx.cas(arr, slot, val, val + 1)
        if ok:
            return


class TestBasicExecution:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    @pytest.mark.parametrize("interleave", ["roundrobin", "random", "sequential"])
    def test_all_items_processed(self, workers, interleave):
        arr = np.zeros(20, dtype=np.int64)
        m = SimulatedMachine(workers, interleave=interleave, seed=1)
        m.parallel_for(20, write_kernel, arr)
        assert arr.tolist() == [i * 10 for i in range(20)]

    def test_explicit_item_array(self):
        arr = np.zeros(10, dtype=np.int64)
        m = SimulatedMachine(3)
        m.parallel_for(np.array([1, 3, 5]), write_kernel, arr)
        assert arr[1] == 10 and arr[3] == 30 and arr[5] == 50
        assert arr[0] == 0

    def test_zero_items(self):
        m = SimulatedMachine(2)
        ph = m.parallel_for(0, write_kernel, np.zeros(1, dtype=np.int64))
        assert ph.work == 0

    def test_kernel_without_shared_ops(self):
        def noop_kernel(ctx, item):
            return
            yield  # pragma: no cover

        m = SimulatedMachine(2)
        ph = m.parallel_for(5, noop_kernel)
        assert ph.work == 0

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            SimulatedMachine(0)

    def test_rejects_unknown_interleave(self):
        with pytest.raises(ConfigurationError):
            SimulatedMachine(2, interleave="optimistic")


class TestRaceSemantics:
    def test_lost_updates_with_plain_write(self):
        """Round-robin interleaving makes the read-modify-write race
        manifest: all workers read 0 before anyone writes."""
        arr = np.zeros(1, dtype=np.int64)
        m = SimulatedMachine(4, schedule="cyclic")
        m.parallel_for(4, increment_kernel, arr, 0)
        # 4 increments, but lost updates leave the count below 4.
        assert arr[0] < 4

    def test_cas_loop_never_loses_updates(self):
        for interleave in ("roundrobin", "random", "sequential"):
            arr = np.zeros(1, dtype=np.int64)
            m = SimulatedMachine(4, schedule="cyclic", interleave=interleave, seed=2)
            m.parallel_for(8, cas_increment_kernel, arr, 0)
            assert arr[0] == 8

    def test_cas_failures_counted(self):
        arr = np.zeros(1, dtype=np.int64)
        m = SimulatedMachine(4, schedule="cyclic")
        ph = m.parallel_for(8, cas_increment_kernel, arr, 0)
        assert ph.cas_failures > 0
        assert ph.cas_attempts == 8 + ph.cas_failures


class TestAccounting:
    def test_work_counts_shared_ops(self):
        arr = np.zeros(6, dtype=np.int64)
        m = SimulatedMachine(2)
        ph = m.parallel_for(6, write_kernel, arr, phase="w")
        assert ph.label == "w"
        assert ph.work == 6  # one write per item
        assert ph.writes == 6
        assert ph.reads == 0

    def test_span_with_block_schedule(self):
        arr = np.zeros(8, dtype=np.int64)
        m = SimulatedMachine(2)
        ph = m.parallel_for(8, write_kernel, arr)
        assert ph.span == 4  # 8 items split evenly

    def test_phases_accumulate(self):
        arr = np.zeros(4, dtype=np.int64)
        m = SimulatedMachine(2)
        m.parallel_for(4, write_kernel, arr, phase="a")
        m.parallel_for(4, write_kernel, arr, phase="b")
        assert [p.label for p in m.stats.phases] == ["a", "b"]
        assert m.stats.total_work == 8

    def test_reset_stats(self):
        arr = np.zeros(4, dtype=np.int64)
        m = SimulatedMachine(2)
        m.parallel_for(4, write_kernel, arr)
        m.reset_stats()
        assert m.stats.phases == []

    def test_single_worker_sequentialises(self):
        arr = np.zeros(1, dtype=np.int64)
        m = SimulatedMachine(1)
        m.parallel_for(5, increment_kernel, arr, 0)
        assert arr[0] == 5  # no concurrency, no lost updates


class TestDeterminism:
    def test_roundrobin_is_deterministic(self):
        def run():
            arr = np.zeros(1, dtype=np.int64)
            m = SimulatedMachine(3, schedule="cyclic")
            m.parallel_for(6, increment_kernel, arr, 0)
            return int(arr[0])

        assert run() == run()

    def test_random_interleave_is_seeded(self):
        def run(seed):
            arr = np.zeros(1, dtype=np.int64)
            m = SimulatedMachine(3, schedule="cyclic", interleave="random", seed=seed)
            m.parallel_for(6, increment_kernel, arr, 0)
            return int(arr[0])

        assert run(5) == run(5)


class TestTraceIntegration:
    def test_trace_records_all_ops(self):
        arr = np.zeros(4, dtype=np.int64)
        trace = MemoryTrace()
        m = SimulatedMachine(2, trace=trace)
        m.parallel_for(4, write_kernel, arr, phase="w")
        ta = trace.finalize()
        assert ta.num_events == 4
        assert ta.phase_labels == ("w",)
        assert sorted(ta.address.tolist()) == [0, 1, 2, 3]


class TestDynamicSchedule:
    @pytest.mark.parametrize("interleave", ["roundrobin", "random", "sequential"])
    def test_all_items_processed(self, interleave):
        arr = np.zeros(30, dtype=np.int64)
        m = SimulatedMachine(
            4, schedule="dynamic", chunk_size=3, interleave=interleave, seed=2
        )
        m.parallel_for(30, write_kernel, arr)
        assert arr.tolist() == [i * 10 for i in range(30)]

    def test_balances_skewed_work(self):
        """Dynamic pulls rebalance when one worker's items are heavy."""

        def heavy_first_kernel(ctx, item, arr):
            # Item 0 does 50 shared ops; everything else does one.
            reps = 50 if item == 0 else 1
            for _ in range(reps):
                yield from ctx.write(arr, item, item)

        arr_dyn = np.zeros(40, dtype=np.int64)
        m_dyn = SimulatedMachine(4, schedule="dynamic", chunk_size=1)
        ph_dyn = m_dyn.parallel_for(40, heavy_first_kernel, arr_dyn)

        arr_blk = np.zeros(40, dtype=np.int64)
        m_blk = SimulatedMachine(4, schedule="block")
        ph_blk = m_blk.parallel_for(40, heavy_first_kernel, arr_blk)

        assert ph_dyn.work == ph_blk.work
        assert ph_dyn.span < ph_blk.span  # better balance

    def test_explicit_item_array(self):
        arr = np.zeros(10, dtype=np.int64)
        m = SimulatedMachine(2, schedule="dynamic", chunk_size=2)
        m.parallel_for(np.array([1, 4, 7]), write_kernel, arr)
        assert arr[1] == 10 and arr[4] == 40 and arr[7] == 70

    def test_zero_items(self):
        m = SimulatedMachine(2, schedule="dynamic")
        ph = m.parallel_for(0, write_kernel, np.zeros(1, dtype=np.int64))
        assert ph.work == 0

    def test_default_chunk_derived(self):
        arr = np.zeros(100, dtype=np.int64)
        m = SimulatedMachine(3, schedule="dynamic")  # no chunk_size
        m.parallel_for(100, write_kernel, arr)
        assert arr[99] == 990

    def test_cas_semantics_preserved(self):
        arr = np.zeros(1, dtype=np.int64)
        m = SimulatedMachine(4, schedule="dynamic", chunk_size=1)
        m.parallel_for(8, cas_increment_kernel, arr, 0)
        assert arr[0] == 8
