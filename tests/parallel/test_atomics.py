"""Unit tests for atomic operations with contention accounting."""

import numpy as np

from repro.parallel.atomics import AtomicStats, AtomicView


class TestAtomicView:
    def test_load_store(self):
        a = AtomicView(np.array([1, 2, 3]))
        assert a.load(1) == 2
        a.store(1, 9)
        assert a.load(1) == 9
        assert a.stats.reads == 2
        assert a.stats.writes == 1

    def test_cas_success(self):
        a = AtomicView(np.array([5, 5]))
        assert a.compare_and_swap(0, 5, 7)
        assert a.array[0] == 7
        assert a.stats.cas_attempts == 1
        assert a.stats.cas_failures == 0

    def test_cas_failure_counts(self):
        a = AtomicView(np.array([5]))
        assert not a.compare_and_swap(0, 4, 7)
        assert a.array[0] == 5
        assert a.stats.cas_failures == 1

    def test_min_write_decreases(self):
        a = AtomicView(np.array([10]))
        assert a.min_write(0, 3)
        assert a.array[0] == 3

    def test_min_write_rejects_larger(self):
        a = AtomicView(np.array([3]))
        assert not a.min_write(0, 10)
        assert a.array[0] == 3

    def test_min_write_equal_is_noop(self):
        a = AtomicView(np.array([3]))
        assert not a.min_write(0, 3)


class TestAtomicStats:
    def test_merge(self):
        a = AtomicStats(reads=1, writes=2, cas_attempts=3, cas_failures=1)
        b = AtomicStats(reads=10, writes=20, cas_attempts=30, cas_failures=4)
        a.merge(b)
        assert (a.reads, a.writes, a.cas_attempts, a.cas_failures) == (
            11, 22, 33, 5,
        )
