"""Unit tests for work partitioning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.parallel.scheduler import partition_indices


def flatten(parts):
    return sorted(int(x) for p in parts for x in p)


class TestBlock:
    def test_covers_all_items(self):
        parts = partition_indices(10, 3)
        assert flatten(parts) == list(range(10))
        assert len(parts) == 3

    def test_contiguous(self):
        parts = partition_indices(9, 3)
        for p in parts:
            assert np.all(np.diff(p) == 1)

    def test_more_workers_than_items(self):
        parts = partition_indices(2, 5)
        assert len(parts) == 5
        assert flatten(parts) == [0, 1]

    def test_zero_items(self):
        parts = partition_indices(0, 4)
        assert flatten(parts) == []
        assert len(parts) == 4


class TestCyclic:
    def test_stride_assignment(self):
        parts = partition_indices(7, 3, schedule="cyclic")
        assert parts[0].tolist() == [0, 3, 6]
        assert parts[1].tolist() == [1, 4]
        assert parts[2].tolist() == [2, 5]

    def test_covers_all(self):
        assert flatten(partition_indices(11, 4, schedule="cyclic")) == list(range(11))


class TestChunk:
    def test_round_robin_chunks(self):
        parts = partition_indices(10, 2, schedule="chunk", chunk_size=3)
        # chunks: [0..2],[3..5],[6..8],[9] dealt alternately
        assert parts[0].tolist() == [0, 1, 2, 6, 7, 8]
        assert parts[1].tolist() == [3, 4, 5, 9]

    def test_covers_all(self):
        assert flatten(
            partition_indices(23, 3, schedule="chunk", chunk_size=4)
        ) == list(range(23))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            partition_indices(4, 2, schedule="chunk", chunk_size=0)


class TestGeneral:
    def test_explicit_item_array(self):
        items = np.array([5, 7, 9, 11])
        parts = partition_indices(items, 2)
        assert flatten(parts) == [5, 7, 9, 11]

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            partition_indices(4, 0)

    def test_rejects_negative_items(self):
        with pytest.raises(ConfigurationError):
            partition_indices(-1, 2)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            partition_indices(4, 2, schedule="guided")
