"""Unit tests for memory tracing."""

import numpy as np

from repro.parallel.memtrace import (
    OP_CAS_FAIL,
    OP_CAS_SUCCESS,
    OP_READ,
    OP_WRITE,
    MemoryTrace,
)


class TestMemoryTrace:
    def test_records_in_order(self):
        t = MemoryTrace()
        t.begin_phase("a")
        t.record(3, 0, OP_READ)
        t.record(5, 1, OP_WRITE)
        ta = t.finalize()
        assert ta.address.tolist() == [3, 5]
        assert ta.worker.tolist() == [0, 1]
        assert ta.op.tolist() == [OP_READ, OP_WRITE]

    def test_phase_attribution(self):
        t = MemoryTrace()
        t.begin_phase("a")
        t.record(0, 0, OP_READ)
        t.begin_phase("b")
        t.record(1, 0, OP_WRITE)
        t.record(2, 0, OP_CAS_SUCCESS)
        ta = t.finalize()
        assert ta.phase_labels == ("a", "b")
        assert ta.phase.tolist() == [0, 1, 1]

    def test_empty_trace(self):
        ta = MemoryTrace().finalize()
        assert ta.num_events == 0
        assert ta.phase_labels == ()

    def test_len(self):
        t = MemoryTrace()
        t.begin_phase("a")
        for i in range(10):
            t.record(i, 0, OP_READ)
        assert len(t) == 10

    def test_chunk_overflow(self):
        """Recording past one chunk allocates a second transparently."""
        t = MemoryTrace()
        t.begin_phase("a")
        n = (1 << 16) + 100
        for i in range(n):
            t.record(i % 7, 0, OP_CAS_FAIL)
        ta = t.finalize()
        assert ta.num_events == n
        assert ta.address[-1] == (n - 1) % 7

    def test_current_phase(self):
        t = MemoryTrace()
        assert t.current_phase == -1
        t.begin_phase("x")
        assert t.current_phase == 0
