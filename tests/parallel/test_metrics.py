"""Unit tests for work/span accounting and the cost model."""

import numpy as np
import pytest

from repro.parallel.metrics import PhaseStats, RunStats, WorkSpanModel


def phase(label, steps, **kw):
    return PhaseStats(label, np.asarray(steps, dtype=np.int64), **kw)


class TestPhaseStats:
    def test_work_and_span(self):
        ph = phase("p", [3, 5, 2])
        assert ph.work == 10
        assert ph.span == 5

    def test_imbalance(self):
        ph = phase("p", [5, 5])
        assert ph.imbalance == 1.0
        ph2 = phase("p", [10, 0])
        assert ph2.imbalance == 2.0

    def test_empty_phase(self):
        ph = phase("p", [0, 0])
        assert ph.span == 0
        assert ph.imbalance == 1.0


class TestRunStats:
    def test_totals(self):
        rs = RunStats(2, [phase("a", [1, 2]), phase("b", [3, 4])])
        assert rs.total_work == 10
        assert rs.total_span == 6

    def test_phase_lookup(self):
        rs = RunStats(1, [phase("a", [1])])
        assert rs.phase("a").work == 1
        with pytest.raises(KeyError):
            rs.phase("zz")

    def test_merged_by_label(self):
        rs = RunStats(
            2,
            [
                phase("link", [1, 2], reads=3),
                phase("compress", [1, 1]),
                phase("link", [2, 2], reads=4),
            ],
        )
        merged = rs.merged_by_label()
        assert merged["link"].work == 7
        assert merged["link"].reads == 7
        assert merged["compress"].work == 2

    def test_cas_failure_total(self):
        rs = RunStats(1, [phase("a", [1], cas_failures=2),
                          phase("b", [1], cas_failures=3)])
        assert rs.total_cas_failures == 5


class TestWorkSpanModel:
    def test_time_sums_spans(self):
        rs = RunStats(2, [phase("a", [4, 2]), phase("b", [1, 3])])
        model = WorkSpanModel(tau=2.0, beta=10.0)
        assert model.time(rs) == (4 * 2 + 10) + (3 * 2 + 10)

    def test_speedup(self):
        serial = RunStats(1, [phase("a", [100])])
        par = RunStats(4, [phase("a", [25, 25, 25, 25])])
        model = WorkSpanModel()
        assert model.speedup(serial, par) == pytest.approx(4.0)

    def test_beta_caps_scaling(self):
        """With barrier overhead, doubling workers beyond saturation stops
        helping — the Amdahl behaviour Fig. 8b's flattening shows."""
        model = WorkSpanModel(tau=1.0, beta=1000.0)
        t8 = model.time(RunStats(8, [phase("a", [125] * 8)]))
        t16 = model.time(RunStats(16, [phase("a", [63] * 16)]))
        assert t16 / t8 > 0.9  # barely improves

    def test_zero_time_speedup(self):
        model = WorkSpanModel()
        empty = RunStats(1, [])
        assert model.speedup(empty, empty) == float("inf")
