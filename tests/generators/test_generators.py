"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    component_fraction_graph,
    grid_graph,
    kronecker_graph,
    random_regular_graph,
    road_network_graph,
    uniform_random_graph,
    watts_strogatz_graph,
    web_graph,
)
from repro.generators.components import component_blocks
from repro.graph.properties import component_census, exact_diameter
from repro.graph.validate import validate_graph


class TestUniform:
    def test_size(self):
        g = uniform_random_graph(100, edge_factor=4, seed=0)
        assert g.num_vertices == 100
        assert 300 <= g.num_edges <= 400  # dedup/self-loop losses only

    def test_deterministic(self):
        a = uniform_random_graph(50, seed=7)
        b = uniform_random_graph(50, seed=7)
        assert a == b

    def test_seed_changes_graph(self):
        a = uniform_random_graph(50, seed=1)
        b = uniform_random_graph(50, seed=2)
        assert a != b

    def test_explicit_edge_count(self):
        g = uniform_random_graph(100, num_edges=10, seed=0)
        assert g.num_edges <= 10

    def test_structure_valid(self):
        validate_graph(uniform_random_graph(64, seed=3), require_sorted=True)

    def test_rejects_zero_vertices(self):
        with pytest.raises(ConfigurationError):
            uniform_random_graph(0)

    def test_rejects_negative_edge_factor(self):
        with pytest.raises(ConfigurationError):
            uniform_random_graph(10, edge_factor=-1)


class TestKronecker:
    def test_size(self):
        g = kronecker_graph(8, edge_factor=8, seed=0)
        assert g.num_vertices == 256

    def test_deterministic(self):
        assert kronecker_graph(6, seed=5) == kronecker_graph(6, seed=5)

    def test_skewed_degrees(self):
        g = kronecker_graph(11, edge_factor=16, seed=0)
        deg = np.asarray(g.degree())
        # R-MAT graphs are heavy-tailed: max degree far above the mean.
        assert deg.max() > 8 * deg.mean()

    def test_permutation_hides_structure(self):
        # Without label permutation, low ids have systematically higher
        # degree; with it, the correlation disappears.
        g_raw = kronecker_graph(10, seed=0, permute_labels=False)
        deg = np.asarray(g_raw.degree()).astype(float)
        n = g_raw.num_vertices
        low = deg[: n // 4].mean()
        high = deg[3 * n // 4 :].mean()
        assert low > 2 * high

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            kronecker_graph(4, a=0.9, b=0.2, c=0.2)

    def test_structure_valid(self):
        validate_graph(kronecker_graph(7, seed=1), require_sorted=True)


class TestRegular:
    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_near_regular(self, d):
        g = random_regular_graph(200, d, seed=0)
        deg = np.asarray(g.degree())
        # Configuration model with re-shuffling: tiny defect allowed.
        assert deg.mean() == pytest.approx(d, rel=0.02)
        assert deg.max() <= d

    def test_rejects_odd_product(self):
        with pytest.raises(ConfigurationError, match="even"):
            random_regular_graph(5, 3)

    def test_rejects_degree_too_high(self):
        with pytest.raises(ConfigurationError, match="degree"):
            random_regular_graph(4, 4)

    def test_zero_degree(self):
        g = random_regular_graph(10, 0, seed=0)
        assert g.num_edges == 0

    def test_simple_graph(self):
        g = random_regular_graph(100, 4, seed=1)
        validate_graph(g, require_sorted=True)  # no loops, no duplicates


class TestLattice:
    def test_grid_edge_count(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_grid_diameter(self):
        g = grid_graph(3, 4)
        assert exact_diameter(g) == (3 - 1) + (4 - 1)

    def test_grid_connected(self):
        assert component_census(grid_graph(6, 6)).num_components == 1

    def test_torus_degrees(self):
        g = grid_graph(4, 4, periodic=True)
        deg = np.asarray(g.degree())
        assert np.all(deg == 4)

    def test_road_network_low_degree(self):
        g = road_network_graph(30, 30, seed=0)
        deg = np.asarray(g.degree())
        assert deg.max() <= 6  # grid degree 4 + rare highway endpoints

    def test_road_network_drop_disconnects_or_sparsifies(self):
        dense = road_network_graph(20, 20, drop=0.0, highway=0.0, seed=0)
        sparse = road_network_graph(20, 20, drop=0.3, highway=0.0, seed=0)
        assert sparse.num_edges < dense.num_edges

    def test_rejects_bad_drop(self):
        with pytest.raises(ConfigurationError):
            road_network_graph(5, 5, drop=1.5)


class TestSmallWorld:
    def test_ring_without_rewiring(self):
        g = watts_strogatz_graph(20, k=4, rewire=0.0)
        deg = np.asarray(g.degree())
        assert np.all(deg == 4)

    def test_rejects_odd_k(self):
        with pytest.raises(ConfigurationError, match="even"):
            watts_strogatz_graph(10, k=3)

    def test_rejects_k_too_large(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(4, k=4)

    def test_rewiring_changes_graph(self):
        a = watts_strogatz_graph(50, k=4, rewire=0.0, seed=0)
        b = watts_strogatz_graph(50, k=4, rewire=0.5, seed=0)
        assert a != b

    def test_web_graph_heavy_tail(self):
        g = web_graph(2000, seed=0)
        deg = np.asarray(g.degree())
        assert deg.max() > 4 * deg.mean()

    def test_web_graph_connected_locality(self):
        # The ring layer alone keeps the graph connected.
        g = web_graph(500, rewire=0.0, seed=1)
        assert component_census(g).num_components == 1


class TestPowerlaw:
    def test_ba_connected(self):
        g = barabasi_albert_graph(500, 3, seed=0)
        assert component_census(g).num_components == 1

    def test_ba_heavy_tail(self):
        g = barabasi_albert_graph(2000, 4, seed=0)
        deg = np.asarray(g.degree())
        assert deg.max() > 5 * deg.mean()

    def test_ba_small_n_falls_back_to_clique(self):
        g = barabasi_albert_graph(4, 8, seed=0)
        assert g.num_edges == 6  # K4

    def test_ba_rejects_zero_m(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(10, 0)

    def test_chung_lu_mean_degree(self):
        g = chung_lu_graph(4000, mean_degree=10.0, seed=0)
        deg = np.asarray(g.degree())
        # m = n * mean_degree / 2 undirected draws -> stored (directed)
        # mean degree ~ mean_degree, less dedup/self-loop losses.
        assert deg.mean() == pytest.approx(10.0, rel=0.25)

    def test_chung_lu_many_components(self):
        g = chung_lu_graph(4000, mean_degree=6.0, seed=0)
        census = component_census(g)
        assert census.num_components > 10
        assert census.largest_fraction > 0.5

    def test_chung_lu_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            chung_lu_graph(100, exponent=1.0)


class TestComponentFraction:
    def test_blocks_partition_vertices(self):
        sizes = component_blocks(100, 0.3)
        assert int(sizes.sum()) == 100
        assert sizes.tolist() == [30, 30, 30, 10]

    def test_blocks_f_one(self):
        assert component_blocks(64, 1.0).tolist() == [64]

    def test_blocks_reject_empty(self):
        with pytest.raises(ConfigurationError):
            component_blocks(10, 0.01)

    def test_expected_component_structure(self):
        g = component_fraction_graph(2000, 0.1, edge_factor=8, seed=0)
        census = component_census(g)
        # ~10 components of ~200 vertices each (blocks connect internally
        # almost surely at edge_factor 8).
        assert census.num_components == 10
        assert census.sizes.max() <= 210

    def test_f_one_single_component(self):
        g = component_fraction_graph(500, 1.0, edge_factor=8, seed=0)
        assert component_census(g).num_components == 1

    def test_label_shuffle_preserves_structure(self):
        a = component_fraction_graph(400, 0.25, seed=3, shuffle_labels=False)
        b = component_fraction_graph(400, 0.25, seed=3, shuffle_labels=True)
        ca, cb = component_census(a), component_census(b)
        assert ca.sizes.tolist() == cb.sizes.tolist()

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(ConfigurationError):
            component_fraction_graph(100, 0.0)
        with pytest.raises(ConfigurationError):
            component_fraction_graph(100, 1.5)
