"""Tests for the Table III dataset registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.generators.datasets import (
    CPU_SUITE,
    DATASETS,
    GPU_SUITE,
    SIZE_TIERS,
    load_dataset,
)
from repro.graph.properties import component_census, pseudo_diameter


def test_registry_names():
    assert set(CPU_SUITE) <= set(DATASETS)
    assert set(GPU_SUITE) <= set(DATASETS)


def test_unknown_dataset_rejected():
    with pytest.raises(ConfigurationError, match="unknown dataset"):
        load_dataset("enron")


def test_unknown_size_rejected():
    with pytest.raises(ConfigurationError, match="size tier"):
        load_dataset("road", "enormous")


def test_deterministic():
    assert load_dataset("kron", "tiny", seed=9) == load_dataset(
        "kron", "tiny", seed=9
    )


def test_size_tiers_scale():
    tiny = load_dataset("urand", "tiny")
    small = load_dataset("urand", "small")
    assert small.num_vertices == 8 * tiny.num_vertices  # 2**13 vs 2**10


@pytest.mark.parametrize("name", CPU_SUITE)
def test_all_datasets_generate(name):
    g = load_dataset(name, "tiny")
    assert g.num_vertices > 0
    assert g.num_edges > 0


class TestTopologyClasses:
    """Each proxy must reproduce its paper counterpart's key structure."""

    def test_road_high_diameter_low_degree(self):
        g = load_dataset("road", "small")
        deg = np.asarray(g.degree())
        assert deg.mean() < 5
        assert pseudo_diameter(g) > 30

    def test_osm_eur_sparser_than_road(self):
        road = load_dataset("road", "small")
        osm = load_dataset("osm-eur", "small")
        assert (
            np.asarray(osm.degree()).mean()
            < np.asarray(road.degree()).mean()
        )

    def test_twitter_power_law_giant(self):
        g = load_dataset("twitter", "small")
        deg = np.asarray(g.degree())
        census = component_census(g)
        assert deg.max() > 20 * deg.mean()
        assert census.largest_fraction > 0.9

    def test_web_local_and_heavy(self):
        g = load_dataset("web", "small")
        deg = np.asarray(g.degree())
        assert deg.max() > 5 * deg.mean()

    def test_kron_many_isolated_components(self):
        g = load_dataset("kron", "small")
        census = component_census(g)
        assert census.num_components > 100
        assert census.largest_fraction > 0.5

    def test_urand_single_giant(self):
        g = load_dataset("urand", "small")
        assert component_census(g).num_components == 1

    def test_gpu_variants_smaller(self):
        kron = load_dataset("kron", "small")
        kron_gpu = load_dataset("kron-gpu", "small")
        assert kron_gpu.num_vertices < kron.num_vertices
