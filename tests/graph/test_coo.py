"""Unit tests for the EdgeList (COO) container."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.coo import EdgeList


def el(n, pairs):
    if pairs:
        src, dst = zip(*pairs)
    else:
        src, dst = [], []
    return EdgeList(n, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64))


class TestConstruction:
    def test_basic(self):
        e = el(3, [(0, 1), (1, 2)])
        assert e.num_edges == 2
        assert e.num_vertices == 3

    def test_empty(self):
        e = el(0, [])
        assert e.num_edges == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            el(2, [(0, 2)])

    def test_rejects_negative_endpoint(self):
        with pytest.raises(GraphFormatError):
            el(2, [(-1, 0)])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphFormatError):
            EdgeList(3, np.array([0, 1]), np.array([1]))

    def test_rejects_negative_vertex_count(self):
        with pytest.raises(GraphFormatError):
            EdgeList(-1, np.array([], dtype=np.int64), np.array([], dtype=np.int64))


class TestTransforms:
    def test_symmetrized_doubles_plain_edges(self):
        e = el(3, [(0, 1), (1, 2)]).symmetrized()
        assert sorted(e.as_pairs()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_symmetrized_keeps_loops_single(self):
        e = el(2, [(0, 0), (0, 1)]).symmetrized()
        assert sorted(e.as_pairs()) == [(0, 0), (0, 1), (1, 0)]

    def test_deduplicated(self):
        e = el(3, [(0, 1), (0, 1), (1, 0), (2, 1)]).deduplicated()
        # orientation-aware: (0,1) and (1,0) both survive once
        assert sorted(e.as_pairs()) == [(0, 1), (1, 0), (2, 1)]

    def test_deduplicated_preserves_order(self):
        e = el(4, [(2, 3), (0, 1), (2, 3), (1, 2)]).deduplicated()
        assert e.as_pairs() == [(2, 3), (0, 1), (1, 2)]

    def test_without_self_loops(self):
        e = el(3, [(0, 0), (0, 1), (2, 2)]).without_self_loops()
        assert e.as_pairs() == [(0, 1)]

    def test_canonicalized(self):
        e = el(4, [(3, 1), (0, 2)]).canonicalized()
        assert e.as_pairs() == [(1, 3), (0, 2)]

    def test_permuted(self):
        e = el(4, [(0, 1), (1, 2), (2, 3)]).permuted(np.array([2, 0, 1]))
        assert e.as_pairs() == [(2, 3), (0, 1), (1, 2)]

    def test_permuted_rejects_wrong_length(self):
        with pytest.raises(GraphFormatError):
            el(4, [(0, 1), (1, 2)]).permuted(np.array([0]))

    def test_concatenated(self):
        e = el(3, [(0, 1)]).concatenated(el(3, [(1, 2)]))
        assert e.as_pairs() == [(0, 1), (1, 2)]

    def test_concatenated_rejects_mismatched_order(self):
        with pytest.raises(GraphFormatError):
            el(3, [(0, 1)]).concatenated(el(4, [(1, 2)]))

    def test_relabeled(self):
        mapping = np.array([2, 0, 1])
        e = el(3, [(0, 1), (1, 2)]).relabeled(mapping, 3)
        assert e.as_pairs() == [(2, 0), (0, 1)]

    def test_relabeled_rejects_wrong_mapping_length(self):
        with pytest.raises(GraphFormatError):
            el(3, [(0, 1)]).relabeled(np.array([0, 1]), 3)

    def test_empty_transforms_are_noops(self):
        e = el(3, [])
        assert e.symmetrized().num_edges == 0
        assert e.deduplicated().num_edges == 0
        assert e.without_self_loops().num_edges == 0
        assert e.canonicalized().num_edges == 0
