"""Chunked / out-of-core loading: bit-equality with the whole-file paths."""

import io

import numpy as np
import pytest

from repro.constants import VERTEX_DTYPE
from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array
from repro.graph.io import (
    build_csr_streaming,
    iter_edge_list_chunks,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


def _chunked(src, dst, size):
    """Split endpoint arrays into fixed-size (src, dst) blocks."""
    return [
        (src[i : i + size], dst[i : i + size])
        for i in range(0, src.shape[0], size)
    ]


class TestStreamingBuilder:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 1000])
    def test_matches_whole_build(self, chunk):
        rng = np.random.default_rng(11)
        src = rng.integers(0, 60, size=500).astype(VERTEX_DTYPE)
        dst = rng.integers(0, 60, size=500).astype(VERTEX_DTYPE)
        whole = from_edge_array(src, dst)
        streamed = build_csr_streaming(lambda: _chunked(src, dst, chunk))
        assert streamed == whole

    def test_self_loops_and_duplicates_normalised(self):
        src = np.array([0, 0, 1, 2, 2, 3], dtype=VERTEX_DTYPE)
        dst = np.array([1, 1, 0, 2, 3, 2], dtype=VERTEX_DTYPE)
        whole = from_edge_array(src, dst)
        streamed = build_csr_streaming(lambda: _chunked(src, dst, 2))
        assert streamed == whole
        assert streamed.num_edges == 2  # {0,1} and {2,3}

    def test_self_loop_on_max_vertex_keeps_vertex_count(self):
        # from_edge_array sizes the graph before dropping self loops.
        src = np.array([0, 5], dtype=VERTEX_DTYPE)
        dst = np.array([1, 5], dtype=VERTEX_DTYPE)
        streamed = build_csr_streaming(lambda: _chunked(src, dst, 1))
        assert streamed == from_edge_array(src, dst)
        assert streamed.num_vertices == 6

    def test_explicit_num_vertices_adds_isolated_tail(self):
        src = np.array([0], dtype=VERTEX_DTYPE)
        dst = np.array([1], dtype=VERTEX_DTYPE)
        g = build_csr_streaming(lambda: _chunked(src, dst, 1), num_vertices=5)
        assert g.num_vertices == 5
        assert g == from_edge_array(src, dst, num_vertices=5)

    def test_out_of_range_vertex_rejected(self):
        src = np.array([0, 7], dtype=VERTEX_DTYPE)
        dst = np.array([1, 2], dtype=VERTEX_DTYPE)
        with pytest.raises(GraphFormatError, match="out of range"):
            build_csr_streaming(
                lambda: _chunked(src, dst, 1), num_vertices=4
            )

    def test_negative_vertex_rejected(self):
        src = np.array([-1], dtype=VERTEX_DTYPE)
        dst = np.array([1], dtype=VERTEX_DTYPE)
        with pytest.raises(GraphFormatError, match="non-negative"):
            build_csr_streaming(lambda: _chunked(src, dst, 1))

    def test_unstable_factory_detected(self):
        # Second pass yields fewer edges than the first counted.
        chunks = [
            _chunked(
                np.array([0, 1], dtype=VERTEX_DTYPE),
                np.array([1, 2], dtype=VERTEX_DTYPE),
                2,
            ),
            _chunked(
                np.array([0], dtype=VERTEX_DTYPE),
                np.array([1], dtype=VERTEX_DTYPE),
                2,
            ),
        ]
        with pytest.raises(GraphFormatError, match="different edges"):
            build_csr_streaming(lambda: chunks.pop(0))

    def test_empty_stream(self):
        g = build_csr_streaming(lambda: [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_million_vertex_streaming_construction(self):
        """Seeded 2^20-vertex build assembled from bounded chunks only."""
        n = 1 << 20
        seeds = range(8)

        def chunks():
            for seed in seeds:
                rng = np.random.default_rng(1000 + seed)
                src = rng.integers(0, n, size=1 << 15).astype(VERTEX_DTYPE)
                dst = rng.integers(0, n, size=1 << 15).astype(VERTEX_DTYPE)
                yield src, dst

        streamed = build_csr_streaming(chunks, num_vertices=n)
        all_src = np.concatenate([s for s, _ in chunks()])
        all_dst = np.concatenate([d for _, d in chunks()])
        whole = from_edge_array(all_src, all_dst, num_vertices=n)
        assert streamed == whole
        assert streamed.num_vertices == n


class TestChunkedEdgeList:
    @pytest.mark.parametrize("chunk", [1, 5, 64, 10_000])
    def test_matches_whole_read(self, tmp_path, two_cliques, chunk):
        path = tmp_path / "g.el"
        write_edge_list(two_cliques, path)
        assert read_edge_list(path, chunk_edges=chunk) == read_edge_list(path)

    def test_stream_input_rewound_between_passes(self, two_cliques):
        buf = io.StringIO()
        write_edge_list(two_cliques, buf)
        assert read_edge_list(buf, chunk_edges=3) == two_cliques

    def test_comment_and_error_semantics_preserved(self):
        text = "# c\n\n% c\n0 1 9.5\n1 2\n"
        g = read_edge_list(io.StringIO(text), chunk_edges=1)
        assert g.num_edges == 2
        with pytest.raises(GraphFormatError, match="non-integer"):
            list(iter_edge_list_chunks(io.StringIO("a b\n"), 4))
        with pytest.raises(GraphFormatError, match="two columns"):
            list(iter_edge_list_chunks(io.StringIO("0\n"), 4))

    def test_rejects_build_kwargs(self):
        with pytest.raises(GraphFormatError, match="default"):
            read_edge_list(
                io.StringIO("0 1\n"), chunk_edges=4, sort_neighbors=False
            )

    def test_rejects_non_positive_chunk(self):
        with pytest.raises(GraphFormatError, match="chunk_edges"):
            read_edge_list(io.StringIO("0 1\n"), chunk_edges=0)


class TestChunkedNpz:
    @pytest.mark.parametrize("chunk", [1, 4, 1_000_000])
    def test_roundtrip_matches_whole(self, tmp_path, mixed_graph, chunk):
        whole = tmp_path / "whole.npz"
        chunked = tmp_path / "chunked.npz"
        save_npz(mixed_graph, whole)
        save_npz(mixed_graph, chunked, chunk_edges=chunk)
        assert load_npz(chunked) == load_npz(whole) == mixed_graph

    def test_chunked_layout_written(self, tmp_path, two_cliques):
        path = tmp_path / "g.npz"
        save_npz(two_cliques, path, chunk_edges=4)
        with np.load(path) as data:
            names = set(data.files)
        assert "indices" not in names
        assert "indices_00000" in names
        assert len(names) - 1 == -(-two_cliques.indices.shape[0] // 4)

    def test_missing_chunk_rejected(self, tmp_path):
        indptr = np.array([0, 2, 4], dtype=VERTEX_DTYPE)
        np.savez(
            tmp_path / "bad.npz",
            indptr=indptr,
            indices_00000=np.array([1, 1], dtype=VERTEX_DTYPE),
            indices_00002=np.array([0, 0], dtype=VERTEX_DTYPE),
        )
        with pytest.raises(GraphFormatError, match="non-contiguous"):
            load_npz(tmp_path / "bad.npz")

    def test_truncated_chunks_rejected(self, tmp_path):
        indptr = np.array([0, 2, 4], dtype=VERTEX_DTYPE)
        np.savez(
            tmp_path / "short.npz",
            indptr=indptr,
            indices_00000=np.array([1, 1], dtype=VERTEX_DTYPE),
        )
        with pytest.raises(GraphFormatError, match="truncated"):
            load_npz(tmp_path / "short.npz")

    def test_oversized_chunks_rejected(self, tmp_path):
        indptr = np.array([0, 1, 2], dtype=VERTEX_DTYPE)
        np.savez(
            tmp_path / "long.npz",
            indptr=indptr,
            indices_00000=np.array([1, 0, 0], dtype=VERTEX_DTYPE),
        )
        with pytest.raises(GraphFormatError, match="overflow"):
            load_npz(tmp_path / "long.npz")

    def test_rejects_non_positive_chunk(self, tmp_path, two_cliques):
        with pytest.raises(GraphFormatError, match="chunk_edges"):
            save_npz(two_cliques, tmp_path / "g.npz", chunk_edges=0)

    def test_empty_graph_chunked(self, tmp_path):
        g = from_edge_array(
            np.empty(0, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE)
        )
        path = tmp_path / "empty.npz"
        save_npz(g, path, chunk_edges=8)
        assert load_npz(path) == g
