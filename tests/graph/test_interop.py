"""Tests for NetworkX interoperability (and the third oracle)."""

import networkx as nx
import numpy as np
import pytest

import repro
from repro.analysis import equivalent_labelings
from repro.errors import GraphFormatError
from repro.graph.interop import components_as_sets, from_networkx, to_networkx


class TestFromNetworkx:
    def test_basic_conversion(self):
        g = nx.Graph([(0, 1), (1, 2), (5, 6)])
        csr, mapping = from_networkx(g)
        assert csr.num_vertices == g.number_of_nodes()
        assert csr.num_edges == 3
        assert set(mapping) == set(g.nodes())

    def test_arbitrary_node_objects(self):
        g = nx.Graph([("alice", "bob"), ("carol", "dave"), ("bob", "carol")])
        g.add_node("eve")  # isolated
        csr, mapping = from_networkx(g)
        labels = repro.connected_components(csr)
        by_node = {mapping[v]: int(labels[v]) for v in range(len(mapping))}
        assert by_node["alice"] == by_node["dave"]
        assert by_node["eve"] != by_node["alice"]

    def test_rejects_directed(self):
        with pytest.raises(GraphFormatError, match="directed"):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_empty(self):
        csr, mapping = from_networkx(nx.Graph())
        assert csr.num_vertices == 0
        assert mapping == []


class TestToNetworkx:
    def test_roundtrip(self, mixed_graph):
        nx_graph = to_networkx(mixed_graph)
        assert nx_graph.number_of_nodes() == mixed_graph.num_vertices
        assert nx_graph.number_of_edges() == mixed_graph.num_edges
        back, _ = from_networkx(nx_graph)
        assert back == mixed_graph

    def test_isolated_preserved(self, isolated_vertices):
        nx_graph = to_networkx(isolated_vertices)
        assert nx_graph.number_of_nodes() == 5


class TestNetworkxOracle:
    """NetworkX connected_components as a third independent oracle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, random_graph_factory, seed):
        g = random_graph_factory(60, 100, seed)
        nx_graph = to_networkx(g)
        nx_labels = np.empty(g.num_vertices, dtype=np.int64)
        for i, comp in enumerate(nx.connected_components(nx_graph)):
            for v in comp:
                nx_labels[v] = i
        assert equivalent_labelings(
            repro.connected_components(g), nx_labels
        )

    def test_component_sets_match_networkx(self, mixed_graph):
        labels = repro.connected_components(mixed_graph)
        ours = components_as_sets(labels)
        theirs = sorted(
            nx.connected_components(to_networkx(mixed_graph)),
            key=len,
            reverse=True,
        )
        assert sorted(map(frozenset, ours)) == sorted(map(frozenset, theirs))


class TestComponentsAsSets:
    def test_with_mapping(self):
        labels = np.array([0, 0, 2])
        sets = components_as_sets(labels, mapping=["a", "b", "c"])
        assert {"a", "b"} in sets
        assert {"c"} in sets

    def test_sorted_by_size(self):
        labels = np.array([5, 1, 1, 1, 5])
        sets = components_as_sets(labels)
        assert len(sets[0]) == 3
