"""Unit tests for semantic CSR validation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.validate import (
    check_no_duplicates,
    check_no_self_loops,
    check_sorted_neighbors,
    check_symmetric,
    validate_graph,
)


def raw(indptr, indices):
    return CSRGraph(np.asarray(indptr), np.asarray(indices))


class TestSymmetry:
    def test_symmetric_passes(self, two_cliques):
        check_symmetric(two_cliques)

    def test_asymmetric_fails(self):
        g = raw([0, 1, 1], [1])  # edge (0,1) without mirror
        with pytest.raises(GraphFormatError, match="not symmetric"):
            check_symmetric(g)

    def test_self_loop_is_own_mirror(self):
        el = EdgeList(2, np.array([0]), np.array([0]))
        g = build_csr(el, drop_self_loops=False)
        check_symmetric(g)

    def test_multiplicity_mismatch_fails(self):
        # (0,1) twice but (1,0) once.
        g = raw([0, 2, 3], [1, 1, 0])
        with pytest.raises(GraphFormatError, match="not symmetric"):
            check_symmetric(g)


class TestDuplicates:
    def test_clean_passes(self, path_graph):
        check_no_duplicates(path_graph)

    def test_duplicates_fail(self):
        g = raw([0, 2, 4], [1, 1, 0, 0])
        with pytest.raises(GraphFormatError, match="duplicate"):
            check_no_duplicates(g)


class TestSelfLoops:
    def test_clean_passes(self, path_graph):
        check_no_self_loops(path_graph)

    def test_loops_fail(self):
        el = EdgeList(2, np.array([0]), np.array([0]))
        g = build_csr(el, drop_self_loops=False)
        with pytest.raises(GraphFormatError, match="self loops"):
            check_no_self_loops(g)


class TestSortedNeighbors:
    def test_sorted_passes(self, star_graph):
        check_sorted_neighbors(star_graph)

    def test_unsorted_fails(self):
        el = EdgeList(4, np.array([0, 0, 0]), np.array([3, 1, 2]))
        g = build_csr(el, sort_neighbors=False)
        with pytest.raises(GraphFormatError, match="not sorted"):
            check_sorted_neighbors(g)

    def test_descending_across_row_boundary_ok(self):
        # Row 0 ends with 2, row 1 starts with 0: fine, rows independent.
        g = raw([0, 2, 4, 4], [1, 2, 0, 2])
        check_sorted_neighbors(g)

    def test_tiny_graphs_pass(self, empty_graph, single_vertex):
        check_sorted_neighbors(empty_graph)
        check_sorted_neighbors(single_vertex)


class TestValidateGraph:
    def test_full_suite_on_clean_graph(self, two_cliques):
        validate_graph(two_cliques, require_sorted=True)

    def test_flags_allow_violations(self):
        el = EdgeList(3, np.array([0, 0, 1]), np.array([0, 1, 0]))
        g = build_csr(
            el, drop_self_loops=False, dedup=False, sort_neighbors=False
        )
        validate_graph(
            g, allow_self_loops=True, allow_duplicates=True
        )

    def test_rejects_loops_by_default(self):
        el = EdgeList(2, np.array([0]), np.array([0]))
        g = build_csr(el, drop_self_loops=False)
        with pytest.raises(GraphFormatError):
            validate_graph(g)
