"""Unit tests for CSR construction from edge data."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr, from_edge_array, from_edge_list
from repro.graph.coo import EdgeList
from repro.graph.validate import (
    check_no_duplicates,
    check_no_self_loops,
    check_sorted_neighbors,
    check_symmetric,
)


def test_symmetrize_default():
    g = from_edge_list([(0, 1), (1, 2)])
    check_symmetric(g)
    assert g.has_edge(1, 0)
    assert g.has_edge(2, 1)


def test_dedup_default():
    g = from_edge_list([(0, 1), (0, 1), (1, 0)])
    assert g.num_edges == 1
    check_no_duplicates(g)


def test_self_loops_dropped_by_default():
    g = from_edge_list([(0, 0), (0, 1)])
    check_no_self_loops(g)
    assert g.num_edges == 1


def test_self_loops_kept_when_requested():
    el = EdgeList(2, np.array([0]), np.array([0]))
    g = build_csr(el, drop_self_loops=False)
    assert g.num_self_loops == 1


def test_sorted_neighbors_default():
    g = from_edge_list([(0, 3), (0, 1), (0, 2)], num_vertices=4)
    check_sorted_neighbors(g)
    assert g.neighbors(0).tolist() == [1, 2, 3]


def test_unsorted_preserves_insertion_order():
    el = EdgeList(4, np.array([0, 0, 0]), np.array([3, 1, 2]))
    g = build_csr(el, symmetrize=False, dedup=False, sort_neighbors=False)
    assert g.neighbors(0).tolist() == [3, 1, 2]


def test_unsorted_symmetrized_row_order():
    """With symmetrize + stable placement, each row keeps input order:
    forward records first, mirrored records after."""
    el = EdgeList(3, np.array([0, 1]), np.array([2, 0]))
    g = build_csr(el, sort_neighbors=False)
    assert g.neighbors(0).tolist() == [2, 1]  # fwd (0,2) then mirror of (1,0)


def test_no_symmetrize():
    el = EdgeList(3, np.array([0]), np.array([1]))
    g = build_csr(el, symmetrize=False)
    assert g.degree(0) == 1
    assert g.degree(1) == 0


def test_from_edge_array_infers_count():
    g = from_edge_array(np.array([0, 5]), np.array([1, 2]))
    assert g.num_vertices == 6


def test_from_edge_array_empty():
    g = from_edge_array(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert g.num_vertices == 0


def test_from_edge_array_explicit_count():
    g = from_edge_array(np.array([0]), np.array([1]), num_vertices=10)
    assert g.num_vertices == 10


def test_from_edge_list_rejects_bad_shape():
    with pytest.raises(GraphFormatError):
        from_edge_list([(0, 1, 2)])  # type: ignore[list-item]


def test_from_edge_list_empty():
    g = from_edge_list([])
    assert g.num_vertices == 0
    assert g.num_edges == 0


def test_degree_sum_equals_directed_edges():
    g = from_edge_list([(0, 1), (1, 2), (2, 3), (0, 3)])
    assert int(np.asarray(g.degree()).sum()) == g.num_directed_edges


def test_multigraph_input_normalises():
    pairs = [(0, 1)] * 5 + [(1, 0)] * 3 + [(1, 1)] * 2
    g = from_edge_list(pairs)
    assert g.num_edges == 1
    assert g.num_self_loops == 0
