"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, from_edge_list
from repro.graph.properties import (
    bfs_levels,
    component_census,
    degree_statistics,
    exact_diameter,
    pseudo_diameter,
    scipy_components,
    summarize,
)


class TestDegreeStatistics:
    def test_star(self, star_graph):
        s = degree_statistics(star_graph)
        assert s.min == 1
        assert s.max == 7
        assert s.num_isolated == 0
        assert s.mean == pytest.approx(14 / 8)

    def test_with_isolated(self, mixed_graph):
        s = degree_statistics(mixed_graph)
        assert s.num_isolated == 3  # vertices 7, 10, 11

    def test_empty(self, empty_graph):
        s = degree_statistics(empty_graph)
        assert s.min == s.max == 0
        assert s.mean == 0.0


class TestComponentCensus:
    def test_mixed(self, mixed_graph):
        c = component_census(mixed_graph)
        assert c.num_components == 6
        assert c.sizes.tolist() == [4, 3, 2, 1, 1, 1]
        assert c.largest == 4
        assert c.largest_fraction == pytest.approx(4 / 12)

    def test_connected(self, cycle_graph):
        c = component_census(cycle_graph)
        assert c.num_components == 1
        assert c.largest_fraction == 1.0

    def test_empty(self, empty_graph):
        c = component_census(empty_graph)
        assert c.num_components == 0
        assert c.largest == 0

    def test_scipy_labels_partition(self, two_cliques):
        labels = scipy_components(two_cliques)
        assert labels[0] == labels[1] == labels[2] == labels[3]
        assert labels[4] == labels[5] == labels[6] == labels[7]
        assert labels[0] != labels[4]


class TestBFS:
    def test_path_levels(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert levels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable_is_minus_one(self, two_cliques):
        levels = bfs_levels(two_cliques, 0)
        assert all(levels[4:] == -1)
        assert all(levels[:4] >= 0)

    def test_cycle_levels(self, cycle_graph):
        levels = bfs_levels(cycle_graph, 0)
        assert levels.tolist() == [0, 1, 2, 3, 2, 1]

    def test_star_levels(self, star_graph):
        levels = bfs_levels(star_graph, 3)
        assert levels[3] == 0
        assert levels[0] == 1
        assert all(levels[[1, 2, 4, 5, 6, 7]] == 2)

    def test_source_only(self, isolated_vertices):
        levels = bfs_levels(isolated_vertices, 2)
        assert levels[2] == 0
        assert np.count_nonzero(levels >= 0) == 1


class TestDiameter:
    def test_exact_path(self, path_graph):
        assert exact_diameter(path_graph) == 5

    def test_exact_cycle(self, cycle_graph):
        assert exact_diameter(cycle_graph) == 3

    def test_exact_star(self, star_graph):
        assert exact_diameter(star_graph) == 2

    def test_pseudo_lower_bounds_exact(self):
        # Double sweep is exact on trees and a lower bound in general.
        for seed in range(5):
            rng = np.random.default_rng(seed)
            pairs = [
                (int(rng.integers(0, 30)), int(rng.integers(0, 30)))
                for _ in range(45)
            ]
            g = from_edge_list(pairs, num_vertices=30)
            assert pseudo_diameter(g) <= exact_diameter(g)

    def test_pseudo_exact_on_path(self, path_graph):
        assert pseudo_diameter(path_graph) == 5

    def test_empty(self, empty_graph):
        assert pseudo_diameter(empty_graph) == 0
        assert exact_diameter(empty_graph) == 0


class TestSummarize:
    def test_fields(self, mixed_graph):
        p = summarize(mixed_graph, "mixed")
        assert p.name == "mixed"
        assert p.num_vertices == 12
        assert p.num_edges == 7
        assert p.components.num_components == 6
        assert p.pseudo_diameter >= 2
