"""Round-trip and error tests for graph I/O."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import from_edge_list
from repro.graph.io import (
    load_graph,
    load_npz,
    read_edge_list,
    read_metis,
    save_graph,
    save_npz,
    write_edge_list,
    write_metis,
)


@pytest.fixture
def sample(two_cliques):
    # .el files cannot express trailing isolated vertices, so round-trip
    # samples use a graph whose highest id appears in an edge.
    return two_cliques


class TestEdgeListFormat:
    def test_roundtrip(self, tmp_path, sample):
        path = tmp_path / "g.el"
        write_edge_list(sample, path)
        assert read_edge_list(path) == sample

    def test_roundtrip_via_stream(self, sample):
        buf = io.StringIO()
        write_edge_list(sample, buf)
        buf.seek(0)
        assert read_edge_list(buf) == sample

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n% other comment\n0 1\n1 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 2

    def test_extra_columns_ignored(self):
        g = read_edge_list(io.StringIO("0 1 3.5\n1 2 7\n"))
        assert g.num_edges == 2

    def test_rejects_single_column(self):
        with pytest.raises(GraphFormatError, match="two columns"):
            read_edge_list(io.StringIO("0\n"))

    def test_rejects_non_integer(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(io.StringIO("a b\n"))


class TestMetisFormat:
    def test_roundtrip(self, tmp_path, sample):
        path = tmp_path / "g.graph"
        write_metis(sample, path)
        assert read_metis(path) == sample

    def test_roundtrip_with_isolated_vertices(self, tmp_path, mixed_graph):
        # METIS rows preserve isolated vertices, unlike edge lists.
        path = tmp_path / "m.graph"
        write_metis(mixed_graph, path)
        assert read_metis(path) == mixed_graph

    def test_header_edge_count_checked(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphFormatError, match="declares 5 edges"):
            read_metis(path)

    def test_header_vertex_count_checked(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(GraphFormatError, match="3 vertices"):
            read_metis(path)

    def test_rejects_weighted(self, tmp_path):
        path = tmp_path / "w.graph"
        path.write_text("2 1 11\n2 5\n1 5\n")
        with pytest.raises(GraphFormatError, match="weighted"):
            read_metis(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(GraphFormatError, match="no header"):
            read_metis(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% hello\n2 1\n2\n1\n")
        g = read_metis(path)
        assert g.num_edges == 1


class TestNpzFormat:
    def test_roundtrip(self, tmp_path, sample):
        path = tmp_path / "g.npz"
        save_npz(sample, path)
        assert load_npz(path) == sample

    def test_roundtrip_with_isolated_vertices(self, tmp_path, mixed_graph):
        path = tmp_path / "m.npz"
        save_npz(mixed_graph, path)
        assert load_npz(path) == mixed_graph

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError, match="missing"):
            load_npz(path)


class TestDispatch:
    @pytest.mark.parametrize("ext", [".el", ".txt", ".graph", ".npz"])
    def test_roundtrip_by_extension(self, tmp_path, sample, ext):
        path = tmp_path / f"g{ext}"
        save_graph(sample, path)
        assert load_graph(path) == sample

    def test_unknown_extension_load(self, tmp_path):
        with pytest.raises(GraphFormatError, match="extension"):
            load_graph(tmp_path / "g.xyz")

    def test_unknown_extension_save(self, tmp_path, sample):
        with pytest.raises(GraphFormatError, match="extension"):
            save_graph(sample, tmp_path / "g.xyz")


def test_empty_graph_roundtrips(tmp_path):
    g = from_edge_list([], num_vertices=0)
    path = tmp_path / "empty.npz"
    save_npz(g, path)
    assert load_npz(path) == g
