"""Tests for subgraph extraction."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.graph.subgraph import (
    component_subgraph,
    filter_edges,
    induced_subgraph,
    largest_component_subgraph,
    split_components,
)


class TestInduced:
    def test_basic(self, two_cliques):
        sub, mapping = induced_subgraph(two_cliques, np.array([0, 1, 2, 3]))
        assert sub.num_vertices == 4
        assert sub.num_edges == 6  # K4
        assert mapping.tolist() == [0, 1, 2, 3]

    def test_cross_edges_dropped(self, two_cliques):
        sub, _ = induced_subgraph(two_cliques, np.array([0, 1, 4, 5]))
        assert sub.num_edges == 2  # (0,1) and (4,5) only

    def test_ids_compacted(self, two_cliques):
        sub, mapping = induced_subgraph(two_cliques, np.array([5, 7]))
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)
        assert sorted(mapping.tolist()) == [5, 7]

    def test_empty_selection(self, two_cliques):
        sub, mapping = induced_subgraph(
            two_cliques, np.empty(0, dtype=np.int64)
        )
        assert sub.num_vertices == 0
        assert mapping.size == 0

    def test_rejects_out_of_range(self, two_cliques):
        with pytest.raises(ConfigurationError):
            induced_subgraph(two_cliques, np.array([99]))

    def test_rejects_duplicates(self, two_cliques):
        with pytest.raises(ConfigurationError):
            induced_subgraph(two_cliques, np.array([1, 1]))


class TestFilterEdges:
    def test_keeps_subset(self, path_graph):
        src, dst = path_graph.undirected_edge_array()
        keep = np.ones(src.shape[0], dtype=bool)
        keep[2] = False
        filtered = filter_edges(path_graph, keep)
        assert filtered.num_edges == path_graph.num_edges - 1
        assert filtered.num_vertices == path_graph.num_vertices

    def test_rejects_bad_mask(self, path_graph):
        with pytest.raises(ConfigurationError):
            filter_edges(path_graph, np.ones(3, dtype=bool))


class TestComponentExtraction:
    def test_component_subgraph(self, mixed_graph):
        labels = repro.connected_components(mixed_graph)
        sub, mapping = component_subgraph(mixed_graph, labels, int(labels[4]))
        assert sub.num_vertices == 3  # triangle {4,5,6}
        assert sub.num_edges == 3
        assert sorted(mapping.tolist()) == [4, 5, 6]

    def test_largest_component(self, mixed_graph):
        sub, mapping = largest_component_subgraph(mixed_graph)
        assert sub.num_vertices == 4  # path {0,1,2,3}
        assert sorted(mapping.tolist()) == [0, 1, 2, 3]

    def test_largest_with_explicit_labels(self, mixed_graph):
        labels = repro.connected_components(mixed_graph, "sv")
        sub, _ = largest_component_subgraph(mixed_graph, labels)
        assert sub.num_vertices == 4

    def test_split_components(self, mixed_graph):
        parts = split_components(mixed_graph)
        sizes = [sub.num_vertices for sub, _ in parts]
        assert sizes == [4, 3, 2, 1, 1, 1]
        # Vertex sets partition the graph.
        all_ids = sorted(
            int(v) for _, mapping in parts for v in mapping
        )
        assert all_ids == list(range(12))

    def test_split_min_size(self, mixed_graph):
        parts = split_components(mixed_graph, min_size=2)
        assert [sub.num_vertices for sub, _ in parts] == [4, 3, 2]

    def test_unknown_label_rejected(self, mixed_graph):
        labels = repro.connected_components(mixed_graph)
        with pytest.raises(ConfigurationError):
            component_subgraph(mixed_graph, labels, 999)

    def test_components_internally_connected(self):
        from repro.generators import kronecker_graph
        from repro.graph.properties import component_census

        g = kronecker_graph(8, edge_factor=6, seed=0)
        for sub, _ in split_components(g, min_size=2)[:5]:
            census = component_census(sub)
            assert census.num_components == 1
