"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import GraphBuilder, from_edge_list
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_valid_triangle(self):
        g = CSRGraph(
            np.array([0, 2, 4, 6]), np.array([1, 2, 0, 2, 0, 1])
        )
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_directed_edges == 6

    def test_empty_graph(self):
        g = CSRGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_without_edges(self):
        g = CSRGraph(np.array([0, 0, 0, 0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 3
        assert g.degree(1) == 0

    def test_rejects_bad_first_indptr(self):
        with pytest.raises(GraphFormatError, match="indptr\\[0\\]"):
            CSRGraph(np.array([1, 2]), np.array([0, 0]))

    def test_rejects_mismatched_indptr_tail(self):
        with pytest.raises(GraphFormatError, match="indptr\\[-1\\]"):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphFormatError, match="monotone"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(GraphFormatError, match="neighbour ids"):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_negative_neighbor(self):
        with pytest.raises(GraphFormatError, match="neighbour ids"):
            CSRGraph(np.array([0, 1]), np.array([-1]))

    def test_rejects_2d_arrays(self):
        with pytest.raises(GraphFormatError, match="1-D"):
            CSRGraph(np.array([[0, 1]]), np.array([0]))

    def test_arrays_frozen(self):
        g = from_edge_list([(0, 1)])
        with pytest.raises(ValueError):
            g.indptr[0] = 5
        with pytest.raises(ValueError):
            g.indices[0] = 0


class TestAccessors:
    def test_degree_array(self, star_graph):
        deg = star_graph.degree()
        assert deg[0] == 7
        assert all(deg[1:] == 1)

    def test_degree_single(self, star_graph):
        assert star_graph.degree(0) == 7
        assert star_graph.degree(3) == 1

    def test_degree_out_of_range(self, star_graph):
        with pytest.raises(IndexError):
            star_graph.degree(8)
        with pytest.raises(IndexError):
            star_graph.degree(-1)

    def test_neighbors(self, path_graph):
        assert path_graph.neighbors(0).tolist() == [1]
        assert path_graph.neighbors(2).tolist() == [1, 3]
        assert path_graph.neighbors(5).tolist() == [4]

    def test_neighbor_indexed(self, path_graph):
        assert path_graph.neighbor(2, 0) == 1
        assert path_graph.neighbor(2, 1) == 3

    def test_neighbor_index_out_of_range(self, path_graph):
        with pytest.raises(IndexError):
            path_graph.neighbor(0, 1)
        with pytest.raises(IndexError):
            path_graph.neighbor(0, -1)

    def test_sources(self, path_graph):
        src = path_graph.sources()
        # degree sequence 1,2,2,2,2,1
        assert src.tolist() == [0, 1, 1, 2, 2, 3, 3, 4, 4, 5]

    def test_edge_array_parallel(self, cycle_graph):
        src, dst = cycle_graph.edge_array()
        assert src.shape == dst.shape
        assert src.shape[0] == cycle_graph.num_directed_edges

    def test_undirected_edge_array(self, cycle_graph):
        src, dst = cycle_graph.undirected_edge_array()
        assert src.shape[0] == cycle_graph.num_edges == 6
        assert np.all(src <= dst)

    def test_iter_edges_matches_edge_array(self, mixed_graph):
        pairs = list(mixed_graph.iter_edges())
        src, dst = mixed_graph.edge_array()
        assert pairs == list(zip(src.tolist(), dst.tolist()))

    def test_has_edge(self, two_cliques):
        assert two_cliques.has_edge(0, 3)
        assert two_cliques.has_edge(4, 7)
        assert not two_cliques.has_edge(0, 4)
        assert not two_cliques.has_edge(0, 0)

    def test_has_edge_unsorted_fallback(self):
        # Build without sorting to exercise the linear-scan path.
        from repro.graph.builder import build_csr
        from repro.graph.coo import EdgeList

        el = EdgeList(4, np.array([0, 0, 0]), np.array([3, 1, 2]))
        g = build_csr(el, sort_neighbors=False)
        assert g.neighbors(0).tolist() == [3, 1, 2]
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 0)


class TestSelfLoops:
    def test_self_loop_counting(self):
        from repro.graph.builder import build_csr
        from repro.graph.coo import EdgeList

        el = EdgeList(3, np.array([0, 1]), np.array([0, 2]))
        g = build_csr(el, drop_self_loops=False)
        assert g.num_self_loops == 1
        # one loop (counted once) + one ordinary edge
        assert g.num_edges == 2
        assert g.num_directed_edges == 3


class TestEquality:
    def test_equal_graphs(self):
        a = from_edge_list([(0, 1), (1, 2)])
        b = from_edge_list([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = from_edge_list([(0, 1)])
        b = from_edge_list([(0, 1), (1, 2)])
        assert a != b

    def test_eq_other_type(self):
        a = from_edge_list([(0, 1)])
        assert a != "graph"


class TestGraphBuilderShapes:
    def test_clique_edge_count(self):
        g = GraphBuilder(5).add_clique(list(range(5))).build()
        assert g.num_edges == 10

    def test_cycle_closes(self):
        g = GraphBuilder(4).add_cycle([0, 1, 2, 3]).build()
        assert g.has_edge(3, 0)
        assert g.num_edges == 4

    def test_star_degrees(self):
        g = GraphBuilder(4).add_star(0, [1, 2, 3]).build()
        assert g.degree(0) == 3

    def test_builder_chaining(self):
        g = GraphBuilder(6).add_edge(0, 1).add_edges([(1, 2), (3, 4)]).build()
        assert g.num_edges == 3

    def test_builder_rejects_negative(self):
        with pytest.raises(GraphFormatError):
            GraphBuilder().add_edge(-1, 0)

    def test_builder_infers_vertex_count(self):
        g = GraphBuilder().add_edge(2, 7).build()
        assert g.num_vertices == 8
