"""Shared fixtures: a zoo of small graphs with known component structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphBuilder, from_edge_list
from repro.graph.csr import CSRGraph


@pytest.fixture
def empty_graph() -> CSRGraph:
    return from_edge_list([], num_vertices=0)


@pytest.fixture
def single_vertex() -> CSRGraph:
    return from_edge_list([], num_vertices=1)


@pytest.fixture
def isolated_vertices() -> CSRGraph:
    """Five vertices, no edges: five singleton components."""
    return from_edge_list([], num_vertices=5)


@pytest.fixture
def path_graph() -> CSRGraph:
    """0-1-2-3-4-5: one component, diameter 5."""
    return GraphBuilder(6).add_path([0, 1, 2, 3, 4, 5]).build()


@pytest.fixture
def cycle_graph() -> CSRGraph:
    """6-cycle: one component."""
    return GraphBuilder(6).add_cycle([0, 1, 2, 3, 4, 5]).build()


@pytest.fixture
def star_graph() -> CSRGraph:
    """Star with center 0 and 7 leaves."""
    return GraphBuilder(8).add_star(0, list(range(1, 8))).build()


@pytest.fixture
def two_cliques() -> CSRGraph:
    """Two 4-cliques: two components of size 4."""
    return (
        GraphBuilder(8)
        .add_clique([0, 1, 2, 3])
        .add_clique([4, 5, 6, 7])
        .build()
    )


@pytest.fixture
def mixed_graph() -> CSRGraph:
    """Path + triangle + isolated vertex + pair: 4 components in 12 vertices."""
    return (
        GraphBuilder(12)
        .add_path([0, 1, 2, 3])
        .add_cycle([4, 5, 6])
        .add_edge(8, 9)
        .build()
    )  # vertices 7, 10, 11 isolated -> components: {0-3},{4-6},{8,9},{7},{10},{11}


@pytest.fixture
def mixed_components() -> list[set[int]]:
    """Ground-truth partition of mixed_graph."""
    return [{0, 1, 2, 3}, {4, 5, 6}, {8, 9}, {7}, {10}, {11}]


@pytest.fixture
def giant_graph() -> CSRGraph:
    """One giant clique-chain plus satellites: giant covers 80% of vertices."""
    b = GraphBuilder(50)
    b.add_path(list(range(40)))  # giant path component 0..39
    b.add_edge(40, 41)
    b.add_edge(42, 43)
    b.add_cycle([44, 45, 46])
    return b.build()  # 47,48,49 isolated


def random_graph(n: int, m: int, seed: int) -> CSRGraph:
    """Deterministic random multigraph for tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return from_edge_list(list(zip(src.tolist(), dst.tolist())), num_vertices=n)


@pytest.fixture
def random_graph_factory():
    return random_graph
