"""Tests for the connectivity service: epochs, snapshots, the oracle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.serve import ConnectivityService, Snapshot
from repro.unionfind import sequential_components


@pytest.fixture
def service(two_cliques):
    return ConnectivityService(two_cliques, recompress_every=1_000_000)


def _stream(n, m, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=m), rng.integers(0, n, size=m)


class TestInitialSolve:
    def test_epoch_zero_state(self, two_cliques, service):
        assert service.epoch == 0
        assert service.num_vertices == 8
        assert service.num_components == 2
        oracle = np.asarray(sequential_components(two_cliques))
        assert np.array_equal(service.labels(), oracle)

    def test_any_algorithm_and_plan(self, two_cliques):
        for name in ("sv", "kout+sv", "auto"):
            svc = ConnectivityService(two_cliques, algorithm=name)
            assert svc.num_components == 2
        assert svc.plan  # auto records its selected plan

    def test_fingerprint_carried(self, two_cliques, service):
        assert service.fingerprint["vertices"] == 8
        assert "digest" in service.fingerprint

    def test_rejects_negative_recompress(self, two_cliques):
        with pytest.raises(ConfigurationError):
            ConnectivityService(two_cliques, recompress_every=-1)


class TestPointAndBatchReads:
    def test_point_queries(self, service):
        assert service.same_component(0, 3)
        assert not service.same_component(0, 4)
        assert service.component_size(2) == 4

    def test_batch_queries(self, service):
        same = service.same_component_batch(
            np.array([0, 0, 5]), np.array([1, 7, 6])
        )
        assert same.tolist() == [True, False, True]
        sizes = service.component_sizes(np.array([0, 4]))
        assert sizes.tolist() == [4, 4]

    def test_bounds_checked(self, service):
        with pytest.raises(ConfigurationError):
            service.same_component(0, 8)
        with pytest.raises(ConfigurationError):
            service.component_sizes(np.array([99]))

    def test_query_counters(self, service):
        service.same_component(0, 1)
        service.same_component_batch(np.array([0]), np.array([1]))
        counters = service.metrics.counters_snapshot()
        assert counters["serve_point_queries"] == 1
        assert counters["serve_batch_queries"] == 1
        assert counters["serve_queried_pairs"] == 1


class TestSnapshots:
    def test_labels_are_immutable(self, service):
        snap = service.snapshot
        with pytest.raises(ValueError):
            snap.labels[0] = 7
        with pytest.raises(ValueError):
            snap.sizes[0] = 7

    def test_updates_invisible_until_publish(self, service):
        assert not service.same_component(0, 4)
        service.add_edge(0, 4)
        # Absorbed (pending) but the published epoch is unchanged.
        assert service.pending_updates == 1
        assert service.epoch == 0
        assert not service.same_component(0, 4)
        assert service.refresh() == 1
        assert service.same_component(0, 4)
        assert service.num_components == 1

    def test_old_snapshot_stays_coherent(self, service):
        old = service.snapshot
        service.add_edge(0, 4)
        service.refresh()
        # A reader holding the old epoch keeps its complete view.
        assert old.epoch == 0
        assert not old.same_component(0, 4)
        assert old.num_components == 2
        assert service.snapshot.same_component(0, 4)

    def test_auto_publish_at_recompress_every(self, two_cliques):
        svc = ConnectivityService(two_cliques, recompress_every=4)
        src, dst = _stream(8, 3, seed=0)
        svc.add_edges(src, dst)
        assert svc.epoch == 0  # 3 < 4: still pending
        svc.add_edges(*_stream(8, 2, seed=1))
        assert svc.epoch == 1  # 5 >= 4: published

    def test_refresh_noop_when_clean(self, service):
        assert service.refresh() == 0
        service.add_edge(0, 4)
        assert service.refresh() == 1
        assert service.refresh() == 1  # nothing pending, same epoch

    def test_recompress_zero_defers_to_refresh(self, two_cliques):
        svc = ConnectivityService(two_cliques, recompress_every=0)
        svc.add_edges(*_stream(8, 50, seed=2))
        assert svc.epoch == 0
        assert svc.refresh() == 1

    def test_on_epoch_callback(self, two_cliques):
        seen: list[Snapshot] = []
        svc = ConnectivityService(
            two_cliques, recompress_every=2, on_epoch=seen.append
        )
        svc.add_edges(np.array([0, 1]), np.array([4, 5]))
        svc.add_edge(2, 6)
        svc.refresh()
        assert [s.epoch for s in seen] == [1, 2]
        assert seen[0].edges_applied == 2
        assert seen[1].edges_applied == 3


class TestOracleBitIdentity:
    def test_every_epoch_matches_batch_resolve(self):
        graph = uniform_random_graph(500, num_edges=700, seed=9)
        captured = []
        svc = ConnectivityService(
            graph,
            recompress_every=64,
            on_epoch=lambda s: captured.append((s.edges_applied, s.labels)),
        )
        captured.append((0, svc.snapshot.labels))
        rng = np.random.default_rng(10)
        for _ in range(6):
            svc.add_edges(
                rng.integers(0, 500, size=50), rng.integers(0, 500, size=50)
            )
        svc.refresh()
        assert len(captured) >= 4
        for applied, labels in captured:
            assert np.array_equal(labels, svc.batch_resolve(applied))

    def test_inserted_edges_in_order(self, service):
        service.add_edges(np.array([0, 1]), np.array([4, 5]))
        service.add_edge(2, 6)
        src, dst = service.inserted_edges()
        assert src.tolist() == [0, 1, 2]
        assert dst.tolist() == [4, 5, 6]

    def test_batch_resolve_prefix(self, service):
        service.add_edge(0, 4)
        service.add_edge(1, 5)
        base = service.batch_resolve(0)
        assert np.array_equal(base, service.snapshot.labels)  # epoch 0
        full = service.batch_resolve()
        assert (full == full[0]).sum() == 8  # cliques joined


class TestTelemetry:
    def test_update_counters_and_gauges(self, service):
        service.add_edges(np.array([0, 1]), np.array([4, 5]))
        counters = service.metrics.counters_snapshot()
        gauges = service.metrics.gauges_snapshot()
        assert counters["serve_updates"] == 1
        assert counters["serve_edges_inserted"] == 2
        assert gauges["serve_pending_updates"] == 2
        service.refresh()
        gauges = service.metrics.gauges_snapshot()
        assert gauges["serve_epoch"] == 1
        assert gauges["serve_pending_updates"] == 0
        assert gauges["serve_components"] == service.num_components

    def test_prometheus_export(self, two_cliques):
        svc = ConnectivityService(two_cliques, dataset="cliques")
        svc.same_component(0, 1)
        text = svc.prometheus(job="test")
        assert "repro_serve_point_queries_total" in text
        assert 'dataset="cliques"' in text
        assert 'job="test"' in text
