"""Tests for the request layer: batching, backpressure, shutdown, ledger."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.obs.ledger import RunLedger
from repro.serve import (
    BackpressureError,
    ConnectivityServer,
    ConnectivityService,
    ServerClosedError,
)


@pytest.fixture
def service(two_cliques):
    return ConnectivityService(two_cliques, recompress_every=1_000_000)


def _stall(service, seconds=0.15):
    """Make the worker's next size query slow, so submissions pile up."""
    original = service.component_sizes
    state = {"stalled": False}

    def slow(vs):
        if not state["stalled"]:
            state["stalled"] = True
            time.sleep(seconds)
        return original(vs)

    service.component_sizes = slow
    return state


class TestRequestPath:
    def test_futures_resolve(self, service):
        with ConnectivityServer(service) as server:
            same = server.submit_same(np.array([0, 0]), np.array([3, 4]))
            sizes = server.submit_sizes(np.array([1, 7]))
            assert same.result(5).tolist() == [True, False]
            assert sizes.result(5).tolist() == [4, 4]

    def test_sync_helpers(self, service):
        with ConnectivityServer(service) as server:
            assert server.same_component(0, 1)
            assert not server.same_component(0, 7)
            assert server.component_size(5) == 4

    def test_updates_ordered_with_refresh(self, service):
        with ConnectivityServer(service) as server:
            assert not server.same_component(0, 4)
            server.submit_update(np.array([0]), np.array([4]))
            epoch = server.submit_refresh().result(5)
            assert epoch == 1
            assert server.same_component(0, 4)

    def test_error_propagates_and_loop_survives(self, service):
        with ConnectivityServer(service) as server:
            bad = server.submit_sizes(np.array([99]))
            with pytest.raises(ConfigurationError):
                bad.result(5)
            # The loop is still serving after a failed request.
            assert server.component_size(0) == 4
            assert service.metrics.counters_snapshot()["serve_errors"] == 1

    def test_coalescing_under_load(self, service):
        _stall(service)
        with ConnectivityServer(service, max_batch=64) as server:
            server.submit_sizes(np.array([0]))  # stalls the loop
            futures = [
                server.submit_same(np.array([i % 8]), np.array([7]))
                for i in range(20)
            ]
            for fut in futures:
                fut.result(5)
        counters = service.metrics.counters_snapshot()
        # The 20 queued pair queries drained as contiguous runs answered
        # by shared vectorized gathers, not 20 separate calls.
        assert counters["serve_coalesced"] >= 20
        assert counters["serve_batch_queries"] < 21

    def test_results_split_per_request(self, service):
        _stall(service)
        with ConnectivityServer(service, max_batch=64) as server:
            server.submit_sizes(np.array([0]))
            a = server.submit_same(np.array([0, 1]), np.array([1, 4]))
            b = server.submit_same(np.array([4]), np.array([5]))
            assert a.result(5).tolist() == [True, False]
            assert b.result(5).tolist() == [True]


class TestFlowControl:
    def test_backpressure_nonblocking(self, service):
        _stall(service, 0.3)
        with ConnectivityServer(service, max_queue=2) as server:
            server.submit_sizes(np.array([0]))  # stalls the loop
            time.sleep(0.05)  # let the worker pick it up and block
            accepted, rejected = 0, 0
            for _ in range(10):
                try:
                    server.submit_sizes(np.array([1]), block=False)
                    accepted += 1
                except BackpressureError:
                    rejected += 1
            assert rejected > 0
            assert accepted <= 2
        assert service.metrics.counters_snapshot()["serve_rejected"] == rejected

    def test_submit_before_start_rejected(self, service):
        server = ConnectivityServer(service)
        with pytest.raises(ServerClosedError):
            server.submit_same(np.array([0]), np.array([1]))

    def test_stop_drains_accepted_requests(self, service):
        server = ConnectivityServer(service).start()
        futures = [
            server.submit_same(np.array([0]), np.array([i % 8]))
            for i in range(50)
        ]
        server.stop()
        assert all(f.done() for f in futures)
        assert all(f.exception() is None for f in futures)

    def test_submit_after_stop_rejected(self, service):
        server = ConnectivityServer(service).start()
        server.stop()
        with pytest.raises(ServerClosedError):
            server.submit_refresh()
        with pytest.raises(ServerClosedError):
            server.start()  # a stopped server does not restart

    def test_stop_idempotent(self, service, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        server = ConnectivityServer(service, record=str(ledger_path)).start()
        server.same_component(0, 1)
        first = server.stop()
        assert first is not None
        assert server.stop() is None  # no duplicate ledger record
        assert len(RunLedger(ledger_path).records()) == 1

    def test_rejects_bad_config(self, service):
        with pytest.raises(ConfigurationError):
            ConnectivityServer(service, max_batch=0)
        with pytest.raises(ConfigurationError):
            ConnectivityServer(service, max_queue=0)


class TestTelemetry:
    def test_latency_and_batch_histograms(self, service):
        with ConnectivityServer(service) as server:
            for _ in range(5):
                server.same_component(0, 1)
        summaries = service.metrics.histogram_summaries()
        assert summaries["serve_latency_us"]["count"] == 5
        assert summaries["serve_batch_size"]["count"] >= 1

    def test_trace_spans_per_batch(self, service):
        server = ConnectivityServer(service, trace=True).start()
        server.same_component(0, 1)
        server.submit_update(np.array([0]), np.array([4]))
        server.submit_refresh().result(5)
        server.stop()
        trace = server.tracer.finish()
        batch_spans = [s for s in trace.spans if s.label == "batch"]
        assert batch_spans
        assert all("epoch" in s.attrs for s in batch_spans)

    def test_trace_span_cap(self, service):
        server = ConnectivityServer(
            service, trace=True, max_trace_spans=2
        ).start()
        for _ in range(6):
            server.same_component(0, 1)
        server.stop()
        trace = server.tracer.finish()
        assert len([s for s in trace.spans if s.label == "batch"]) <= 2
        counters = service.metrics.counters_snapshot()
        assert counters["serve_trace_spans_dropped"] >= 1


class TestLedgerIntegration:
    def test_session_record_shape(self, service):
        server = ConnectivityServer(service).start()
        server.same_component(0, 1)
        server.submit_update(np.array([0]), np.array([4]))
        server.submit_refresh().result(5)
        server.stop()
        record = server.session_record(workload="unit-test")
        assert record.kind == "serve"
        assert record.algorithm == "afforest"
        assert record.graph["vertices"] == 8
        assert record.seconds > 0
        assert record.counters["serve_requests"] == 3
        assert record.meta["epochs"] == 1
        assert record.meta["workload"] == "unit-test"

    def test_sessions_append_to_ledger(self, two_cliques, tmp_path):
        ledger_path = tmp_path / "serve.jsonl"
        for _ in range(2):
            svc = ConnectivityService(two_cliques)
            with ConnectivityServer(svc, record=str(ledger_path)) as server:
                server.same_component(0, 1)
        records = RunLedger(ledger_path).records()
        assert len(records) == 2
        assert all(r.kind == "serve" for r in records)
        assert records[0].run_id != records[1].run_id

    def test_run_id_surfaces_after_stop(self, service, tmp_path):
        ledger_path = tmp_path / "serve.jsonl"
        server = ConnectivityServer(service, record=str(ledger_path)).start()
        server.same_component(0, 1)
        record = server.stop()
        assert server.run_id == record.run_id
        assert RunLedger(ledger_path).resolve(record.run_id).kind == "serve"


class TestEndToEndConsistency:
    def test_mixed_stream_bit_identical_to_resolve(self):
        graph = uniform_random_graph(400, num_edges=500, seed=3)
        captured = []
        svc = ConnectivityService(
            graph,
            recompress_every=128,
            on_epoch=lambda s: captured.append((s.edges_applied, s.labels)),
        )
        captured.append((0, svc.snapshot.labels))
        rng = np.random.default_rng(4)
        with ConnectivityServer(svc, max_batch=16) as server:
            for _ in range(30):
                server.submit_same(
                    rng.integers(0, 400, 8), rng.integers(0, 400, 8)
                )
                server.submit_update(
                    rng.integers(0, 400, 20), rng.integers(0, 400, 20)
                )
            server.submit_refresh().result(10)
        assert len(captured) >= 3
        for applied, labels in captured:
            assert np.array_equal(labels, svc.batch_resolve(applied))
