"""Tests for the keyed service cache."""

import pytest

from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph
from repro.serve import ServiceCache


def _graph(seed, n=200):
    return uniform_random_graph(n, edge_factor=3, seed=seed)


class TestKeying:
    def test_same_content_same_key(self):
        assert ServiceCache.key_for(_graph(1)) == ServiceCache.key_for(_graph(1))

    def test_different_content_different_key(self):
        assert ServiceCache.key_for(_graph(1)) != ServiceCache.key_for(_graph(2))

    def test_algorithm_and_policy_split_the_key(self):
        g = _graph(3)
        base = ServiceCache.key_for(g)
        assert ServiceCache.key_for(g, algorithm="sv") != base
        assert ServiceCache.key_for(g, recompress_every=8) != base

    def test_backend_and_workers_do_not_split(self):
        g = _graph(4)
        assert ServiceCache.key_for(g, backend="process", workers=4) == (
            ServiceCache.key_for(g)
        )


class TestCaching:
    def test_hit_returns_same_instance(self):
        cache = ServiceCache()
        g = _graph(5)
        a = cache.get_or_create(g)
        b = cache.get_or_create(g)
        assert a is b
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_hot_state_survives_across_lookups(self):
        cache = ServiceCache()
        g = _graph(6)
        cache.get_or_create(g).add_edge(0, 1)
        # A second lookup sees the absorbed stream, not a fresh solve.
        assert cache.get_or_create(g).pending_updates == 1

    def test_lru_eviction(self):
        cache = ServiceCache(capacity=2)
        a, b, c = _graph(7), _graph(8), _graph(9)
        cache.get_or_create(a)
        cache.get_or_create(b)
        cache.get_or_create(a)  # refresh a's recency
        cache.get_or_create(c)  # evicts b (least recently used)
        assert ServiceCache.key_for(a) in cache
        assert ServiceCache.key_for(b) not in cache
        assert ServiceCache.key_for(c) in cache
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_clear(self):
        cache = ServiceCache()
        cache.get_or_create(_graph(10))
        cache.clear()
        assert len(cache) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            ServiceCache(capacity=0)

    def test_constructor_kwargs_forwarded(self):
        cache = ServiceCache()
        svc = cache.get_or_create(
            _graph(11), algorithm="sv", recompress_every=7
        )
        assert svc.algorithm == "sv"
        assert svc.recompress_every == 7
