"""Adversarial structures from the paper's worst-case analysis (Sec. V-A).

The paper constructs worst cases for link (a depth-one tree whose root has
the highest index, hooked in descending order, forcing a linear walk) and
compress (linear-depth trees).  These tests build those exact structures
and assert the algorithms remain correct — and that the safety caps don't
misfire on legitimately expensive-but-finite inputs.
"""

import numpy as np
import pytest

import repro
from repro.analysis import equivalent_labelings
from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress, compress_all
from repro.core.link import LinkCounters, link
from repro.graph import GraphBuilder, from_edge_list
from repro.unionfind import ParentArray


class TestAdversarialLinkOrder:
    def test_descending_star_hooks_force_long_walks(self):
        """Paper Sec. V-A: leaves hook the max-index root in descending
        order; the lowest-index edge then walks a long chain."""
        n = 64
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        root = n - 1
        counters = LinkCounters()
        # Hook leaves in descending index order (adversarial).
        for leaf in range(n - 2, -1, -1):
            link(pi, leaf, root, counters)
        p = ParentArray(pi)
        assert p.holds_invariant1()
        labels = p.labels()
        assert len(set(labels.tolist())) == 1
        # The adversarial order really did force multi-step walks.
        assert counters.max_iterations > 1

    def test_ascending_star_is_cheap(self):
        n = 64
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        counters = LinkCounters()
        for leaf in range(0, n - 1):
            link(pi, leaf, n - 1, counters)
        assert counters.mean_iterations < 3.0

    def test_worst_case_chain_then_compress(self):
        """Linear-depth tree: compress of the deepest vertex is O(n) but
        finite and correct."""
        n = 256
        pi = np.arange(n, dtype=VERTEX_DTYPE)
        pi[1:] = np.arange(n - 1)  # depth n-1 chain
        steps = compress(pi, n - 1)
        assert steps == n - 2
        assert pi[n - 1] == 0

    def test_adversarial_edge_orders_stay_exact(self):
        """Afforest over a path graph presented in several hostile edge
        orders (descending, interleaved ends-first)."""
        n = 200
        path_edges = [(i, i + 1) for i in range(n - 1)]
        orders = [
            list(reversed(path_edges)),
            path_edges[::2] + path_edges[1::2],
            sorted(path_edges, key=lambda e: -(e[0] % 7)),
        ]
        ref = None
        for edges in orders:
            g = from_edge_list(edges, num_vertices=n, sort_neighbors=False)
            labels = repro.connected_components(g, "afforest")
            if ref is None:
                ref = labels
            assert equivalent_labelings(labels, ref)
            assert len(set(labels.tolist())) == 1


class TestDegenerateGraphs:
    ALGOS = ["afforest", "afforest-noskip", "sv", "lp", "bfs", "dobfs"]

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_empty(self, algorithm, empty_graph):
        labels = repro.connected_components(empty_graph, algorithm)
        assert labels.shape == (0,)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_single_vertex(self, algorithm, single_vertex):
        labels = repro.connected_components(single_vertex, algorithm)
        assert labels.shape == (1,)

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_all_isolated(self, algorithm, isolated_vertices):
        labels = repro.connected_components(isolated_vertices, algorithm)
        assert len(set(labels.tolist())) == 5

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_star_high_contention(self, algorithm):
        g = GraphBuilder(101).add_star(100, list(range(100))).build()
        labels = repro.connected_components(g, algorithm)
        assert len(set(labels.tolist())) == 1

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_long_path(self, algorithm):
        n = 300
        g = GraphBuilder(n).add_path(list(range(n))).build()
        labels = repro.connected_components(g, algorithm)
        assert len(set(labels.tolist())) == 1

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_complete_graph(self, algorithm):
        g = GraphBuilder(20).add_clique(list(range(20))).build()
        labels = repro.connected_components(g, algorithm)
        assert len(set(labels.tolist())) == 1

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_many_tiny_components(self, algorithm):
        b = GraphBuilder(100)
        for i in range(0, 100, 2):
            b.add_edge(i, i + 1)
        labels = repro.connected_components(b.build(), algorithm)
        assert len(set(labels.tolist())) == 50

    def test_self_loops_tolerated_by_afforest(self):
        """Graphs built without self-loop dropping still resolve."""
        from repro.graph.builder import build_csr
        from repro.graph.coo import EdgeList

        el = EdgeList(
            4, np.array([0, 1, 2, 3]), np.array([0, 2, 1, 3])
        )
        g = build_csr(el, drop_self_loops=False)
        labels = repro.connected_components(g, "afforest")
        assert labels[1] == labels[2]
        assert labels[0] != labels[3]
