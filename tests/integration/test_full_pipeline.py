"""Cross-module integration: generators -> algorithms -> analysis."""

import numpy as np
import pytest

import repro
from repro.analysis import (
    convergence_curve,
    equivalent_labelings,
    is_valid_labeling,
    reduce_trace,
)
from repro.core.strategies import neighbor_sampling
from repro.generators import load_dataset
from repro.generators.datasets import CPU_SUITE
from repro.graph.io import load_graph, save_graph
from repro.parallel import MemoryTrace, SimulatedMachine, WorkSpanModel

ALGOS = ["afforest", "afforest-noskip", "sv", "lp", "lp-datadriven", "bfs", "dobfs"]


@pytest.mark.parametrize("dataset", CPU_SUITE)
def test_every_algorithm_on_every_dataset(dataset):
    g = load_dataset(dataset, "tiny")
    ref = repro.sequential_components(g)
    for algorithm in ALGOS:
        labels = repro.connected_components(g, algorithm)
        assert equivalent_labelings(labels, ref), (dataset, algorithm)


@pytest.mark.parametrize("dataset", ["road", "kron", "urand"])
def test_io_roundtrip_then_solve(tmp_path, dataset):
    g = load_dataset(dataset, "tiny")
    path = tmp_path / f"{dataset}.npz"
    save_graph(g, path)
    reloaded = load_graph(path)
    assert equivalent_labelings(
        repro.connected_components(g),
        repro.connected_components(reloaded),
    )


def test_simulated_machine_full_stack():
    """Generator -> simulated Afforest -> trace reduction -> cost model."""
    from repro import engine
    from repro.engine import SimulatedBackend

    g = load_dataset("kron", "tiny")
    trace = MemoryTrace()
    machine = SimulatedMachine(8, trace=trace)
    result = engine.run("afforest", g, backend=SimulatedBackend(machine))
    assert is_valid_labeling(g, result.labels)

    summary = reduce_trace(trace.finalize(), g.num_vertices)
    assert summary.total_events == machine.stats.total_work

    model = WorkSpanModel(tau=1.0, beta=50.0)
    t8 = model.time(machine.stats)
    serial = SimulatedMachine(1)
    engine.run("afforest", g, backend=SimulatedBackend(serial))
    t1 = model.time(serial.stats)
    assert t8 < t1  # parallelism helps


def test_convergence_pipeline_on_dataset():
    g = load_dataset("web", "tiny")
    curve = convergence_curve(
        g, neighbor_sampling(g, 2), strategy_name="neighbor", resolution=15
    )
    assert curve.linkage[-1] == pytest.approx(1.0)


def test_workstats_pipeline():
    from repro.analysis import afforest_workstats, sv_workstats

    g = load_dataset("urand", "tiny")
    sv = sv_workstats(g)
    af = afforest_workstats(g)
    assert af.iterations < sv.iterations


def test_deterministic_end_to_end():
    """The same seed yields bit-identical labels through the whole stack."""
    def run():
        g = load_dataset("twitter", "tiny", seed=3)
        return repro.afforest(g, seed=7).labels

    assert np.array_equal(run(), run())
