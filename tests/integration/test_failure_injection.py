"""Failure injection: corrupted state, hostile inputs, safety caps.

The library's contract is that invalid state fails *loudly* — either a
typed exception from a validation layer or a ConvergenceError from a
safety cap — never a hang or a silently wrong answer.
"""

import numpy as np
import pytest

import repro
from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress, compress_all
from repro.core.link import link, link_batch
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphFormatError,
    InvariantViolationError,
)
from repro.graph.csr import CSRGraph
from repro.unionfind import ParentArray


class TestCorruptedParentArray:
    """Cycles in π (impossible under Invariant 1) must never hang:
    ``link`` walks detect them via the iteration cap; the ``compress``
    family happens to terminate anyway (pointer doubling collapses small
    cycles) — what matters is bounded behaviour either way."""

    def test_compress_all_terminates_on_cycle(self):
        pi = np.array([1, 0], dtype=VERTEX_DTYPE)
        passes = compress_all(pi)  # garbage in, bounded garbage out
        assert passes <= 2

    def test_scalar_compress_terminates_on_cycle(self):
        pi = np.array([1, 2, 0, 3], dtype=VERTEX_DTYPE)
        steps = compress(pi, 0)
        assert steps <= 4

    def test_scalar_link_detects_cycle(self):
        pi = np.array([1, 2, 0], dtype=VERTEX_DTYPE)
        with pytest.raises(ConvergenceError):
            link(pi, 0, 1)

    def test_link_batch_detects_unconverging_state(self):
        pi = np.array([1, 2, 0], dtype=VERTEX_DTYPE)
        with pytest.raises(ConvergenceError):
            link_batch(
                pi,
                np.array([0], dtype=VERTEX_DTYPE),
                np.array([1], dtype=VERTEX_DTYPE),
            )

    def test_parent_array_refuses_out_of_range(self):
        with pytest.raises(InvariantViolationError):
            ParentArray(np.array([0, 99]))


class TestHostileGraphInputs:
    def test_truncated_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 5]), np.array([0, 0]))

    def test_corrupt_npz(self, tmp_path):
        from repro.graph.io import load_npz

        path = tmp_path / "bad.npz"
        np.savez(path, indptr=np.array([0, 2]), indices=np.array([7, 8]))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_corrupt_metis_neighbor_ids(self, tmp_path):
        from repro.graph.io import read_metis

        path = tmp_path / "bad.graph"
        path.write_text("2 1\n9\n1\n")  # vertex 9 does not exist
        with pytest.raises(GraphFormatError):
            read_metis(path)

    def test_edge_list_with_garbage_line(self, tmp_path):
        from repro.graph.io import read_edge_list

        path = tmp_path / "bad.el"
        path.write_text("0 1\nxyzzy plugh\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestConfigurationRejection:
    """Every user-tunable knob validates its domain."""

    def test_afforest_knobs(self, mixed_graph):
        with pytest.raises(ConfigurationError):
            repro.afforest(mixed_graph, neighbor_rounds=-2)
        with pytest.raises(ConfigurationError):
            repro.afforest(mixed_graph, sample_size=0)
        with pytest.raises(ConfigurationError):
            repro.afforest(mixed_graph, sampling="psychic")

    def test_machine_knobs(self):
        from repro.parallel import SimulatedMachine

        with pytest.raises(ConfigurationError):
            SimulatedMachine(-3)
        with pytest.raises(ConfigurationError):
            SimulatedMachine(2, interleave="chaotic")
        m = SimulatedMachine(2, schedule="nonsense")
        with pytest.raises(ConfigurationError):
            m.parallel_for(4, lambda ctx, item: iter(()))

    def test_distributed_knobs(self, mixed_graph):
        from repro.distributed import SimulatedComm, distributed_components

        with pytest.raises(ConfigurationError):
            distributed_components(mixed_graph, 0)
        with pytest.raises(ConfigurationError):
            distributed_components(
                mixed_graph, 4, comm=SimulatedComm(2)
            )

    def test_bad_partitioner_detected(self, mixed_graph):
        from repro.distributed import distributed_components

        def broken_partitioner(graph, ranks):
            return [graph.undirected_edge_array()]  # wrong count

        with pytest.raises(ConfigurationError, match="partitioner"):
            distributed_components(
                mixed_graph, 3, partitioner=broken_partitioner
            )


class TestRecoveryAfterFailure:
    def test_library_usable_after_convergence_error(self):
        """A trapped ConvergenceError leaves no global state behind."""
        pi = np.array([1, 2, 0], dtype=VERTEX_DTYPE)
        with pytest.raises(ConvergenceError):
            link(pi, 0, 1)
        # Fresh computations work normally afterwards.
        g = repro.from_edge_list([(0, 1), (1, 2)])
        labels = repro.connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_scalar_link_on_fresh_state_after_corruption(self):
        pi_bad = np.array([1, 2, 0], dtype=VERTEX_DTYPE)
        with pytest.raises(ConvergenceError):
            link(pi_bad, 0, 1)
        pi_good = np.arange(3, dtype=VERTEX_DTYPE)
        assert link(pi_good, 0, 2)
