"""Tests for distributed connected components."""

import numpy as np
import pytest

from repro.analysis import equivalent_labelings, is_valid_labeling
from repro.constants import VERTEX_DTYPE
from repro.distributed import (
    SimulatedComm,
    distributed_components,
    partition_edges_block,
    partition_edges_hash,
)
from repro.distributed.dist_cc import merge_forest
from repro.errors import ConfigurationError
from repro.generators import kronecker_graph, uniform_random_graph
from repro.unionfind import ParentArray, sequential_components


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", [partition_edges_block, partition_edges_hash])
    def test_covers_each_edge_once(self, partitioner, mixed_graph):
        parts = partitioner(mixed_graph, 3)
        total = sum(src.shape[0] for src, _ in parts)
        assert total == mixed_graph.num_edges
        assert len(parts) == 3

    def test_block_is_contiguous(self, two_cliques):
        parts = partition_edges_block(two_cliques, 2)
        src0, _ = parts[0]
        src1, _ = parts[1]
        assert src0.shape[0] + src1.shape[0] == two_cliques.num_edges

    def test_hash_deterministic(self, two_cliques):
        a = partition_edges_hash(two_cliques, 4, seed=1)
        b = partition_edges_hash(two_cliques, 4, seed=1)
        for (s1, d1), (s2, d2) in zip(a, b):
            assert np.array_equal(s1, s2) and np.array_equal(d1, d2)

    def test_rejects_zero_ranks(self, two_cliques):
        with pytest.raises(ConfigurationError):
            partition_edges_block(two_cliques, 0)


class TestMergeForest:
    def test_merges_connectivity(self):
        # Forest A: {0,1} linked; forest B: {1,2} linked.
        a = np.array([0, 0, 2, 3], dtype=VERTEX_DTYPE)
        b = np.array([0, 1, 1, 3], dtype=VERTEX_DTYPE)
        merge_forest(a, b)
        labels = ParentArray(a).labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_merge_is_commutative_on_partition(self):
        rng = np.random.default_rng(0)
        n = 20
        a = np.array([int(rng.integers(0, v + 1)) for v in range(n)], dtype=VERTEX_DTYPE)
        b = np.array([int(rng.integers(0, v + 1)) for v in range(n)], dtype=VERTEX_DTYPE)
        x, y = a.copy(), b.copy()
        merge_forest(x, b)
        merge_forest(y, a)
        assert np.array_equal(ParentArray(x).labels(), ParentArray(y).labels())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            merge_forest(np.zeros(3, dtype=VERTEX_DTYPE), np.zeros(4, dtype=VERTEX_DTYPE))


class TestDistributedCC:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 7, 8])
    def test_exact_on_mixed(self, ranks, mixed_graph):
        with pytest.deprecated_call():
            result = distributed_components(mixed_graph, ranks)
        assert equivalent_labelings(
            result.labels, sequential_components(mixed_graph)
        )

    @pytest.mark.parametrize("partitioner", [partition_edges_block, partition_edges_hash])
    def test_exact_both_partitioners(self, partitioner):
        g = kronecker_graph(9, edge_factor=8, seed=0)
        with pytest.deprecated_call():
            result = distributed_components(g, 4, partitioner=partitioner)
        assert is_valid_labeling(g, result.labels)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, random_graph_factory, seed):
        g = random_graph_factory(40, 80, seed)
        with pytest.deprecated_call():
            result = distributed_components(g, 5)
        assert is_valid_labeling(g, result.labels)

    def test_empty_graph(self, empty_graph):
        with pytest.deprecated_call():
            result = distributed_components(empty_graph, 2)
        assert result.labels.shape == (0,)

    def test_single_rank_is_communication_free(self, two_cliques):
        with pytest.deprecated_call():
            result = distributed_components(two_cliques, 1)
        assert result.comm_stats.messages == 0
        assert result.merge_rounds == 0

    def test_supersteps_reported_as_merge_rounds(self, two_cliques):
        with pytest.deprecated_call():
            result = distributed_components(two_cliques, 4)
        assert result.merge_rounds >= 1
        assert result.merge_rounds == result.comm_stats.supersteps

    def test_traffic_below_forest_reduction_baseline(self):
        """Delta exchange beats shipping whole parent arrays: under the
        old scheme every rank put a full ``8n``-byte array on the wire
        per peer (``8n(R - 1)`` worst-case per rank)."""
        g = uniform_random_graph(256, edge_factor=4, seed=1)
        with pytest.deprecated_call():
            result = distributed_components(g, 4)
        n = g.num_vertices
        per_rank = result.comm_stats.sent_by_rank(4)
        assert 0 < max(per_rank) < 8 * n * 3

    def test_external_comm_accumulates(self):
        g = uniform_random_graph(128, edge_factor=4, seed=2)
        comm = SimulatedComm(2)
        with pytest.deprecated_call():
            distributed_components(g, 2, comm=comm)
        first = comm.stats.bytes_sent
        with pytest.deprecated_call():
            distributed_components(g, 2, comm=comm)
        assert comm.stats.bytes_sent == 2 * first

    def test_rank_mismatch_rejected(self, two_cliques):
        with pytest.raises(ConfigurationError, match="ranks"):
            distributed_components(two_cliques, 3, comm=SimulatedComm(2))

    def test_local_edges_recorded(self):
        g = uniform_random_graph(200, edge_factor=4, seed=3)
        with pytest.deprecated_call():
            result = distributed_components(g, 4)
        assert sum(result.local_edges_per_rank) == g.num_edges

    def test_bit_identical_to_engine_backend(self, mixed_graph):
        """The shim is a strict re-skin of the engine path."""
        from repro import engine
        from repro.engine.backends import DistributedBackend

        with pytest.deprecated_call():
            shim = distributed_components(mixed_graph, 4)
        direct = engine.run(
            mixed_graph,
            plan="none+fastsv",
            backend=DistributedBackend(ranks=4, partition="hash"),
        )
        assert np.array_equal(shim.labels, direct.labels)
