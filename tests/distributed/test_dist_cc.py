"""Tests for distributed connected components."""

import numpy as np
import pytest

from repro.analysis import equivalent_labelings, is_valid_labeling
from repro.constants import VERTEX_DTYPE
from repro.distributed import (
    SimulatedComm,
    distributed_components,
    partition_edges_block,
    partition_edges_hash,
)
from repro.distributed.dist_cc import merge_forest
from repro.errors import ConfigurationError
from repro.generators import kronecker_graph, uniform_random_graph
from repro.unionfind import ParentArray, sequential_components


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", [partition_edges_block, partition_edges_hash])
    def test_covers_each_edge_once(self, partitioner, mixed_graph):
        parts = partitioner(mixed_graph, 3)
        total = sum(src.shape[0] for src, _ in parts)
        assert total == mixed_graph.num_edges
        assert len(parts) == 3

    def test_block_is_contiguous(self, two_cliques):
        parts = partition_edges_block(two_cliques, 2)
        src0, _ = parts[0]
        src1, _ = parts[1]
        assert src0.shape[0] + src1.shape[0] == two_cliques.num_edges

    def test_hash_deterministic(self, two_cliques):
        a = partition_edges_hash(two_cliques, 4, seed=1)
        b = partition_edges_hash(two_cliques, 4, seed=1)
        for (s1, d1), (s2, d2) in zip(a, b):
            assert np.array_equal(s1, s2) and np.array_equal(d1, d2)

    def test_rejects_zero_ranks(self, two_cliques):
        with pytest.raises(ConfigurationError):
            partition_edges_block(two_cliques, 0)


class TestMergeForest:
    def test_merges_connectivity(self):
        # Forest A: {0,1} linked; forest B: {1,2} linked.
        a = np.array([0, 0, 2, 3], dtype=VERTEX_DTYPE)
        b = np.array([0, 1, 1, 3], dtype=VERTEX_DTYPE)
        merge_forest(a, b)
        labels = ParentArray(a).labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_merge_is_commutative_on_partition(self):
        rng = np.random.default_rng(0)
        n = 20
        a = np.array([int(rng.integers(0, v + 1)) for v in range(n)], dtype=VERTEX_DTYPE)
        b = np.array([int(rng.integers(0, v + 1)) for v in range(n)], dtype=VERTEX_DTYPE)
        x, y = a.copy(), b.copy()
        merge_forest(x, b)
        merge_forest(y, a)
        assert np.array_equal(ParentArray(x).labels(), ParentArray(y).labels())

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            merge_forest(np.zeros(3, dtype=VERTEX_DTYPE), np.zeros(4, dtype=VERTEX_DTYPE))


class TestDistributedCC:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4, 7, 8])
    def test_exact_on_mixed(self, ranks, mixed_graph):
        result = distributed_components(mixed_graph, ranks)
        assert equivalent_labelings(
            result.labels, sequential_components(mixed_graph)
        )

    @pytest.mark.parametrize("partitioner", [partition_edges_block, partition_edges_hash])
    def test_exact_both_partitioners(self, partitioner):
        g = kronecker_graph(9, edge_factor=8, seed=0)
        result = distributed_components(g, 4, partitioner=partitioner)
        assert is_valid_labeling(g, result.labels)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, random_graph_factory, seed):
        g = random_graph_factory(40, 80, seed)
        result = distributed_components(g, 5)
        assert is_valid_labeling(g, result.labels)

    def test_empty_graph(self, empty_graph):
        result = distributed_components(empty_graph, 2)
        assert result.labels.shape == (0,)

    def test_single_rank_no_communication_before_broadcast(self, two_cliques):
        result = distributed_components(two_cliques, 1)
        assert result.comm_stats.messages == 0
        assert result.merge_rounds == 0

    def test_merge_rounds_logarithmic(self, two_cliques):
        assert distributed_components(two_cliques, 8).merge_rounds == 3
        assert distributed_components(two_cliques, 5).merge_rounds == 3
        assert distributed_components(two_cliques, 2).merge_rounds == 1

    def test_traffic_independent_of_edges(self):
        """The headline property: communication is O(|V| log R), not O(|E|)."""
        sparse = uniform_random_graph(512, edge_factor=2, seed=0)
        dense = uniform_random_graph(512, edge_factor=32, seed=0)
        t_sparse = distributed_components(sparse, 4).comm_stats.bytes_sent
        t_dense = distributed_components(dense, 4).comm_stats.bytes_sent
        assert t_sparse == t_dense

    def test_traffic_formula(self):
        g = uniform_random_graph(256, edge_factor=4, seed=1)
        result = distributed_components(g, 4)
        n = g.num_vertices
        # Reduction: 3 sends of 8n bytes; broadcast: 3 sends of 8n bytes.
        assert result.comm_stats.bytes_sent == 8 * n * 3 + 8 * n * 3

    def test_external_comm_accumulates(self):
        g = uniform_random_graph(128, edge_factor=4, seed=2)
        comm = SimulatedComm(2)
        distributed_components(g, 2, comm=comm)
        first = comm.stats.bytes_sent
        distributed_components(g, 2, comm=comm)
        assert comm.stats.bytes_sent == 2 * first

    def test_rank_mismatch_rejected(self, two_cliques):
        with pytest.raises(ConfigurationError, match="ranks"):
            distributed_components(two_cliques, 3, comm=SimulatedComm(2))

    def test_local_edges_recorded(self):
        g = uniform_random_graph(200, edge_factor=4, seed=3)
        result = distributed_components(g, 4)
        assert sum(result.local_edges_per_rank) == g.num_edges
