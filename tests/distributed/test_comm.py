"""Unit tests for the simulated communicator."""

import numpy as np
import pytest

from repro.distributed.comm import SimulatedComm
from repro.errors import ConfigurationError


class TestPointToPoint:
    def test_send_then_step_then_recv(self):
        comm = SimulatedComm(3)
        comm.send(0, 2, np.arange(4))
        assert comm.pending(2) == 0  # not delivered before the barrier
        comm.step()
        assert comm.pending(2) == 1
        msg = comm.recv(2)
        assert msg.tolist() == [0, 1, 2, 3]

    def test_messages_are_copies(self):
        comm = SimulatedComm(2)
        data = np.arange(3)
        comm.send(0, 1, data)
        data[0] = 99
        comm.step()
        assert comm.recv(1)[0] == 0

    def test_recv_by_source(self):
        comm = SimulatedComm(3)
        comm.send(0, 2, np.array([10]))
        comm.send(1, 2, np.array([20]))
        comm.step()
        assert comm.recv(2, src=1)[0] == 20
        assert comm.recv(2, src=0)[0] == 10

    def test_recv_empty_raises(self):
        comm = SimulatedComm(2)
        with pytest.raises(ConfigurationError, match="no pending"):
            comm.recv(1)

    def test_rank_bounds_checked(self):
        comm = SimulatedComm(2)
        with pytest.raises(ConfigurationError):
            comm.send(0, 5, np.array([1]))
        with pytest.raises(ConfigurationError):
            comm.recv(-1)

    def test_rejects_empty_world(self):
        with pytest.raises(ConfigurationError):
            SimulatedComm(0)


class TestAccounting:
    def test_bytes_and_messages(self):
        comm = SimulatedComm(2)
        comm.send(0, 1, np.zeros(10, dtype=np.int64))
        comm.step()
        assert comm.stats.messages == 1
        assert comm.stats.bytes_sent == 80
        assert comm.stats.by_pair[(0, 1)] == 80
        assert comm.stats.supersteps == 1

    def test_broadcast_counts(self):
        comm = SimulatedComm(4)
        out = comm.broadcast(0, np.zeros(5, dtype=np.int64))
        assert len(out) == 4
        assert comm.stats.messages == 3
        assert comm.stats.bytes_sent == 3 * 40

    def test_broadcast_root_shares_no_copy_cost(self):
        comm = SimulatedComm(1)
        arr = np.arange(3)
        out = comm.broadcast(0, arr)
        assert out[0] is arr
        assert comm.stats.messages == 0
