"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.io import load_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path, two_cliques):
    path = tmp_path / "g.el"
    write_edge_list(two_cliques, path)
    return str(path)


class TestGenerate:
    def test_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "kron.npz")
        assert main(["generate", "kron", out, "--size", "tiny"]) == 0
        g = load_graph(out)
        assert g.num_vertices == 1024
        assert "wrote kron/tiny" in capsys.readouterr().out

    def test_seed_changes_output(self, tmp_path):
        a = str(tmp_path / "a.npz")
        b = str(tmp_path / "b.npz")
        main(["--seed", "1", "generate", "urand", a, "--size", "tiny"])
        main(["--seed", "2", "generate", "urand", b, "--size", "tiny"])
        assert load_graph(a) != load_graph(b)


class TestInfo:
    def test_file_input(self, graph_file, capsys):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "vertices:    8" in out
        assert "components:  2" in out

    def test_dataset_spec(self, capsys):
        assert main(["info", "dataset:urand:tiny"]) == 0
        assert "components:  1" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent/g.el"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_dataset(self, capsys):
        assert main(["info", "dataset:nope"]) == 1
        assert "unknown dataset" in capsys.readouterr().err


class TestSolve:
    def test_default_algorithm(self, graph_file, capsys):
        assert main(["solve", graph_file]) == 0
        assert "afforest: 2 components" in capsys.readouterr().out

    @pytest.mark.parametrize("algo", ["sv", "lp", "bfs", "dobfs"])
    def test_other_algorithms(self, graph_file, algo, capsys):
        assert main(["solve", graph_file, "--algorithm", algo]) == 0
        assert f"{algo}: 2 components" in capsys.readouterr().out

    def test_labels_output(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "labels.npz")
        assert main(["solve", graph_file, "--output", out]) == 0
        labels = np.load(out)["labels"]
        assert labels.shape == (8,)
        assert labels[0] == labels[3]
        assert labels[0] != labels[4]

    def test_unknown_algorithm(self, graph_file, capsys):
        assert main(["solve", graph_file, "--algorithm", "magic"]) == 1
        assert "unknown algorithm" in capsys.readouterr().err

    def test_process_backend(self, graph_file, capsys):
        assert main(
            ["solve", graph_file, "--backend", "process", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "afforest [process]: 2 components" in out

    def test_simulated_backend(self, graph_file, capsys):
        assert main(["solve", graph_file, "--backend", "simulated"]) == 0
        assert "afforest [simulated]: 2 components" in capsys.readouterr().out

    def test_backend_unsupported_by_algorithm(self, graph_file, capsys):
        assert main(
            ["solve", graph_file, "--algorithm", "sequential",
             "--backend", "process"]
        ) == 1
        err = capsys.readouterr().err
        assert "does not support" in err
        assert "vectorized" in err  # message names the supported backends

    def test_frontier_algorithm_on_process_backend(self, graph_file, capsys):
        assert main(
            ["solve", graph_file, "--algorithm", "lp",
             "--backend", "process", "--workers", "2"]
        ) == 0
        assert "lp [process]: 2 components" in capsys.readouterr().out

    def test_plan_option(self, graph_file, capsys):
        assert main(["solve", graph_file, "--plan", "kout+sv"]) == 0
        assert "kout+sv: 2 components" in capsys.readouterr().out

    def test_plan_name_via_algorithm_flag(self, graph_file, capsys):
        assert main(["solve", graph_file, "-a", "ldd+fastsv"]) == 0
        assert "ldd+fastsv: 2 components" in capsys.readouterr().out

    def test_plan_and_algorithm_conflict(self, graph_file, capsys):
        assert main(
            ["solve", graph_file, "-a", "sv", "--plan", "kout+sv"]
        ) == 1
        assert "not both" in capsys.readouterr().err

    def test_auto_reports_selected_plan(self, graph_file, capsys):
        assert main(["solve", graph_file, "-a", "auto"]) == 0
        out = capsys.readouterr().out
        assert "auto (plan " in out
        assert "2 components" in out

    def test_unknown_plan(self, graph_file, capsys):
        assert main(["solve", graph_file, "--plan", "magic+sv"]) == 1
        assert "unknown sampling" in capsys.readouterr().err


class TestPlans:
    def test_lists_matrix(self, capsys):
        assert main(["plans"]) == 0
        out = capsys.readouterr().out
        assert "kout+sv" in out
        assert "none+dobfs" in out
        assert "[skip-capable]" in out
        assert "[whole-graph" in out

    def test_check_validates_matrix(self, capsys):
        assert main(["plans", "--check", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "plan×backend combinations OK" in out


class TestCompare:
    def test_prints_table(self, graph_file, capsys):
        assert main(
            ["compare", graph_file, "--algorithms", "afforest,sv", "--repeats", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "afforest" in out
        assert "sv" in out
        assert "speedup_vs_afforest" in out

    def test_composed_plans_compare(self, graph_file, capsys):
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "afforest",
                "--plans", "kout+sv,none+fastsv",
                "--repeats", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "kout+sv" in out
        assert "none+fastsv" in out

    def test_process_backend_skips_unsupported(self, graph_file, capsys):
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "afforest,sequential",
                "--backend", "process", "--workers", "2",
                "--repeats", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert (
            "note: sequential does not support the process backend; skipped"
            in out
        )
        assert "afforest" in out

    def test_all_unsupported_is_an_error(self, graph_file, capsys):
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "sequential,distributed",
                "--backend", "process",
            ]
        ) == 1
        assert "no requested algorithm" in capsys.readouterr().err

    def test_profile_on_process_backend_prints_worker_skew(
        self, graph_file, capsys
    ):
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "afforest",
                "--backend", "process", "--workers", "2",
                "--repeats", "2", "--profile",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "worker skew (max/mean block time per phase)" in out
        # At least one per-phase skew line with the max/mean ratio.
        assert "x  (max" in out

    def test_trace_out_per_algorithm_files(self, graph_file, tmp_path, capsys):
        base = tmp_path / "cmp.json"
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "afforest,sv",
                "--repeats", "2",
                "--trace-out", str(base),
            ]
        ) == 0
        out = capsys.readouterr().out
        for algo in ("afforest", "sv"):
            path = tmp_path / f"cmp-{algo}.json"
            assert path.exists()
            assert f"trace written to {path}" in out

    def test_trace_out_single_algorithm_exact_path(
        self, graph_file, tmp_path, capsys
    ):
        path = tmp_path / "one.json"
        assert main(
            [
                "compare", graph_file,
                "--algorithms", "afforest",
                "--repeats", "2",
                "--trace-out", str(path),
            ]
        ) == 0
        assert path.exists()


class TestTraceExport:
    def test_solve_writes_chrome_trace(self, graph_file, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(["solve", graph_file, "--trace-out", str(path)]) == 0
        assert f"trace written to {path} (chrome)" in capsys.readouterr().out
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        assert any(e.get("name") == "total" for e in events)

    def test_solve_jsonl_format(self, graph_file, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(
            [
                "solve", graph_file,
                "--trace-out", str(path),
                "--trace-format", "jsonl",
            ]
        ) == 0
        first = path.read_text().splitlines()[0]
        import json

        assert json.loads(first)["type"] == "meta"

    def test_solve_without_flag_writes_nothing(self, graph_file, tmp_path):
        # tmp_path holds only the input graph written by the fixture.
        assert main(["solve", graph_file]) == 0
        assert [p.name for p in tmp_path.iterdir()] == ["g.el"]

    def test_trace_subcommand_renders(self, graph_file, tmp_path, capsys):
        path = tmp_path / "trace.json"
        main(
            [
                "solve", graph_file,
                "--backend", "process", "--workers", "2",
                "--trace-out", str(path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace: afforest [process")
        assert "timeline" in out
        assert "worker-0" in out

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_el_to_metis(self, graph_file, tmp_path, capsys):
        out = str(tmp_path / "g.graph")
        assert main(["convert", graph_file, out]) == 0
        original = load_graph(graph_file)
        assert load_graph(out) == original

    def test_dataset_to_file(self, tmp_path):
        out = str(tmp_path / "road.el")
        assert main(["convert", "dataset:road:tiny", out]) == 0
        assert load_graph(out).num_edges > 0


class TestServe:
    """The ``repro serve`` serving-layer subcommand."""

    SERVE = ["serve", "--requests", "30", "--recompress-every", "64"]

    def test_serves_and_reports(self, graph_file, capsys):
        assert main(self.SERVE + [graph_file]) == 0
        out = capsys.readouterr().out
        assert f"served {graph_file}: afforest" in out
        assert "throughput" in out
        assert "p50" in out and "p99" in out
        assert "bit-identical to batch re-solve" in out

    def test_writes_report_and_prometheus(self, graph_file, tmp_path, capsys):
        import json

        report_path = tmp_path / "serve.json"
        prom_path = tmp_path / "serve.prom"
        assert main(
            self.SERVE
            + [graph_file, "--output", str(report_path),
               "--prom-out", str(prom_path)]
        ) == 0
        report = json.loads(report_path.read_text())
        assert report["failures"] == 0
        record = report["records"][0]
        assert record["dataset"] == graph_file
        assert record["matches_oracle"] is True
        assert "# TYPE" in prom_path.read_text()

    def test_no_oracle_skips_verdict(self, graph_file, capsys):
        assert main(self.SERVE + [graph_file, "--no-oracle"]) == 0
        assert "batch re-solve" not in capsys.readouterr().out

    def test_ledger_and_obs_roundtrip(self, graph_file, tmp_path, capsys):
        ledger = str(tmp_path / "serve_ledger.jsonl")
        assert main(self.SERVE + [graph_file, "--ledger", ledger]) == 0
        capsys.readouterr()
        assert main(["obs", "runs", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "1 record(s)" in out
        assert main(["obs", "show", "latest", "--ledger", ledger]) == 0
        assert "afforest" in capsys.readouterr().out

    def test_serving_reports_diff(self, graph_file, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, seed in ((a, "1"), (b, "2")):
            assert main(
                ["--seed", seed] + self.SERVE
                + [graph_file, "--output", str(path)]
            ) == 0
        assert json.loads(a.read_text())["records"][0]["requests"] == 31
        capsys.readouterr()
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert graph_file in capsys.readouterr().out

    def test_plan_spec(self, graph_file, capsys):
        assert main(self.SERVE + [graph_file, "-a", "kout+sv"]) == 0
        assert "kout+sv" in capsys.readouterr().out

    def test_dataset_spec(self, capsys):
        assert main(self.SERVE + ["dataset:urand:tiny"]) == 0
        assert "served dataset:urand:tiny" in capsys.readouterr().out


class TestObs:
    """The ``repro obs`` family: runs, show, diff, watch."""

    @pytest.fixture
    def ledger_path(self, tmp_path, two_cliques):
        from repro import engine

        path = tmp_path / "ledger.jsonl"
        engine.run("sv", two_cliques, profile=True, record=str(path))
        engine.run("fastsv", two_cliques, profile=True, record=str(path))
        return str(path)

    def test_runs_lists_records(self, ledger_path, capsys):
        assert main(["obs", "runs", "--ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        assert "sv/" in out and "fastsv/" in out
        assert "2 record(s)" in out

    def test_runs_empty_ledger(self, tmp_path, capsys):
        empty = str(tmp_path / "none.jsonl")
        assert main(["obs", "runs", "--ledger", empty]) == 0
        assert "no records" in capsys.readouterr().out

    def test_show_latest(self, ledger_path, capsys):
        assert main(["obs", "show", "latest", "--ledger", ledger_path]) == 0
        out = capsys.readouterr().out
        assert "algorithm:  fastsv" in out
        assert "phases:" in out

    def test_show_prometheus(self, ledger_path, capsys):
        assert main(
            ["obs", "show", "latest", "--ledger", ledger_path, "--prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert 'algorithm="fastsv"' in out

    def test_show_ambiguous_prefix_fails(self, ledger_path, capsys):
        assert main(["obs", "show", "r", "--ledger", ledger_path]) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_diff_two_runs(self, ledger_path, capsys):
        from repro.obs import RunLedger

        ids = [r.run_id for r in RunLedger(ledger_path).records()]
        assert main(
            ["obs", "diff", ids[0], ids[1], "--ledger", ledger_path]
        ) == 0
        out = capsys.readouterr().out
        assert "total" in out

    def test_diff_matrix_and_summary_out(self, tmp_path, ledger_path, capsys):
        import json as _json

        from repro.obs import RunLedger

        records = []
        for rec in RunLedger(ledger_path).records():
            records.append(
                {
                    "dataset": rec.graph.get("digest", "?"),
                    "algorithm": rec.algorithm,
                    "backend": rec.backend,
                    "median_seconds": rec.seconds * 2,
                    "phase_seconds": rec.phase_seconds,
                    "counters": rec.counters,
                }
            )
        report = tmp_path / "report.json"
        report.write_text(_json.dumps({"records": records}), encoding="utf-8")
        summary = tmp_path / "summary.md"
        assert main(
            [
                "obs", "diff", str(report), ledger_path,
                "--summary-out", str(summary),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sv/" in out  # per-combination summary lines
        text = summary.read_text(encoding="utf-8")
        assert "| run | ratio |" in text

    def test_diff_mixed_sources_fail(self, ledger_path, capsys):
        assert main(["obs", "diff", ledger_path, "latest"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_watch_streams_rounds(self, graph_file, capsys):
        assert main(["obs", "watch", graph_file, "-a", "sv"]) == 0
        out = capsys.readouterr().out
        assert "round   1" in out
        assert "components in" in out
