"""Tests for the span tracer, phase labels, and trace views."""

import time

from repro.obs import PhaseLabel, Span, Trace, Tracer, phase_label
from repro.obs.trace import split_label


class TestPhaseLabel:
    def test_is_the_flat_string(self):
        assert phase_label("H", round=2) == "H2"
        assert phase_label("C", final=True) == "C*"
        assert phase_label("L", round=0) == "L0"
        assert phase_label("F") == "F"

    def test_usable_as_dict_key(self):
        d = {phase_label("H", round=1): 0.5}
        assert d["H1"] == 0.5
        assert "H1" in d

    def test_carries_structure(self):
        label = phase_label("H", round=2)
        assert label.base == "H"
        assert label.attrs == {"round": 2}
        final = phase_label("C", final=True)
        assert final.attrs == {"final": True}

    def test_extra_attrs(self):
        label = PhaseLabel("X", round=3, passes=2)
        assert label == "X3"
        assert label.attrs == {"round": 3, "passes": 2}

    def test_split_label(self):
        assert split_label(phase_label("H", round=2)) == ("H", {"round": 2})
        assert split_label("H2") == ("H2", {})


class TestSpan:
    def test_structured_name_from_phase_label(self):
        span = Span(phase_label("L", round=1), 0.0, 1.0)
        assert span.label == "L1"
        assert span.name == "L"
        assert span.attrs == {"round": 1}

    def test_plain_string_label(self):
        span = Span("total", 0.0, 2.5)
        assert span.name == "total"
        assert span.attrs == {}
        assert span.duration == 2.5

    def test_open_span_has_zero_duration(self):
        assert Span("x", 1.0).duration == 0.0


class TestTracer:
    def test_nesting(self):
        tracer = Tracer(True)
        with tracer.span("total"):
            with tracer.span("L0"):
                pass
            with tracer.span("C0"):
                pass
        trace = tracer.finish()
        assert [s.label for s in trace.spans] == ["total"]
        assert [c.label for c in trace.spans[0].children] == ["L0", "C0"]
        assert [(s.label, d) for s, d in trace.walk()] == [
            ("total", 0), ("L0", 1), ("C0", 1),
        ]

    def test_disabled_records_nothing(self):
        tracer = Tracer(False)
        with tracer.span("total"):
            with tracer.span("L0"):
                pass
        tracer.add_span("H", 0.0, 1.0, track="worker-0")
        trace = tracer.finish()
        assert trace.spans == []
        assert trace.counters == {}
        assert trace.histograms == {}

    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(False)
        assert tracer.span("a") is tracer.span("b")

    def test_add_span_attaches_under_open_span(self):
        tracer = Tracer(True)
        with tracer.span("H"):
            tracer.add_span("H", 0.0, 1.0, track="worker-0", block=3)
        trace = tracer.finish()
        (child,) = trace.spans[0].children
        assert child.track == "worker-0"
        assert child.attrs["block"] == 3

    def test_finish_closes_dangling_spans(self):
        # A crashed run can leave spans open; finish() must stamp them.
        tracer = Tracer(True)
        span = Span("total", time.perf_counter())
        tracer._roots.append(span)
        tracer._stack.append(span)
        trace = tracer.finish()
        assert trace.spans[0].t1 is not None

    def test_finish_stamps_meta_and_metrics(self):
        tracer = Tracer(True)
        tracer.metrics.counter("hits").inc(3)
        trace = tracer.finish(algorithm="afforest", backend="process")
        assert trace.meta == {"algorithm": "afforest", "backend": "process"}
        assert trace.counters == {"hits": 3}

    def test_span_durations_are_wall_time(self):
        tracer = Tracer(True)
        with tracer.span("total"):
            time.sleep(0.01)
        trace = tracer.finish()
        assert trace.spans[0].duration >= 0.009


class TestTraceViews:
    def _trace(self):
        root = Span("total", 0.0, 10.0)
        root.children = [
            Span(phase_label("H", round=1), 0.0, 4.0),
            Span(phase_label("H", round=2), 4.0, 6.0),
            Span(phase_label("S", round=1), 6.0, 7.0),
        ]
        root.children[0].children = [
            Span("H1", 0.5, 3.5, track="worker-0"),
            Span("H1", 0.5, 1.5, track="worker-1"),
        ]
        return Trace([root], counters={"n": 1})

    def test_phase_seconds_accumulates_and_skips_workers(self):
        seconds = self._trace().phase_seconds()
        assert seconds["total"] == 10.0
        # H1 + H2 under distinct labels; worker spans excluded.
        assert seconds["H1"] == 4.0
        assert seconds["H2"] == 2.0
        assert seconds["S1"] == 1.0

    def test_round_attr_on_iterative_spans(self):
        trace = self._trace()
        rounds = {
            s.label: s.attrs.get("round")
            for s, _ in trace.walk()
            if s.name in ("H", "S") and s.track is None
        }
        assert rounds == {"H1": 1, "H2": 2, "S1": 1}

    def test_worker_spans_and_tracks(self):
        trace = self._trace()
        assert len(trace.worker_spans()) == 2
        assert trace.tracks() == ["worker-0", "worker-1"]

    def test_worker_skew(self):
        skew = self._trace().worker_skew()
        assert set(skew) == {"H1"}
        entry = skew["H1"]
        assert entry["max_s"] == 3.0
        assert entry["mean_s"] == 2.0
        assert entry["skew"] == 1.5
        assert entry["tasks"] == 2

    def test_bounds(self):
        trace = self._trace()
        assert trace.t0 == 0.0
        assert trace.t1 == 10.0
        assert trace.num_spans() == 6

    def test_dict_round_trip(self):
        trace = self._trace()
        rebuilt = Trace.from_dict(trace.to_dict())
        assert rebuilt.to_dict() == trace.to_dict()
        assert rebuilt.phase_seconds() == trace.phase_seconds()
        assert rebuilt.tracks() == trace.tracks()
        assert rebuilt.counters == {"n": 1}

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.phase_seconds() == {}
        assert trace.worker_skew() == {}
        assert trace.t0 == 0.0 and trace.t1 == 0.0
