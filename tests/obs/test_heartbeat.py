"""Tests for live run telemetry (repro.obs.heartbeat)."""

import math

from repro.obs.heartbeat import HeartbeatEvent, HeartbeatMonitor, format_event


class FakeClock:
    """Deterministic clock: each tick advances by a scripted step."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestMonitorRounds:
    def test_rounds_increase_monotonically(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        for _ in range(5):
            monitor.beat("H")
        assert [e.round for e in events] == [1, 2, 3, 4, 5]
        assert monitor.rounds == 5

    def test_rounds_survive_pipeline_composition(self):
        # A composed plan restarts its own round numbering; the monitor's
        # count keeps climbing regardless of the phases it is fed.
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        for phase in ("L1", "L2", "H1", "H2", "H3"):
            monitor.beat(phase)
        assert [e.round for e in events] == [1, 2, 3, 4, 5]

    def test_event_payload(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock(step=0.5))
        event = monitor.beat("P1", frontier=100, source="test")
        assert event is events[0]
        assert event.kind == "round"
        assert event.phase == "P1"
        assert event.frontier == 100
        assert event.changed is None
        assert event.extra == {"source": "test"}
        assert event.round_seconds > 0

    def test_callable_sink(self):
        seen = []
        monitor = HeartbeatMonitor(seen.append, clock=FakeClock())
        monitor.beat("H")
        assert len(seen) == 1 and isinstance(seen[0], HeartbeatEvent)


class TestEta:
    def test_infinite_before_round_two(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("H", changed=100)
        assert math.isinf(events[0].eta_seconds)

    def test_finite_from_round_two_with_decay(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        for changed in (1000, 500, 250, 125):
            monitor.beat("H", changed=changed)
        for event in events[1:]:
            assert math.isfinite(event.eta_seconds)
            assert event.eta_seconds > 0

    def test_finite_from_round_two_without_signal(self):
        # No frontier/changed at all: the fallback still yields a finite
        # estimate, which is the guarantee a progress bar needs.
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("H")
        monitor.beat("H")
        monitor.beat("H")
        assert all(math.isfinite(e.eta_seconds) for e in events[1:])

    def test_finite_when_signal_grows(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("T", frontier=10)
        monitor.beat("T", frontier=100)  # BFS frontier still expanding
        assert math.isfinite(events[1].eta_seconds)

    def test_geometric_decay_shrinks_eta(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        for changed in (4096, 2048, 1024, 512, 256, 128):
            monitor.beat("H", changed=changed)
        # Same decay rate and round time per round: the remaining-rounds
        # estimate falls as the signal approaches 1.
        assert events[-1].eta_seconds < events[1].eta_seconds

    def test_changed_preferred_over_frontier(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("H", frontier=10, changed=1000)
        monitor.beat("H", frontier=10000, changed=500)
        # changed decayed (1000 -> 500) so the geometric path is taken
        # even though frontier grew; eta is finite either way, but the
        # decay estimate differs from the fallback avg*rounds = 2.0.
        assert events[1].eta_seconds != 2.0


class TestBlocks:
    def test_block_events_carry_payload(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("H1", changed=5)
        monitor.block("H1", block=2, seconds=0.003, items=400)
        event = events[-1]
        assert event.kind == "block"
        assert event.round == 1  # the round it happened in
        assert event.extra == {"block": 2, "seconds": 0.003, "items": 400}
        assert math.isinf(event.eta_seconds)

    def test_block_without_items(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.block("H1", block=0, seconds=0.001)
        assert "items" not in events[0].extra


class TestFormatEvent:
    def test_round_line(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("P3", frontier=128)
        line = format_event(events[0])
        assert "round   1" in line
        assert "P3" in line
        assert "frontier=128" in line
        assert "eta    --" in line  # round 1: no trend yet

    def test_round_line_with_finite_eta(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.beat("H", changed=100)
        monitor.beat("H", changed=50)
        assert "eta " in format_event(events[1])
        assert "--" not in format_event(events[1])

    def test_block_line(self):
        events = []
        monitor = HeartbeatMonitor(events, clock=FakeClock())
        monitor.block("H1", block=3, seconds=0.002, items=64)
        line = format_event(events[0])
        assert "block 3" in line
        assert "items=64" in line
