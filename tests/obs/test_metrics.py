"""Tests for counters, gauges, and fixed-bucket histograms."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    POW2_BUCKETS,
    RATIO_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry(True)
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.counters_snapshot() == {"hits": 5}

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry(True)
        reg.gauge("workers").set(2)
        reg.gauge("workers").set(4)
        assert reg.gauges_snapshot() == {"workers": 4.0}

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry(True)
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")


class TestDisabledRegistry:
    def test_all_accessors_are_noops(self):
        reg = MetricsRegistry(False)
        reg.counter("a").inc(10)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(2.0)
        reg.histogram("c").observe_many([1, 2, 3])
        assert reg.counters_snapshot() == {}
        assert reg.gauges_snapshot() == {}
        assert reg.histogram_summaries() == {}

    def test_null_instrument_is_shared(self):
        reg = MetricsRegistry(False)
        assert reg.counter("a") is reg.histogram("b") is reg.gauge("c")


class TestHistogram:
    def test_binning(self):
        h = Histogram("d", (1.0, 2.0, 4.0))
        h.observe_many([0.5, 1.0, 1.5, 3.0, 100.0])
        s = h.summary()
        assert s["count"] == 5
        # searchsorted(left): a value equal to a bound lands in that bucket.
        assert s["buckets"] == {"1": 2, "2": 1, "4": 1, "+inf": 1}
        assert s["min"] == 0.5
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(106.0 / 5)

    def test_observe_matches_observe_many(self):
        a = Histogram("a", RATIO_BUCKETS)
        b = Histogram("b", RATIO_BUCKETS)
        values = [1.0, 1.2, 2.5, 11.0]
        for v in values:
            a.observe(v)
        b.observe_many(np.asarray(values))
        assert a.summary() == b.summary()

    def test_empty_batch_is_noop(self):
        h = Histogram("h", POW2_BUCKETS)
        h.observe_many([])
        assert h.summary() == {"count": 0, "sum": 0.0, "buckets": {}}

    def test_empty_summary_omits_stats(self):
        s = Histogram("h", (1.0,)).summary()
        assert "mean" not in s and "min" not in s

    def test_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", ())
        with pytest.raises(ConfigurationError):
            Histogram("h", (2.0, 1.0))

    def test_pow2_buckets_ascend(self):
        assert list(POW2_BUCKETS) == sorted(POW2_BUCKETS)
        assert POW2_BUCKETS[0] == 1.0

    def test_registry_snapshot(self):
        reg = MetricsRegistry(True)
        reg.histogram("hook_distance", POW2_BUCKETS).observe_many([1, 5, 9])
        summaries = reg.histogram_summaries()
        assert summaries["hook_distance"]["count"] == 3
