"""Tests for the run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.ledger import (
    LEDGER_ENV,
    RunLedger,
    RunRecord,
    env_snapshot,
    fingerprint_graph,
    record_from_result,
    resolve_ledger,
)


class TestFingerprint:
    def test_carries_sizes_and_digest(self, two_cliques):
        fp = fingerprint_graph(two_cliques)
        assert fp["vertices"] == 8
        assert fp["edges"] == two_cliques.num_directed_edges
        assert len(fp["digest"]) == 16  # blake2b(digest_size=8) hex

    def test_deterministic(self, two_cliques):
        assert fingerprint_graph(two_cliques) == fingerprint_graph(two_cliques)

    def test_distinguishes_graphs(self, two_cliques, path_graph):
        a = fingerprint_graph(two_cliques)["digest"]
        b = fingerprint_graph(path_graph)["digest"]
        assert a != b

    def test_topology_changes_digest(self, random_graph_factory):
        a = fingerprint_graph(random_graph_factory(50, 120, seed=1))
        b = fingerprint_graph(random_graph_factory(50, 120, seed=2))
        assert a["vertices"] == b["vertices"]
        assert a["digest"] != b["digest"]

    def test_duck_typed_without_arrays(self):
        class Bare:
            num_vertices = 10
            num_edges = 4

        fp = fingerprint_graph(Bare())
        assert fp["vertices"] == 10 and fp["edges"] == 4
        assert fp["digest"]


class TestEnvSnapshot:
    def test_has_the_reproducibility_facts(self):
        env = env_snapshot()
        for key in ("python", "numpy", "platform", "machine", "cpu_count"):
            assert key in env


class TestRunRecord:
    def test_dict_round_trip(self):
        rec = RunRecord(
            run_id="rdeadbeef-0001",
            timestamp=123.5,
            kind="bench",
            algorithm="fastsv",
            plan="none+fastsv",
            backend="process",
            workers=4,
            graph={"vertices": 10, "edges": 9, "digest": "ab"},
            seconds=0.25,
            phase_seconds={"HS1": 0.1, "total": 0.25},
            counters={"rounds_skipped": 2},
            gauges={"label_dtype_bits": 32.0},
            label_dtype_bits=32,
            num_components=3,
            meta={"dataset": "lattice"},
        )
        back = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back.to_dict() == rec.to_dict()

    def test_from_dict_tolerates_missing_and_extra_keys(self):
        rec = RunRecord.from_dict({"run_id": "r1", "unknown_key": [1, 2]})
        assert rec.run_id == "r1"
        assert rec.seconds == 0.0
        assert rec.workers is None
        assert rec.counters == {}

    def test_label_prefers_dataset_then_digest(self):
        rec = RunRecord(algorithm="sv", backend="vectorized")
        rec.meta["dataset"] = "lattice-70x70"
        assert rec.label() == "sv/lattice-70x70/vectorized"
        rec.meta.clear()
        rec.graph = {"digest": "ff00"}
        assert rec.label() == "sv/ff00/vectorized"


class _FakeResult:
    """Duck-typed stand-in for CCResult."""

    algorithm = "fastsv"
    plan = "none+fastsv"
    backend = "vectorized"
    num_components = 2
    counters = {"rounds_skipped": 1}
    phase_seconds = {"HS1": 0.01, "total": 0.02}
    trace = None


class TestRecordFromResult:
    def test_builds_self_contained_record(self, two_cliques):
        rec = record_from_result(
            _FakeResult(),
            graph=two_cliques,
            kind="bench",
            seconds=0.5,
            meta={"dataset": "cliques"},
        )
        assert rec.kind == "bench"
        assert rec.run_id.startswith("r")
        assert rec.algorithm == "fastsv"
        assert rec.seconds == 0.5
        assert rec.graph["vertices"] == 8
        assert rec.counters == {"rounds_skipped": 1}
        assert rec.meta["dataset"] == "cliques"
        assert rec.env["python"]

    def test_seconds_defaults_to_phase_total(self):
        rec = record_from_result(_FakeResult())
        assert rec.seconds == pytest.approx(0.02)

    def test_unique_run_ids(self):
        a = record_from_result(_FakeResult())
        b = record_from_result(_FakeResult())
        assert a.run_id != b.run_id


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "ledger.jsonl")


def _record(run_id: str, seconds: float = 0.1) -> RunRecord:
    return RunRecord(run_id=run_id, seconds=seconds, algorithm="sv")


class TestRunLedger:
    def test_missing_file_reads_empty(self, ledger):
        assert ledger.records() == []

    def test_append_then_read(self, ledger):
        ledger.append(_record("r-aa"))
        ledger.append(_record("r-bb"))
        ids = [r.run_id for r in ledger.records()]
        assert ids == ["r-aa", "r-bb"]

    def test_append_creates_parent_dirs(self, tmp_path):
        ledger = RunLedger(tmp_path / "deep" / "nested" / "ledger.jsonl")
        ledger.append(_record("r-aa"))
        assert [r.run_id for r in ledger.records()] == ["r-aa"]

    def test_one_line_per_record(self, ledger):
        ledger.append(_record("r-aa"))
        ledger.append(_record("r-bb"))
        lines = ledger.path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["run_id"] for line in lines)

    def test_malformed_lines_are_skipped(self, ledger):
        ledger.append(_record("r-aa"))
        with open(ledger.path, "a") as fh:
            fh.write("{torn wri\n")
            fh.write("[1, 2, 3]\n")
        ledger.append(_record("r-bb"))
        assert [r.run_id for r in ledger.records()] == ["r-aa", "r-bb"]

    def test_last(self, ledger):
        for i in range(5):
            ledger.append(_record(f"r-{i}"))
        assert [r.run_id for r in ledger.last(2)] == ["r-3", "r-4"]

    def test_resolve_latest_and_negative(self, ledger):
        for i in range(3):
            ledger.append(_record(f"r-{i}"))
        assert ledger.resolve("latest").run_id == "r-2"
        assert ledger.resolve("-1").run_id == "r-2"
        assert ledger.resolve("-3").run_id == "r-0"

    def test_resolve_prefix(self, ledger):
        ledger.append(_record("rabc123"))
        ledger.append(_record("rxyz456"))
        assert ledger.resolve("rxyz").run_id == "rxyz456"

    def test_resolve_ambiguous_prefix_raises(self, ledger):
        ledger.append(_record("rab1"))
        ledger.append(_record("rab2"))
        with pytest.raises(ConfigurationError, match="ambiguous"):
            ledger.resolve("rab")

    def test_resolve_unknown_raises(self, ledger):
        ledger.append(_record("r-aa"))
        with pytest.raises(ConfigurationError, match="no ledger record"):
            ledger.resolve("nope")

    def test_resolve_out_of_range_raises(self, ledger):
        ledger.append(_record("r-aa"))
        with pytest.raises(ConfigurationError, match="only 1 record"):
            ledger.resolve("-5")

    def test_resolve_empty_ledger_raises(self, ledger):
        with pytest.raises(ConfigurationError, match="no records"):
            ledger.resolve("latest")


class TestResolveLedger:
    def test_none_without_env_is_off(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert resolve_ledger(None) is None

    def test_none_with_env_records_there(self, monkeypatch, tmp_path):
        target = tmp_path / "env-ledger.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        ledger = resolve_ledger(None)
        assert ledger is not None and ledger.path == target

    def test_false_forces_off_even_with_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "x.jsonl"))
        assert resolve_ledger(False) is None

    def test_path_and_instance(self, tmp_path):
        path = tmp_path / "a.jsonl"
        assert resolve_ledger(str(path)).path == path
        ledger = RunLedger(path)
        assert resolve_ledger(ledger) is ledger
