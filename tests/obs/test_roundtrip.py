"""Property-style JSONL ⇄ Chrome round-trip tests for trace export.

Traces are generated from seeded randomness so every run exercises the
same family of shapes: fused phase labels (``HS<i>``), skipped rounds
(gaps in the round numbering), worker-track spans, counters, gauges,
and histogram summaries.  Both exporters must reproduce the phase
timings, metric snapshots, and track structure after a round trip.
"""

import random

import pytest

from repro.obs import load_trace, phase_label, write_trace
from repro.obs.trace import Span, Trace

SEEDS = range(12)


def _random_trace(seed: int) -> Trace:
    rng = random.Random(seed)
    t = 0.0
    root = Span("total", t)
    rounds = rng.randrange(1, 7)
    round_no = 0
    for _ in range(rounds):
        # Skipped rounds: gaps in the numbering, like the engine's
        # rounds_skipped fast path produces.
        round_no += rng.randrange(1, 3)
        base = rng.choice(["H", "HS", "P", "T"])
        dur = rng.randrange(1, 50) * 1e-4
        span = Span(
            phase_label(base, round=round_no),
            t,
            t + dur,
            attrs={"frontier": rng.randrange(1, 1000)},
        )
        # Worker tracks: some phases fan out into per-worker blocks.
        if rng.random() < 0.6:
            workers = rng.randrange(1, 4)
            wt = t
            for w in range(workers):
                wdur = dur / (workers + 1)
                span.children.append(
                    Span(str(span.label), wt, wt + wdur, track=f"worker-{w}")
                )
                wt += wdur
        root.children.append(span)
        t += dur + rng.randrange(1, 5) * 1e-5
    if rng.random() < 0.5:
        root.children.append(
            Span(phase_label("P", final=True), t, t + 1e-4)
        )
        t += 1.5e-4
    root.t1 = t
    counters = {"rounds_skipped": rng.randrange(5), "bytes_allocated": 1024}
    gauges = {"label_dtype_bits": float(rng.choice([32, 64]))}
    histograms = {
        "frontier": {
            "count": 4,
            "sum": 100.0,
            "min": 1.0,
            "max": 64.0,
            "mean": 25.0,
            "buckets": {"16.0": 3, "+inf": 1},
        }
    }
    return Trace(
        [root],
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        meta={"algorithm": "fastsv", "backend": "process", "workers": 2},
    )


def _labels_by_depth(trace: Trace) -> list[tuple[str, int, str | None]]:
    return [(s.label, d, s.track) for s, d in trace.walk()]


@pytest.mark.parametrize("seed", SEEDS)
def test_jsonl_round_trip_is_exact(tmp_path, seed):
    trace = _random_trace(seed)
    path = tmp_path / "trace.jsonl"
    write_trace(trace, path, format="jsonl")
    back = load_trace(path)
    # JSON floats round-trip exactly in Python, so the whole tree does.
    assert back.to_dict() == trace.to_dict()


@pytest.mark.parametrize("seed", SEEDS)
def test_chrome_round_trip_preserves_structure(tmp_path, seed):
    trace = _random_trace(seed)
    path = tmp_path / "trace.json"
    write_trace(trace, path, format="chrome")
    back = load_trace(path)
    # Chrome rebases timestamps and stores microseconds, so timings are
    # compared with a tolerance; structure and snapshots are exact.
    assert _labels_by_depth(back) == _labels_by_depth(trace)
    assert back.counters == trace.counters
    assert back.gauges == trace.gauges
    assert back.histograms == trace.histograms
    assert back.meta == trace.meta
    assert back.tracks() == trace.tracks()
    want = trace.phase_seconds()
    got = back.phase_seconds()
    assert set(got) == set(want)
    for label, seconds in want.items():
        assert got[label] == pytest.approx(seconds, abs=1e-6)


@pytest.mark.parametrize("seed", SEEDS)
def test_formats_agree_on_phase_seconds(tmp_path, seed):
    trace = _random_trace(seed)
    jsonl = tmp_path / "t.jsonl"
    chrome = tmp_path / "t.json"
    write_trace(trace, jsonl, format="jsonl")
    write_trace(trace, chrome, format="chrome")
    a = load_trace(jsonl).phase_seconds()
    b = load_trace(chrome).phase_seconds()
    assert set(a) == set(b)
    for label in a:
        assert a[label] == pytest.approx(b[label], abs=1e-6)


def test_worker_skew_survives_chrome(tmp_path):
    trace = _random_trace(3)
    path = tmp_path / "t.json"
    write_trace(trace, path, format="chrome")
    back = load_trace(path)
    want = trace.worker_skew()
    got = back.worker_skew()
    assert set(got) == set(want)
    for label in want:
        assert got[label]["tasks"] == want[label]["tasks"]
        assert got[label]["skew"] == pytest.approx(
            want[label]["skew"], rel=1e-3
        )
