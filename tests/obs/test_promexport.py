"""Tests for Prometheus text exposition (repro.obs.promexport)."""

from repro.obs.ledger import RunRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import prometheus_lines, render_prometheus
from repro.obs.trace import Span, Trace


class TestCountersAndGauges:
    def test_counter_lines(self):
        lines = prometheus_lines(counters={"rounds_skipped": 4})
        assert "# TYPE repro_rounds_skipped_total counter" in lines
        assert "repro_rounds_skipped_total 4" in lines

    def test_gauge_lines(self):
        lines = prometheus_lines(gauges={"probe_seconds": 0.25})
        assert "# TYPE repro_probe_seconds gauge" in lines
        assert "repro_probe_seconds 0.25" in lines

    def test_integer_valued_floats_collapse(self):
        lines = prometheus_lines(gauges={"bits": 32.0})
        assert "repro_bits 32" in lines

    def test_labels_attached_to_every_sample(self):
        lines = prometheus_lines(
            counters={"c": 1},
            gauges={"g": 2.5},
            labels={"algorithm": "fastsv", "backend": "process"},
        )
        samples = [ln for ln in lines if not ln.startswith("#")]
        for sample in samples:
            assert 'algorithm="fastsv"' in sample
            assert 'backend="process"' in sample

    def test_label_values_escaped(self):
        lines = prometheus_lines(counters={"c": 1}, labels={"x": 'a"b\\c'})
        sample = next(ln for ln in lines if not ln.startswith("#"))
        assert r"a\"b\\c" in sample

    def test_names_sanitised_to_grammar(self):
        lines = prometheus_lines(counters={"edges/sec-peak": 7})
        assert "repro_edges_sec_peak_total 7" in lines

    def test_custom_namespace(self):
        lines = prometheus_lines(counters={"c": 1}, namespace="cc")
        assert "cc_c_total 1" in lines


class TestHistograms:
    def test_cumulative_buckets(self):
        summary = {
            "count": 10,
            "sum": 42.0,
            "buckets": {"1.0": 3, "10.0": 5, "+inf": 2},
        }
        lines = prometheus_lines(histograms={"frontier": summary})
        assert "# TYPE repro_frontier histogram" in lines
        assert 'repro_frontier_bucket{le="1"} 3' in lines
        # Cumulative: the le="10" bucket includes the le="1" population.
        assert 'repro_frontier_bucket{le="10"} 8' in lines
        assert 'repro_frontier_bucket{le="+Inf"} 10' in lines
        assert "repro_frontier_sum 42" in lines
        assert "repro_frontier_count 10" in lines

    def test_non_mapping_summary_skipped(self):
        lines = prometheus_lines(histograms={"bad": "oops"})
        assert lines == []


class TestRenderPrometheus:
    def test_from_trace_with_provenance(self):
        trace = Trace(
            [Span("total", 0.0, 1.0)],
            counters={"c": 1},
            gauges={"g": 2.0},
            meta={"algorithm": "sv", "backend": "vectorized"},
        )
        text = render_prometheus(trace)
        assert 'repro_c_total{algorithm="sv",backend="vectorized"} 1' in text
        assert text.endswith("\n")

    def test_from_run_record_includes_run_id(self):
        rec = RunRecord(
            run_id="rff-01",
            algorithm="fastsv",
            backend="process",
            counters={"c": 3},
            meta={"dataset": "lattice"},
        )
        text = render_prometheus(rec)
        assert 'dataset="lattice"' in text
        assert 'run_id="rff-01"' in text

    def test_from_registry(self):
        metrics = MetricsRegistry(True)
        metrics.counter("edges").inc(12)
        metrics.gauge("skew").set(1.5)
        text = render_prometheus(metrics)
        assert "repro_edges_total 12" in text
        assert "repro_skew 1.5" in text

    def test_from_mapping(self):
        text = render_prometheus({"counters": {"c": 1}, "gauges": {}})
        assert "repro_c_total 1" in text

    def test_caller_labels_override_provenance(self):
        rec = RunRecord(run_id="r1", algorithm="sv", counters={"c": 1})
        text = render_prometheus(rec, labels={"algorithm": "other"})
        assert 'algorithm="other"' in text

    def test_empty_source_renders_empty(self):
        assert render_prometheus({}) == ""
