"""Tests for the ASCII trace renderer."""

from repro.obs import Span, Trace, render_trace, skew_lines
from repro.obs.render import timeline_bar

from .test_export import sample_trace


class TestTimelineBar:
    def test_marks_interval_position(self):
        bar = timeline_bar([(2.0, 4.0)], 0.0, 8.0, 8)
        assert bar == "··██····"

    def test_nonempty_interval_marks_at_least_one_cell(self):
        bar = timeline_bar([(0.0, 1e-9)], 0.0, 10.0, 10)
        assert bar.count("█") >= 1

    def test_zero_total(self):
        assert timeline_bar([], 0.0, 0.0, 4) == "····"


class TestSkewLines:
    def test_format(self):
        lines = skew_lines(
            {"H1": {"max_s": 0.003, "mean_s": 0.002, "skew": 1.5, "tasks": 2.0}}
        )
        (line,) = lines
        assert line.startswith("H1")
        assert "1.50x" in line
        assert "2 tasks" in line

    def test_empty(self):
        assert skew_lines({}) == []


class TestRenderTrace:
    def test_sections(self):
        text = render_trace(sample_trace())
        assert text.startswith("trace: sv [process, 2]")
        # Every main-track span appears in the table; worker rows appear
        # as tracks, not as tree rows.
        for label in ("total", "H1", "S1"):
            assert label in text
        assert "worker-0" in text and "worker-1" in text
        assert "worker skew" in text
        assert "settle_passes=2" in text
        assert "block_imbalance" in text

    def test_respects_width(self):
        narrow = render_trace(sample_trace(), width=10)
        wide = render_trace(sample_trace(), width=60)
        assert len(narrow.splitlines()[3]) < len(wide.splitlines()[3])

    def test_empty_trace_renders(self):
        text = render_trace(Trace([]))
        assert text.startswith("trace:")

    def test_untracked_trace_has_no_worker_sections(self):
        trace = Trace([Span("total", 0.0, 1.0)])
        text = render_trace(trace)
        assert "worker" not in text


class TestGracefulDegradation:
    """Satellite: the renderer survives traces written by other tool
    versions — missing skew statistics, open spans, unknown attrs."""

    def test_skew_lines_tolerate_missing_stats(self):
        lines = skew_lines({"H1": {"skew": 2.0}, "H2": {}})
        assert len(lines) == 2
        assert "2.00x" in lines[0]
        assert "0 tasks" in lines[1]

    def test_skew_lines_skip_non_dict_stats(self):
        assert skew_lines({"H1": "corrupt"}) == []

    def test_open_span_renders_with_marker(self):
        root = Span("total", 0.0, 1.0)
        root.children.append(Span("H1", 0.0))  # never closed
        text = render_trace(Trace([root]))
        assert "(open)" in text

    def test_unknown_attrs_and_long_labels_stay_aligned(self):
        root = Span("total", 0.0, 1.0)
        root.children.append(
            Span(
                "some-very-long-unfamiliar-phase-label",
                0.0,
                0.5,
                attrs={"mystery": object()},
            )
        )
        text = render_trace(Trace([root]))
        assert "some-very-long-unfamiliar-phase-label" in text
