"""Tests for the JSONL and Chrome trace_event exporters and loaders."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Span,
    Trace,
    load_trace,
    phase_label,
    trace_events,
    write_trace,
)


def sample_trace() -> Trace:
    root = Span("total", 100.0, 100.010)
    h1 = Span(phase_label("H", round=1), 100.0, 100.004)
    h1.children = [
        Span("H1", 100.001, 100.003, track="worker-0", attrs={"block": 0}),
        Span("H1", 100.001, 100.002, track="worker-1", attrs={"block": 1}),
    ]
    s1 = Span(phase_label("S", round=1), 100.004, 100.006)
    root.children = [h1, s1]
    return Trace(
        [root],
        counters={"settle_passes": 2},
        histograms={"block_imbalance": {"count": 1, "sum": 1.5, "buckets": {"2": 1}}},
        meta={"algorithm": "sv", "backend": "process", "workers": 2},
    )


class TestChromeEvents:
    def test_is_valid_trace_event_list(self):
        events = trace_events(sample_trace())
        # Viewers need every event to carry ph/pid/tid.
        assert all({"ph", "pid", "tid"} <= set(e) for e in events)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 5  # total, H1, S1, 2 worker tasks

    def test_timestamps_rebased_to_microseconds(self):
        events = trace_events(sample_trace())
        total = next(e for e in events if e["name"] == "total")
        assert total["ts"] == pytest.approx(0.0)
        assert total["dur"] == pytest.approx(10_000.0)

    def test_worker_tracks_get_named_tids(self):
        events = trace_events(sample_trace())
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "engine"
        assert names[1] == "worker-0"
        assert names[2] == "worker-1"
        worker_tids = {
            e["tid"] for e in events if e["ph"] == "X" and e["name"] == "H1"
            and e["tid"] != 0
        }
        assert worker_tids == {1, 2}

    def test_round_attr_exported(self):
        events = trace_events(sample_trace())
        h1 = next(
            e for e in events if e["ph"] == "X" and e["name"] == "H1"
            and e["tid"] == 0
        )
        assert h1["cat"] == "H"
        assert h1["args"]["round"] == 1


class TestRoundTrips:
    @pytest.mark.parametrize("format", ["jsonl", "chrome"])
    def test_round_trip(self, tmp_path, format):
        trace = sample_trace()
        path = tmp_path / f"trace.{format}"
        write_trace(trace, path, format=format)
        loaded = load_trace(path)
        assert loaded.counters == trace.counters
        assert loaded.histograms == trace.histograms
        assert loaded.meta == trace.meta
        assert loaded.tracks() == ["worker-0", "worker-1"]
        # Durations survive to microsecond precision in either format.
        for label, secs in trace.phase_seconds().items():
            assert loaded.phase_seconds()[label] == pytest.approx(
                secs, abs=1e-5
            )

    def test_chrome_rebuilds_nesting(self, tmp_path):
        path = tmp_path / "t.json"
        write_trace(sample_trace(), path, format="chrome")
        loaded = load_trace(path)
        (root,) = loaded.spans
        assert root.label == "total"
        assert [c.label for c in root.children if c.track is None] == [
            "H1", "S1",
        ]
        h1 = root.children[0]
        assert {c.track for c in h1.children} == {"worker-0", "worker-1"}

    def test_chrome_file_is_json_array(self, tmp_path):
        path = tmp_path / "t.json"
        write_trace(sample_trace(), path, format="chrome")
        data = json.loads(path.read_text())
        assert isinstance(data, list) and data

    def test_jsonl_file_is_line_oriented(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(sample_trace(), path, format="jsonl")
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert all(ln["type"] == "span" for ln in lines[1:])
        assert len(lines) == 1 + 5

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_trace(sample_trace(), tmp_path / "t", format="xml")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace(path)
