"""Tests for trace-diff regression attribution (repro.obs.diff)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.diff import (
    ABS_FLOOR_SECONDS,
    CounterDelta,
    PhaseDelta,
    attribution_markdown,
    diff_runs,
    format_diff,
)
from repro.obs.ledger import RunRecord
from repro.obs.trace import Span, Trace


class TestPhaseDelta:
    def test_pct_and_describe(self):
        delta = PhaseDelta("HS3", 0.100, 0.138)
        assert delta.pct == pytest.approx(38.0)
        assert delta.describe() == "+38% in HS3"

    def test_new_and_disappeared_phases(self):
        assert PhaseDelta("X", 0.0, 0.01).describe() == "new phase X"
        assert math.isinf(PhaseDelta("X", 0.0, 0.01).pct)
        assert PhaseDelta("Y", 0.01, 0.0).describe() == "Y disappeared"

    def test_moved_needs_both_floors(self):
        # Large relative move, but under the absolute floor: not moved.
        tiny = PhaseDelta("H1", 10e-6, 20e-6)
        assert not tiny.moved()
        # Clear of both floors: moved.
        assert PhaseDelta("H1", 0.010, 0.013).moved()
        # Large absolute delta but small relative one: not moved.
        assert not PhaseDelta("H1", 1.00, 1.05).moved()

    def test_abs_floor_boundary(self):
        at_floor = PhaseDelta("H1", 0.0, ABS_FLOOR_SECONDS)
        assert at_floor.moved()


class TestCounterDelta:
    def test_describe_integers(self):
        assert CounterDelta("rounds_skipped", 4, 0).describe() == (
            "rounds_skipped 4→0"
        )

    def test_describe_floats(self):
        assert "1.5" in CounterDelta("x", 1.5, 2.0).describe()


def _run(total, phases, counters=None, gauges=None):
    return {
        "median_seconds": total,
        "phase_seconds": phases,
        "counters": counters or {},
        "gauges": gauges or {},
    }


class TestDiffRuns:
    def test_attributes_regression_to_phase_and_counters(self):
        a = _run(0.10, {"HS1": 0.02, "HS3": 0.05}, {"rounds_skipped": 4})
        b = _run(0.14, {"HS1": 0.02, "HS3": 0.09}, {"rounds_skipped": 0})
        diff = diff_runs(a, b, label_a="fastsv/lattice", label_b="fastsv/lattice")
        assert diff.ratio == pytest.approx(1.4)
        assert diff.regressed(1.25)
        moved = diff.moved_phases()
        assert moved and moved[0].label == "HS3"
        summary = diff.summary()
        assert "fastsv/lattice" in summary
        assert "+80% in HS3" in summary
        assert "rounds_skipped 4→0" in summary

    def test_total_is_excluded_from_phase_deltas(self):
        a = _run(0.1, {"total": 0.1, "H1": 0.1})
        b = _run(0.2, {"total": 0.2, "H1": 0.2})
        diff = diff_runs(a, b)
        assert [p.label for p in diff.phases] == ["H1"]

    def test_unchanged_counters_are_dropped(self):
        a = _run(0.1, {}, {"same": 5, "moved": 1})
        b = _run(0.1, {}, {"same": 5, "moved": 3})
        diff = diff_runs(a, b)
        assert [c.name for c in diff.counters] == ["moved"]

    def test_noise_counters_are_excluded(self):
        a = _run(0.1, {}, {"probe_seconds_us": 10})
        b = _run(0.1, {}, {"probe_seconds_us": 900})
        assert diff_runs(a, b).counters == []

    def test_comm_counters_are_noise(self):
        a = _run(
            0.1,
            {},
            {
                "comm_bytes_sent": 1000,
                "comm_messages": 8,
                "comm_supersteps": 4,
                "comm_pair_0_1": 500,
                "rounds_skipped": 1,
            },
        )
        b = _run(
            0.1,
            {},
            {
                "comm_bytes_sent": 9000,
                "comm_messages": 64,
                "comm_supersteps": 4,
                "comm_pair_0_1": 100,
                "comm_pair_0_3": 4400,
                "rounds_skipped": 0,
            },
        )
        diff = diff_runs(a, b)
        assert [c.name for c in diff.counters] == ["rounds_skipped"]

    def test_diff_across_rank_counts_attributes_cleanly(self):
        """ranks=2 vs ranks=4 runs differ wildly in traffic, but the
        attribution clause must stay about phases and algorithmic
        counters, not the comm totals."""
        from repro import engine
        from repro.engine.backends import DistributedBackend
        from repro.generators import uniform_random_graph

        g = uniform_random_graph(300, edge_factor=4, seed=9)
        runs = {}
        for ranks in (2, 4):
            result = engine.run(
                g,
                plan="none+fastsv",
                backend=DistributedBackend(ranks=ranks),
                profile=True,
            )
            runs[ranks] = _run(0.1, {}, dict(result.counters))
        assert runs[2]["counters"]["comm_bytes_sent"] != (
            runs[4]["counters"]["comm_bytes_sent"]
        )
        diff = diff_runs(runs[2], runs[4])
        assert not any(c.name.startswith("comm_") for c in diff.counters)

    def test_phases_sorted_by_absolute_delta(self):
        a = _run(1.0, {"A": 0.1, "B": 0.5, "C": 0.2})
        b = _run(1.0, {"A": 0.15, "B": 0.9, "C": 0.1})
        labels = [p.label for p in diff_runs(a, b).phases]
        assert labels == ["B", "C", "A"]

    def test_accepts_run_records(self):
        rec_a = RunRecord(
            run_id="ra", algorithm="sv", backend="vectorized",
            seconds=0.1, phase_seconds={"H1": 0.1},
        )
        rec_b = RunRecord(
            run_id="rb", algorithm="sv", backend="vectorized",
            seconds=0.2, phase_seconds={"H1": 0.2},
        )
        diff = diff_runs(rec_a, rec_b)
        assert diff.ratio == pytest.approx(2.0)
        assert diff.label_a == "sv/?/vectorized"

    def test_accepts_traces(self):
        a = Trace(
            [Span("H1", 0.0, 0.1)],
            counters={"c": 1},
            meta={"algorithm": "sv", "backend": "vectorized"},
        )
        b = Trace([Span("H1", 0.0, 0.3)], counters={"c": 2})
        diff = diff_runs(a, b)
        assert diff.label_a == "sv/vectorized"
        assert diff.ratio == pytest.approx(3.0)
        assert [c.name for c in diff.counters] == ["c"]

    def test_rejects_unknown_types(self):
        with pytest.raises(ConfigurationError, match="cannot diff"):
            diff_runs(42, 43)

    def test_attribution_when_nothing_moved(self):
        diff = diff_runs(_run(0.1, {}), _run(0.1, {}))
        assert "no phase or counter moved" in diff.attribution()


class TestFormatDiff:
    def test_renders_table_and_summary(self):
        a = _run(0.10, {"HS1": 0.02, "HS3": 0.05}, {"rounds_skipped": 4})
        b = _run(0.14, {"HS1": 0.02, "HS3": 0.09}, {"rounds_skipped": 0})
        text = format_diff(diff_runs(a, b, label_a="base", label_b="now"))
        assert "a: base" in text and "b: now" in text
        assert "1.40x" in text
        assert "HS3" in text
        assert "rounds_skipped 4→0" in text

    def test_truncates_long_phase_lists(self):
        phases_a = {f"P{i}": 0.001 for i in range(30)}
        phases_b = {f"P{i}": 0.002 for i in range(30)}
        text = format_diff(diff_runs(_run(0.1, phases_a), _run(0.2, phases_b)))
        assert "more phases below threshold" in text


class TestAttributionMarkdown:
    def test_empty(self):
        assert "_no comparable runs_" in attribution_markdown([])

    def test_rows_sorted_worst_ratio_first(self):
        mild = diff_runs(_run(0.1, {"H1": 0.1}), _run(0.11, {"H1": 0.11}))
        bad = diff_runs(_run(0.1, {"H1": 0.1}), _run(0.2, {"H1": 0.2}))
        md = attribution_markdown([("mild", mild), ("bad", bad)])
        lines = md.splitlines()
        assert "| run | ratio | phase attribution | counters moved |" in lines
        bad_row = next(i for i, line in enumerate(lines) if "| bad |" in line)
        mild_row = next(i for i, line in enumerate(lines) if "| mild |" in line)
        assert bad_row < mild_row
        assert "2.00x" in lines[bad_row]
