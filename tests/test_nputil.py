"""Unit tests for shared vectorised utilities."""

import numpy as np
import pytest

from repro.nputil import expand_slices, segment_ranges


class TestSegmentRanges:
    def test_basic(self):
        assert segment_ranges(np.array([2, 0, 3])).tolist() == [0, 1, 0, 1, 2]

    def test_single_segment(self):
        assert segment_ranges(np.array([4])).tolist() == [0, 1, 2, 3]

    def test_all_zero(self):
        assert segment_ranges(np.array([0, 0])).tolist() == []

    def test_empty(self):
        assert segment_ranges(np.array([], dtype=np.int64)).tolist() == []

    def test_leading_and_trailing_zeros(self):
        assert segment_ranges(np.array([0, 2, 0, 1, 0])).tolist() == [0, 1, 0]

    def test_ones(self):
        assert segment_ranges(np.ones(5, dtype=np.int64)).tolist() == [0] * 5

    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            counts = rng.integers(0, 6, size=rng.integers(0, 12))
            expected = [i for c in counts for i in range(c)]
            assert segment_ranges(counts).tolist() == expected


class TestExpandSlices:
    def test_basic(self):
        owner, offset = expand_slices(
            np.array([10, 20, 30]), np.array([2, 0, 3])
        )
        assert owner.tolist() == [0, 0, 2, 2, 2]
        assert offset.tolist() == [10, 11, 30, 31, 32]

    def test_negative_counts_clamped(self):
        owner, offset = expand_slices(np.array([5, 7]), np.array([-3, 2]))
        assert owner.tolist() == [1, 1]
        assert offset.tolist() == [7, 8]

    def test_empty(self):
        owner, offset = expand_slices(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert owner.size == 0
        assert offset.size == 0
