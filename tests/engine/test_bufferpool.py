"""Buffer pool and the optimization-observability counters.

Covers the :class:`~repro.engine.bufferpool.BufferPool` contract (named
reuse, growth, dtype change, allocation accounting) and the end-to-end
counters the perf gate reads from smoke reports: ``bytes_allocated``
(scratch demanded by the round structure; zero on a warm pool),
``fused_passes`` (FastSV fused hook+jump rounds), and ``rounds_skipped``
(change-detection eliding the final no-op jump/compress).
"""

from __future__ import annotations

import numpy as np

from repro import engine
from repro.engine import VectorizedBackend
from repro.engine.bufferpool import BufferPool
from repro.generators import uniform_random_graph


class TestBufferPool:
    def test_returns_requested_size_and_dtype(self):
        pool = BufferPool()
        view = pool.get("a", 10, np.int32)
        assert view.shape == (10,)
        assert view.dtype == np.int32

    def test_reuses_capacity_for_smaller_requests(self):
        allocs: list[int] = []
        pool = BufferPool(allocs.append)
        big = pool.get("a", 100, np.int64)
        big[:] = 7
        small = pool.get("a", 10, np.int64)
        # Same storage handed back as a prefix view: no new allocation.
        assert small.base is big.base or small.base is big
        assert allocs == [100 * 8]

    def test_grows_and_reports_fresh_bytes(self):
        allocs: list[int] = []
        pool = BufferPool(allocs.append)
        pool.get("a", 10, np.int64)
        pool.get("a", 20, np.int64)
        assert allocs == [10 * 8, 20 * 8]

    def test_dtype_change_reallocates(self):
        allocs: list[int] = []
        pool = BufferPool(allocs.append)
        pool.get("a", 8, np.int64)
        pool.get("a", 8, np.int32)
        assert len(allocs) == 2

    def test_names_are_independent(self):
        pool = BufferPool()
        a = pool.get("a", 4, np.int64)
        b = pool.get("b", 4, np.int64)
        a[:] = 1
        b[:] = 2
        assert a.sum() == 4  # b's writes must not alias a

    def test_take_gathers_into_pool(self):
        pool = BufferPool()
        arr = np.arange(10, dtype=np.int64) * 3
        idx = np.array([0, 4, 9])
        out = pool.take(arr, idx, "gather")
        assert np.array_equal(out, [0, 12, 27])
        # Second gather reuses the same buffer.
        again = pool.take(arr, idx, "gather")
        assert again.base is out.base or again.base is out

    def test_zero_size_request(self):
        pool = BufferPool()
        assert pool.get("a", 0, np.int64).shape == (0,)

    def test_clear_forgets_buffers(self):
        allocs: list[int] = []
        pool = BufferPool(allocs.append)
        pool.get("a", 10, np.int64)
        pool.clear()
        pool.get("a", 10, np.int64)
        assert len(allocs) == 2


class TestOptimizationCounters:
    def test_fastsv_counters_present(self):
        g = uniform_random_graph(400, edge_factor=4, seed=5)
        result = engine.run("fastsv", g, profile=True)
        assert result.counters.get("fused_passes", 0) >= 1
        # The convergence round's sweep changes nothing, so its jump is
        # skipped (labels are already flat).
        assert result.counters.get("rounds_skipped", 0) >= 1
        assert result.counters.get("bytes_allocated", 0) > 0

    def test_sv_skips_converged_compress(self, mixed_graph):
        result = engine.run("sv", mixed_graph, profile=True)
        if result.iterations > 1:
            assert result.counters.get("rounds_skipped", 0) >= 1

    def test_warm_pool_allocates_nothing(self):
        g = uniform_random_graph(400, edge_factor=4, seed=5)
        backend = VectorizedBackend()
        first = engine.run("fastsv", g, backend=backend, profile=True)
        second = engine.run("fastsv", g, backend=backend, profile=True)
        assert first.counters.get("bytes_allocated", 0) > 0
        # Every scratch buffer already fits, so the warm run reports zero
        # fresh bytes (the counter is absent or 0).
        assert second.counters.get("bytes_allocated", 0) == 0

    def test_warm_pool_covers_dobfs_frontier_masks(self):
        # The per-round bottom-up mask must come from the pool, not a
        # fresh np.zeros per sweep.
        g = uniform_random_graph(400, edge_factor=4, seed=5)
        backend = VectorizedBackend()
        engine.run("dobfs", g, backend=backend, profile=True)
        second = engine.run("dobfs", g, backend=backend, profile=True)
        assert second.counters.get("bytes_allocated", 0) == 0

    def test_warm_process_backend_allocates_nothing(self):
        # Covers the shared-memory substrate too: π segments and shared
        # edge/frontier scratch must all be reused on a same-shape rerun.
        from repro.engine import ProcessParallelBackend

        g = uniform_random_graph(400, edge_factor=4, seed=5)
        with ProcessParallelBackend(workers=2) as backend:
            first = engine.run("fastsv", g, backend=backend, profile=True)
            second = engine.run("fastsv", g, backend=backend, profile=True)
        assert first.counters.get("bytes_allocated", 0) > 0
        assert second.counters.get("bytes_allocated", 0) == 0

    def test_counters_empty_without_profiling(self, mixed_graph):
        result = engine.run("fastsv", mixed_graph)
        assert result.counters == {}

    def test_counters_reach_bench_records(self):
        from repro.bench.runner import run_algorithm

        g = uniform_random_graph(300, edge_factor=4, seed=2)
        rec = run_algorithm(g, "fastsv", "g", repeats=2)
        counters = rec.extra.get("counters", {})
        assert counters.get("fused_passes", 0) >= 1
