"""Tests for CSR edge-block partitioning and shared-memory vectors."""

import numpy as np
import pytest

from repro.engine.partition import (
    SharedVector,
    partition_csr_blocks,
    partition_ranges,
)
from repro.errors import ConfigurationError
from repro.generators.powerlaw import barabasi_albert_graph


class TestPartitionCSRBlocks:
    def test_blocks_tile_the_graph(self):
        g = barabasi_albert_graph(500, edges_per_vertex=3, seed=2)
        blocks = partition_csr_blocks(g.indptr, 4)
        assert blocks[0].v_lo == 0 and blocks[0].e_lo == 0
        assert blocks[-1].v_hi == g.num_vertices
        assert blocks[-1].e_hi == g.num_directed_edges
        for prev, cur in zip(blocks, blocks[1:]):
            assert cur.v_lo == prev.v_hi
            assert cur.e_lo == prev.e_hi

    def test_cuts_respect_vertex_boundaries(self):
        g = barabasi_albert_graph(300, edges_per_vertex=5, seed=9)
        for blocks in (partition_csr_blocks(g.indptr, k) for k in (1, 2, 3, 8)):
            for b in blocks:
                # A block's edge range is exactly its vertices' adjacency.
                assert b.e_lo == int(g.indptr[b.v_lo])
                assert b.e_hi == int(g.indptr[b.v_hi])

    def test_edge_balance_under_skew(self):
        # Power-law degrees: an even vertex split would be badly edge-
        # imbalanced; the searchsorted cuts must keep blocks near m/k.
        g = barabasi_albert_graph(2000, edges_per_vertex=8, seed=4)
        blocks = partition_csr_blocks(g.indptr, 4)
        target = g.num_directed_edges / 4
        max_degree = int(np.diff(g.indptr).max())
        for b in blocks:
            # A cut can miss the ideal point by at most one adjacency list.
            assert abs(b.num_edges - target) <= max_degree + target / 2

    def test_more_blocks_than_vertices(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        blocks = partition_csr_blocks(indptr, 8)
        assert len(blocks) == 8
        assert sum(b.num_vertices for b in blocks) == 2
        assert sum(b.num_edges for b in blocks) == 2

    def test_empty_graph(self):
        indptr = np.array([0], dtype=np.int64)
        blocks = partition_csr_blocks(indptr, 3)
        assert sum(b.num_vertices for b in blocks) == 0
        assert sum(b.num_edges for b in blocks) == 0

    def test_invalid_block_count(self):
        with pytest.raises(ConfigurationError):
            partition_csr_blocks(np.array([0], dtype=np.int64), 0)


class TestPartitionRanges:
    def test_covers_total(self):
        ranges = partition_ranges(10, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 == lo2
            assert hi1 >= lo1

    def test_zero_total(self):
        assert all(lo == hi for lo, hi in partition_ranges(0, 4))


class TestSharedVector:
    def test_roundtrip_and_release(self):
        vec = SharedVector(16)
        vec.array[:] = np.arange(16)
        name, length, dtype = vec.spec
        assert length == 16
        assert np.dtype(dtype) == np.int64
        # Another view attached by name sees the same storage.
        from multiprocessing import shared_memory

        peer = shared_memory.SharedMemory(name=name)
        view = np.ndarray(16, dtype=np.int64, buffer=peer.buf)
        assert view[7] == 7
        view[7] = 70
        assert vec.array[7] == 70
        del view
        peer.close()
        vec.release()
        assert vec.array is None

    def test_zero_length_vector(self):
        vec = SharedVector(0)
        assert vec.array.shape == (0,)
        vec.release()

    def test_release_is_idempotent(self):
        vec = SharedVector(4)
        vec.release()
        vec.release()
