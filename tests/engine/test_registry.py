"""Tests for the algorithm registry."""

import numpy as np
import pytest

from repro import engine
from repro.engine import registry
from repro.engine.result import CCResult
from repro.errors import ConfigurationError

EXPECTED_BUILTINS = [
    "afforest",
    "afforest-noskip",
    "auto",
    "bfs",
    "distributed",
    "dobfs",
    "fastsv",
    "lp",
    "lp-datadriven",
    "sequential",
    "sv",
]


class TestAvailability:
    def test_all_builtins_registered(self):
        assert engine.available_algorithms() == EXPECTED_BUILTINS

    def test_names_sorted(self):
        names = engine.available_algorithms()
        assert names == sorted(names)

    def test_describe_pairs_with_descriptions(self):
        pairs = engine.describe_algorithms()
        names = [n for n, _ in pairs]
        # Registered algorithms first, then every composed plan.
        assert names[: len(EXPECTED_BUILTINS)] == EXPECTED_BUILTINS
        assert names[len(EXPECTED_BUILTINS):] == engine.available_plans()
        for _, description in pairs:
            assert description.strip()

    def test_describe_can_exclude_plans(self):
        pairs = engine.describe_algorithms(include_plans=False)
        assert [n for n, _ in pairs] == EXPECTED_BUILTINS


class TestMetadata:
    def test_afforest_supports_both_backends(self):
        spec = engine.get_algorithm("afforest")
        assert spec.supports_backend("vectorized")
        assert spec.supports_backend("simulated")

    def test_noskip_default_disables_skipping(self):
        spec = engine.get_algorithm("afforest-noskip")
        assert spec.defaults == {"skip_largest": False}

    def test_frontier_family_supports_every_backend(self):
        for name in ("lp", "lp-datadriven", "bfs", "dobfs"):
            spec = engine.get_algorithm(name)
            assert spec.backends == (
                "vectorized",
                "simulated",
                "process",
                "distributed",
            )

    def test_reference_algorithms_are_vectorized_only(self):
        for name in ("sequential", "distributed"):
            spec = engine.get_algorithm(name)
            assert spec.backends == ("vectorized",)
            assert not spec.supports_backend("simulated")

    def test_pipelines_marked_instrumented(self):
        assert engine.get_algorithm("afforest").instrumented
        assert engine.get_algorithm("sv").instrumented
        assert engine.get_algorithm("lp").instrumented
        assert not engine.get_algorithm("sequential").instrumented


class TestLookup:
    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            engine.get_algorithm("magic")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigurationError, match="afforest"):
            engine.get_algorithm("magic")

    def test_unknown_name_mentions_plans(self):
        with pytest.raises(ConfigurationError, match="composed plans"):
            engine.get_algorithm("magic")

    def test_composed_plan_name_resolves(self):
        spec = engine.get_algorithm("kout+sv")
        assert spec.name == "kout+sv"
        assert spec.backends == (
            "vectorized",
            "simulated",
            "process",
            "distributed",
        )
        assert spec.instrumented

    def test_unknown_plan_phase_raises(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            engine.get_algorithm("magic+sv")


class TestCustomRegistration:
    def test_register_run_and_cleanup(self, mixed_graph):
        @engine.register("test-trivial", description="everything one component")
        def _run_trivial(graph, backend, **params):
            return CCResult(
                labels=np.zeros(graph.num_vertices, dtype=np.int64)
            )

        try:
            assert "test-trivial" in engine.available_algorithms()
            result = engine.run("test-trivial", mixed_graph)
            assert result.num_components == 1
            assert result.algorithm == "test-trivial"
        finally:
            registry._REGISTRY.pop("test-trivial", None)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            @engine.register("afforest", description="impostor")
            def _run_impostor(graph, backend, **params):
                raise AssertionError("never called")

    def test_overwrite_allows_replacement(self, mixed_graph):
        original = engine.get_algorithm("sequential")

        @engine.register(
            "sequential", description="replacement", overwrite=True
        )
        def _run_replacement(graph, backend, **params):
            return CCResult(labels=np.arange(graph.num_vertices))

        try:
            result = engine.run("sequential", mixed_graph)
            assert result.num_components == mixed_graph.num_vertices
        finally:
            registry._REGISTRY["sequential"] = original

    def test_defaults_merged_under_caller_params(self, mixed_graph):
        seen = {}

        @engine.register(
            "test-defaults",
            description="records merged params",
            defaults={"alpha": 1, "beta": 2},
        )
        def _run_defaults(graph, backend, *, alpha, beta):
            seen["alpha"], seen["beta"] = alpha, beta
            return CCResult(labels=np.zeros(graph.num_vertices, dtype=np.int64))

        try:
            result = engine.run("test-defaults", mixed_graph, beta=7)
            assert seen == {"alpha": 1, "beta": 7}
            assert result.params == {"alpha": 1, "beta": 7}
        finally:
            registry._REGISTRY.pop("test-defaults", None)
