"""Engine-level observability: ledger recording, heartbeat, overhead.

The unit behaviour of :mod:`repro.obs.ledger` and
:mod:`repro.obs.heartbeat` lives in ``tests/obs/``; these tests check
what the *engine* does with them — ``record=`` appends a durable run
record and stamps ``result.run_id``, ``heartbeat=`` streams one round
event per pipeline round (and per-worker block events on the process
backend), and the combined machinery stays within the 3% overhead
budget the issue demands.
"""

import json
import math
import time
from statistics import median

import numpy as np
import pytest

from repro import engine
from repro.engine import ProcessParallelBackend
from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.obs import HeartbeatMonitor, RunLedger
from repro.obs.ledger import LEDGER_ENV, record_from_result


class TestEngineLedger:
    def test_record_path_appends_and_stamps_run_id(self, mixed_graph, tmp_path):
        path = tmp_path / "ledger.jsonl"
        result = engine.run("afforest", mixed_graph, record=str(path))
        records = RunLedger(path).records()
        assert len(records) == 1
        rec = records[0]
        assert result.run_id == rec.run_id
        assert rec.algorithm == "afforest"
        assert rec.backend == "vectorized"
        assert rec.seconds > 0
        assert rec.graph["vertices"] == mixed_graph.num_vertices
        assert rec.num_components == result.num_components

    def test_record_accepts_ledger_instance(self, mixed_graph, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        engine.run("sv", mixed_graph, record=ledger)
        engine.run("fastsv", mixed_graph, record=ledger)
        assert [r.algorithm for r in ledger.records()] == ["sv", "fastsv"]

    def test_env_var_enables_recording(self, mixed_graph, tmp_path, monkeypatch):
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        result = engine.run("afforest", mixed_graph)
        assert target.exists()
        assert RunLedger(target).records()[0].run_id == result.run_id

    def test_record_false_suppresses_env(self, mixed_graph, tmp_path, monkeypatch):
        target = tmp_path / "env.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        result = engine.run("afforest", mixed_graph, record=False)
        assert not target.exists()
        assert not hasattr(result, "run_id")

    def test_default_is_off(self, mixed_graph, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        result = engine.run("afforest", mixed_graph)
        assert not hasattr(result, "run_id")

    def test_profiled_record_carries_phases_and_counters(
        self, mixed_graph, tmp_path
    ):
        path = tmp_path / "ledger.jsonl"
        engine.run("afforest", mixed_graph, profile=True, record=str(path))
        rec = RunLedger(path).records()[0]
        assert "total" in rec.phase_seconds
        assert rec.counters  # afforest always counts something
        # The record is one self-contained JSON line.
        line = path.read_text().strip()
        assert "\n" not in line
        assert json.loads(line)["run_id"] == rec.run_id


class TestEngineHeartbeat:
    def test_rounds_increase_monotonically(self, mixed_graph):
        events = []
        engine.run("sv", mixed_graph, heartbeat=events)
        rounds = [e.round for e in events if e.kind == "round"]
        assert rounds == list(range(1, len(rounds) + 1))
        assert rounds  # at least one round reported

    def test_rounds_survive_composed_plans(self):
        # A composed plan (sampling phase + finish) restarts its own
        # phase numbering; the monitor's round counter keeps climbing.
        g = barabasi_albert_graph(2000, edges_per_vertex=3, seed=9)
        events = []
        engine.run("afforest", g, heartbeat=events)
        rounds = [e.round for e in events if e.kind == "round"]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_finite_eta_after_round_two(self):
        # Acceptance: heartbeat events carry monotonically increasing
        # rounds and a finite ETA from round 2 onward.
        g = grid_graph(40, 40)
        events = []
        engine.run("lp-datadriven", g, heartbeat=events)
        rounds = [e for e in events if e.kind == "round"]
        assert len(rounds) > 2
        for event in rounds[1:]:
            assert math.isfinite(event.eta_seconds)
            assert event.eta_seconds >= 0

    def test_monitor_instance_and_sink_callable(self, mixed_graph):
        seen = []
        monitor = HeartbeatMonitor(seen.append)
        engine.run("sv", mixed_graph, heartbeat=monitor)
        assert monitor.rounds == len(seen) > 0

    def test_heartbeat_leaves_trace_off(self, mixed_graph):
        result = engine.run("sv", mixed_graph, heartbeat=[])
        assert result.trace is None
        assert result.phase_seconds == {}

    def test_heartbeat_does_not_change_labeling(self, mixed_graph):
        plain = engine.run("fastsv", mixed_graph)
        beating = engine.run("fastsv", mixed_graph, heartbeat=[])
        assert np.array_equal(plain.labels, beating.labels)

    def test_process_backend_streams_block_events(self):
        g = barabasi_albert_graph(3000, edges_per_vertex=4, seed=11)
        events = []
        with ProcessParallelBackend(workers=2) as backend:
            engine.run("afforest", g, backend=backend, heartbeat=events)
        blocks = [e for e in events if e.kind == "block"]
        assert blocks, "process barriers should stream block events"
        for event in blocks:
            assert "block" in event.extra
            assert event.extra["seconds"] >= 0
        # Block events interleave with (not replace) the round stream.
        assert any(e.kind == "round" for e in events)


class TestSatelliteCounters:
    def test_probe_seconds_on_profiled_auto_run(self):
        g = barabasi_albert_graph(2000, edges_per_vertex=3, seed=5)
        result = engine.run("auto", g, profile=True)
        assert result.trace.gauges["probe_seconds"] > 0
        assert result.counters["probe_seconds_us"] >= 0

    def test_process_frontier_scratch_is_accounted(self):
        # Satellite: the process backend's per-round frontier scratch
        # goes through pooled shared segments, so a profiled frontier
        # run reports its allocations.
        g = grid_graph(30, 30)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run(
                "lp-datadriven", g, backend=backend, profile=True
            )
        assert result.counters.get("bytes_allocated", 0) > 0


class TestOverheadBudget:
    def test_ledger_and_heartbeat_within_three_percent(self, tmp_path):
        # Acceptance: ledger + heartbeat overhead within 3% of disabled.
        #
        # End-to-end wall-clock ratios are dominated by CPU throttling
        # noise on shared CI boxes (plain-vs-plain pairs routinely move
        # more than 3%), so this asserts on the *added work* directly:
        # a recorded+monitored run executes the identical pipeline plus
        # exactly (one beat per round + build record + append).  Timing
        # that block against the measured disabled run keeps the test
        # deterministic while bounding the true end-to-end delta.
        graph = grid_graph(60, 60)
        result = engine.run("lp-datadriven", graph)
        rounds = max(result.iterations, 1)

        base_samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            engine.run("lp-datadriven", graph)
            base_samples.append(time.perf_counter() - t0)
        base = min(base_samples)  # least-throttled run: strictest bound

        ledger = RunLedger(tmp_path / "ledger.jsonl")

        def added_work() -> float:
            monitor = HeartbeatMonitor([])
            t0 = time.perf_counter()
            for _ in range(rounds):
                monitor.beat("P", frontier=100)
            rec = record_from_result(
                result, graph=graph, seconds=base, meta={"workers": None}
            )
            ledger.append(rec)
            return time.perf_counter() - t0

        added_work()  # warm the file handle and code paths
        extra = median(added_work() for _ in range(15))
        ratio = extra / base
        assert ratio <= 0.03, (
            f"observability overhead {extra * 1e3:.3f} ms is "
            f"{ratio:.1%} of a {base * 1e3:.1f} ms run (budget 3%)"
        )


class TestBenchRunnerLedger:
    def test_run_algorithm_records_bench_run(self, tmp_path):
        from repro.bench.runner import run_algorithm

        g = grid_graph(20, 20)
        path = tmp_path / "bench.jsonl"
        record = run_algorithm(
            g, "fastsv", dataset="grid-20", repeats=2, ledger=str(path)
        )
        entries = RunLedger(path).records()
        assert len(entries) == 1
        rec = entries[0]
        assert rec.kind == "bench"
        assert rec.meta["dataset"] == "grid-20"
        assert record.extra["run_id"] == rec.run_id
