"""Stochastic/aggressive hooking variants of the fused FastSV finish.

Both variants add extra monotone min-writes of component-internal labels
on top of the plain sweep, so they may converge in fewer rounds but must
always produce the same partition.  They are exposed as the ``hooking``
plan parameter on the ``fastsv`` finish.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine
from repro.analysis import equivalent_labelings
from repro.engine import SimulatedBackend, VectorizedBackend, run_plan
from repro.errors import ConfigurationError
from repro.generators import kronecker_graph, uniform_random_graph
from repro.generators.lattice import grid_graph
from repro.parallel import SimulatedMachine
from repro.unionfind import sequential_components

HOOKINGS = ("plain", "stochastic", "aggressive")


class TestVariantCorrectness:
    @pytest.mark.parametrize("hooking", HOOKINGS)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, random_graph_factory, hooking, seed):
        g = random_graph_factory(80, 160, seed)
        r = engine.run("fastsv", g, hooking=hooking)
        assert equivalent_labelings(r.labels, sequential_components(g))

    @pytest.mark.parametrize("hooking", HOOKINGS)
    def test_structured_graphs(self, hooking):
        for g in (grid_graph(12, 12), kronecker_graph(7, edge_factor=6, seed=2)):
            r = engine.run("fastsv", g, hooking=hooking)
            assert equivalent_labelings(r.labels, sequential_components(g))

    def test_variants_agree_bitwise(self):
        # Same final labeling, not merely the same partition: every hook
        # writes min labels, so the fixpoint is the component-minimum
        # labeling for all three variants.
        g = uniform_random_graph(500, edge_factor=5, seed=9)
        labelings = [
            engine.run("fastsv", g, hooking=h).labels for h in HOOKINGS
        ]
        assert np.array_equal(labelings[0], labelings[1])
        assert np.array_equal(labelings[0], labelings[2])

    def test_aggressive_never_more_rounds_on_lattice(self):
        # The documented payoff: grandparent hooks shorten chains on
        # high-diameter graphs, cutting rounds.
        g = grid_graph(40, 40)
        plain = engine.run("fastsv", g, hooking="plain")
        aggressive = engine.run("fastsv", g, hooking="aggressive")
        assert aggressive.iterations <= plain.iterations

    @pytest.mark.parametrize("hooking", ["stochastic", "aggressive"])
    def test_simulated_backend_degrades_to_plain(self, hooking, mixed_graph):
        # Non-vectorized substrates run the plain sweep but must still
        # accept the parameter and converge to the right partition.
        backend = SimulatedBackend(SimulatedMachine(2, seed=3))
        r = engine.run("fastsv", mixed_graph, backend=backend, hooking=hooking)
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )


class TestPlanParameterRouting:
    def test_plan_routes_hooking_param(self, mixed_graph):
        r = engine.run("none+fastsv", mixed_graph, hooking="aggressive")
        assert r.params["hooking"] == "aggressive"
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_run_plan_accepts_hooking(self, mixed_graph):
        r = run_plan(
            "kout+fastsv",
            mixed_graph,
            VectorizedBackend(),
            hooking="stochastic",
        )
        assert r.plan == "kout+fastsv"
        assert equivalent_labelings(
            r.labels, sequential_components(mixed_graph)
        )

    def test_unknown_hooking_rejected(self, mixed_graph):
        with pytest.raises(ConfigurationError, match="hooking"):
            engine.run("fastsv", mixed_graph, hooking="bold")
