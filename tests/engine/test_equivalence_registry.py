"""Registry-driven equivalence: every algorithm, same vertex partition.

The registry is the source of truth for what can run, so this suite
enumerates it rather than hard-coding algorithm lists — a newly registered
algorithm is automatically held to the same contract: on any graph it must
produce the same partition of the vertex set as the sequential union-find
reference.
"""

import numpy as np
import pytest

from repro import engine
from repro.analysis import equivalent_labelings
from repro.generators import (
    chung_lu_graph,
    component_fraction_graph,
    grid_graph,
)
from repro.graph import from_edge_list
from repro.unionfind import sequential_components

GRAPH_FAMILIES = {
    "powerlaw": lambda: chung_lu_graph(300, exponent=2.0, seed=3),
    "lattice": lambda: grid_graph(12, 12),
    "multi-component": lambda: component_fraction_graph(
        256, 0.5, seed=8
    ),
    "empty": lambda: from_edge_list([], num_vertices=0),
    "singleton": lambda: from_edge_list([], num_vertices=1),
}


@pytest.mark.parametrize("algorithm", engine.available_algorithms())
@pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
def test_every_algorithm_every_family(algorithm, family):
    g = GRAPH_FAMILIES[family]()
    ref = sequential_components(g)
    result = engine.run(algorithm, g)
    assert result.labels.shape == (g.num_vertices,)
    assert equivalent_labelings(result.labels, ref)


@pytest.mark.parametrize("algorithm", engine.available_algorithms())
def test_labels_are_integer_arrays(algorithm, mixed_graph):
    result = engine.run(algorithm, mixed_graph)
    assert isinstance(result.labels, np.ndarray)
    assert np.issubdtype(result.labels.dtype, np.integer)


@pytest.mark.parametrize("algorithm", engine.available_algorithms())
def test_component_counts_agree(algorithm, mixed_graph, mixed_components):
    result = engine.run(algorithm, mixed_graph)
    assert result.num_components == len(mixed_components)
