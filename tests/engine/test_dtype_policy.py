"""Label-dtype narrowing policy: int32 must be a pure representation change.

The ``auto`` policy runs the parent array in ``int32`` whenever every
vertex id (including the BFS sentinel value ``n``) fits; the engine
widens labels back to :data:`~repro.constants.VERTEX_DTYPE` before
returning.  These tests pin the two guarantees that make the narrowing
safe to leave on by default: the widened labels are **bit-identical** to
a wide-policy run on every substrate, and the overflow guard falls back
to ``int64`` without ever allocating a too-narrow array.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import engine
from repro.constants import NARROW_LABEL_LIMIT, VERTEX_DTYPE
from repro.engine import make_backend, resolve_label_dtype
from repro.errors import ConfigurationError
from repro.generators import uniform_random_graph


class TestResolveLabelDtype:
    def test_auto_narrows_small_problems(self):
        assert resolve_label_dtype(10_000, "auto") == np.dtype(np.int32)

    def test_wide_policy_never_narrows(self):
        assert resolve_label_dtype(10, "wide") == np.dtype(VERTEX_DTYPE)

    def test_auto_overflow_fallback(self):
        # The sentinel value n itself must fit in int32, so anything past
        # the limit must come back wide. Pure dtype arithmetic: no
        # 2^31-element array is ever allocated.
        assert (
            resolve_label_dtype(NARROW_LABEL_LIMIT + 5, "auto")
            == np.dtype(VERTEX_DTYPE)
        )

    def test_boundary_is_inclusive(self):
        assert resolve_label_dtype(NARROW_LABEL_LIMIT, "auto") == np.dtype(
            np.int32
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="label dtype policy"):
            resolve_label_dtype(10, "narrow")

    def test_unknown_policy_rejected_at_backend_construction(self):
        with pytest.raises(ConfigurationError, match="label dtype policy"):
            make_backend("vectorized", label_dtype="int32")


def _run_both(kind: str, workers: int | None, algorithm: str, graph):
    """(auto labels, wide labels) for one backend/algorithm combination."""
    out = []
    for policy in ("auto", "wide"):
        backend = make_backend(kind, workers=workers, label_dtype=policy)
        try:
            out.append(engine.run(algorithm, graph, backend=backend).labels)
        finally:
            backend.close()
    return out


class TestBitIdentity:
    """auto (int32) runs must match wide (int64) runs bit for bit."""

    @pytest.mark.parametrize("kind", ["vectorized", "simulated"])
    @pytest.mark.parametrize("algorithm", ["afforest", "sv", "fastsv"])
    def test_single_process_substrates(self, kind, algorithm):
        g = uniform_random_graph(300, edge_factor=4, seed=11)
        auto, wide = _run_both(kind, 2, algorithm, g)
        assert auto.dtype == np.dtype(VERTEX_DTYPE)
        assert wide.dtype == np.dtype(VERTEX_DTYPE)
        assert np.array_equal(auto, wide)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_backend(self, workers):
        # The narrowed dtype travels to the workers through the shared-
        # memory vector spec; every worker count must agree bit for bit.
        g = uniform_random_graph(200, edge_factor=4, seed=3)
        auto, wide = _run_both("process", workers, "afforest", g)
        assert np.array_equal(auto, wide)

    def test_engine_always_returns_wide_labels(self, mixed_graph):
        for kind in ("vectorized", "simulated"):
            backend = make_backend(kind, workers=2, label_dtype="auto")
            try:
                result = engine.run("sv", mixed_graph, backend=backend)
            finally:
                backend.close()
            assert result.labels.dtype == np.dtype(VERTEX_DTYPE)

    def test_label_dtype_bits_gauge_recorded(self, mixed_graph):
        from repro.obs import Tracer

        tracer = Tracer(True)
        backend = make_backend("vectorized", label_dtype="auto")
        engine.run("sv", mixed_graph, backend=backend, trace=tracer)
        assert tracer.metrics.gauges_snapshot().get("label_dtype_bits") == 32

    def test_wide_policy_gauge_reports_64_bits(self, mixed_graph):
        from repro.obs import Tracer

        tracer = Tracer(True)
        backend = make_backend("vectorized", label_dtype="wide")
        engine.run("sv", mixed_graph, backend=backend, trace=tracer)
        assert tracer.metrics.gauges_snapshot().get("label_dtype_bits") == 64
