"""The sampling × finish plan space: composition, equivalence, selection.

PR 6's acceptance bar: every composed ``<sampling>+<finish>`` plan must
produce the exact component-minimum labeling on every backend (the same
bit-identical contract the monolithic pipelines carried), the canonical
algorithm names must keep routing to their historical compositions, and
the ``auto`` meta-algorithm must pick different plans for diameter-bound
versus skew-bound graphs and record the decision in the trace.
"""

import numpy as np
import pytest

from repro import engine
from repro.engine import Plan, PlanRegistry, ProcessParallelBackend, SimulatedBackend
from repro.engine.auto import (
    DIAMETER_THRESHOLD,
    FALLBACK_PLAN,
    SKEW_THRESHOLD,
    select_plan,
)
from repro.engine.finish import FINISHES
from repro.engine.sampling import SAMPLINGS
from repro.errors import ConfigurationError
from repro.generators.components import component_fraction_graph
from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph import from_edge_list
from repro.graph.csr import CSRGraph
from repro.parallel.machine import SimulatedMachine
from repro.unionfind import sequential_components

#: legacy registry name -> the composition it must keep resolving to.
CANONICAL = {
    "afforest": "kout+settle",
    "afforest-noskip": "kout+settle",
    "sv": "none+sv",
    "fastsv": "none+fastsv",
    "lp": "none+lp",
    "lp-datadriven": "none+lp-datadriven",
    "bfs": "none+bfs",
    "dobfs": "none+dobfs",
}


def _family_graphs() -> list[tuple[str, CSRGraph]]:
    return [
        ("powerlaw", barabasi_albert_graph(400, edges_per_vertex=4, seed=3)),
        ("lattice", grid_graph(16, 16)),
        ("multi-component", component_fraction_graph(300, 0.25, seed=11)),
        ("empty", from_edge_list([], num_vertices=0)),
        ("singleton", from_edge_list([], num_vertices=1)),
    ]


def _component_minima(graph: CSRGraph) -> np.ndarray:
    """Expected labeling: every vertex labeled by its component's minimum."""
    n = graph.num_vertices
    ref = np.asarray(sequential_components(graph))
    if n == 0:
        return ref
    minima = np.full(n, n, dtype=np.int64)
    np.minimum.at(minima, ref, np.arange(n, dtype=np.int64))
    return minima[ref]


@pytest.fixture(scope="module", params=[1, 2, 4])
def process_backend(request):
    """One persistent pool per worker count, shared across this module."""
    backend = ProcessParallelBackend(workers=request.param)
    yield backend
    backend.close()


class TestPlanRegistry:
    def test_full_matrix_size(self):
        names = engine.available_plans()
        composable = [f for f in FINISHES.values() if not f.whole_graph]
        whole = [f for f in FINISHES.values() if f.whole_graph]
        assert len(names) == len(SAMPLINGS) * len(composable) + len(whole)
        assert names == sorted(names)

    def test_plan_names_round_trip(self):
        for name in engine.available_plans():
            plan = engine.get_plan(name)
            assert isinstance(plan, Plan)
            assert plan.name == name
            assert plan.description.strip()

    def test_canonical_aliases_resolve(self):
        for alias, composed in CANONICAL.items():
            assert engine.CANONICAL_PLANS[alias] == composed
            assert engine.get_plan(alias).name == composed

    def test_unknown_sampling_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sampling"):
            engine.get_plan("magic+sv")

    def test_unknown_finish_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown finish"):
            engine.get_plan("kout+magic")

    def test_malformed_name_rejected(self):
        for bad in ("kout", "kout+sv+lp", "justaname"):
            with pytest.raises(ConfigurationError):
                engine.get_plan(bad)

    def test_whole_graph_finishes_compose_only_with_none(self):
        registry = PlanRegistry()
        for finish in ("bfs", "dobfs"):
            assert f"none+{finish}" in engine.available_plans()
            for sampling in SAMPLINGS:
                if sampling == "none":
                    continue
                with pytest.raises(ConfigurationError, match="whole-graph"):
                    registry.compose(sampling, finish)

    def test_unknown_parameter_rejected(self, mixed_graph):
        with pytest.raises(ConfigurationError, match="bogus"):
            engine.run_plan("kout+sv", mixed_graph, engine.VectorizedBackend(), bogus=1)

    def test_parameters_routed_to_phases(self, mixed_graph):
        result = engine.run_plan(
            "kout+settle",
            mixed_graph,
            engine.VectorizedBackend(),
            neighbor_rounds=3,
            skip_largest=False,
        )
        assert result.neighbor_rounds == 3
        assert result.edges_skipped == 0


class TestPlanEquivalence:
    @pytest.mark.parametrize(
        "family,graph", _family_graphs(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("plan", engine.available_plans())
    def test_vectorized_matches_component_minima(self, plan, family, graph):
        result = engine.run(graph, plan=plan)
        assert np.array_equal(result.labels, _component_minima(graph))
        assert result.plan == plan

    @pytest.mark.parametrize("plan", engine.available_plans())
    def test_simulated_matches_component_minima(self, plan):
        graph = component_fraction_graph(200, 0.3, seed=5)
        result = engine.run(
            graph, plan=plan, backend=SimulatedBackend(SimulatedMachine(3, seed=7))
        )
        assert np.array_equal(result.labels, _component_minima(graph))

    @pytest.mark.parametrize("plan", engine.available_plans())
    def test_process_matches_component_minima(self, plan, process_backend):
        graph = component_fraction_graph(200, 0.3, seed=5)
        result = engine.run(graph, plan=plan, backend=process_backend)
        assert np.array_equal(result.labels, _component_minima(graph))

    @pytest.mark.parametrize(
        "family,graph", _family_graphs(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("alias", sorted(CANONICAL))
    def test_canonical_names_bit_identical_to_compositions(
        self, alias, family, graph
    ):
        legacy = engine.run(alias, graph)
        composed = engine.run(
            graph,
            plan=CANONICAL[alias],
            **engine.get_algorithm(alias).defaults,
        )
        assert np.array_equal(legacy.labels, composed.labels)
        assert np.array_equal(legacy.labels, _component_minima(graph))
        assert legacy.plan == CANONICAL[alias]

    def test_skip_glue_records_largest_and_skips(self):
        graph = barabasi_albert_graph(400, edges_per_vertex=4, seed=3)
        result = engine.run(graph, plan="kout+sv")
        # Giant-component skipping is on by default after real sampling.
        assert result.largest_label is not None
        assert result.edges_skipped > 0
        noskip = engine.run(graph, plan="kout+sv", skip_largest=False)
        assert noskip.edges_skipped == 0
        assert np.array_equal(result.labels, noskip.labels)

    def test_afforest_edge_accounting_preserved(self):
        graph = barabasi_albert_graph(400, edges_per_vertex=4, seed=3)
        result = engine.run(graph, plan="kout+settle")
        assert (
            result.edges_sampled + result.edges_final + result.edges_skipped
            == graph.num_directed_edges
        )


class TestRunSugar:
    def test_plan_keyword_positional_graph(self, mixed_graph):
        result = engine.run(mixed_graph, plan="ldd+fastsv")
        assert result.algorithm == "ldd+fastsv"
        assert result.plan == "ldd+fastsv"

    def test_plan_object_accepted(self, mixed_graph):
        plan = engine.get_plan("bfs+lp")
        result = engine.run(graph=mixed_graph, plan=plan)
        assert result.plan == "bfs+lp"

    def test_plan_name_as_algorithm_name(self, mixed_graph):
        result = engine.run("subgraph+settle", mixed_graph)
        assert result.plan == "subgraph+settle"

    def test_name_and_plan_together_rejected(self, mixed_graph):
        with pytest.raises(ConfigurationError, match="not both"):
            engine.run("sv", mixed_graph, plan="kout+sv")


class TestAutoSelection:
    def test_lattice_picks_diameter_plan(self):
        plan, probes = select_plan(grid_graph(16, 16))
        assert plan == "none+fastsv"
        assert probes["diameter"] > DIAMETER_THRESHOLD

    def test_powerlaw_picks_sampling_plan(self):
        plan, probes = select_plan(
            barabasi_albert_graph(400, edges_per_vertex=4, seed=3)
        )
        assert plan == "kout+settle"
        assert probes["skew"] >= SKEW_THRESHOLD

    def test_trivial_graph_falls_back(self, empty_graph, isolated_vertices):
        for g in (empty_graph, isolated_vertices):
            plan, probes = select_plan(g)
            assert plan == FALLBACK_PLAN
            assert probes == {"trivial": True}

    def test_auto_runs_differ_by_topology(self):
        lattice = engine.run("auto", grid_graph(16, 16))
        powerlaw = engine.run(
            "auto", barabasi_albert_graph(400, edges_per_vertex=4, seed=3)
        )
        assert lattice.plan != powerlaw.plan
        assert lattice.algorithm == powerlaw.algorithm == "auto"
        for result, graph in (
            (lattice, grid_graph(16, 16)),
            (powerlaw, barabasi_albert_graph(400, edges_per_vertex=4, seed=3)),
        ):
            assert np.array_equal(result.labels, _component_minima(graph))

    def test_auto_records_decision_in_trace(self):
        result = engine.run("auto", grid_graph(16, 16), profile=True)
        assert result.trace is not None
        spans = {span.name: span for span, _ in result.trace.walk()}
        assert spans["auto"].attrs["plan"] == result.plan == "none+fastsv"
        assert spans["auto"].attrs["diameter"] > DIAMETER_THRESHOLD
        probe_kinds = {
            span.attrs["probe"]
            for span, _ in result.trace.walk()
            if span.name == "probe"
        }
        assert probe_kinds == {"degree", "diameter"}
        assert result.counters["probe_diameter"] > DIAMETER_THRESHOLD

    def test_auto_forwards_only_accepted_params(self):
        # kout+settle accepts seed; none+fastsv does not — auto must not
        # explode when the probe picks a plan that ignores a parameter.
        graph = grid_graph(16, 16)
        result = engine.run("auto", graph, seed=42)
        assert result.plan == "none+fastsv"
        assert np.array_equal(result.labels, _component_minima(graph))
