"""Tests for execution backends: one pipeline, two substrates."""

import numpy as np
import pytest

from repro import engine
from repro.analysis import equivalent_labelings
from repro.core import afforest
from repro.engine import SimulatedBackend, VectorizedBackend
from repro.errors import ConfigurationError
from repro.parallel.machine import SimulatedMachine
from repro.unionfind import sequential_components


class TestBackendEquivalence:
    """The same pipeline must agree across substrates (acceptance check)."""

    @pytest.mark.parametrize("algorithm", ["afforest", "afforest-noskip", "sv"])
    def test_vectorized_vs_simulated_partition(self, algorithm, mixed_graph):
        vec = engine.run(algorithm, mixed_graph)
        sim = engine.run(
            algorithm,
            mixed_graph,
            backend=SimulatedBackend(SimulatedMachine(3, seed=7)),
        )
        assert equivalent_labelings(vec.labels, sim.labels)
        assert vec.num_components == sim.num_components

    @pytest.mark.parametrize("algorithm", ["afforest", "sv"])
    def test_equivalence_on_random_graph(self, algorithm, random_graph_factory):
        g = random_graph_factory(60, 150, seed=3)
        ref = sequential_components(g)
        vec = engine.run(algorithm, g)
        sim = engine.run(
            algorithm, g, backend=SimulatedBackend(SimulatedMachine(4, seed=1))
        )
        assert equivalent_labelings(vec.labels, ref)
        assert equivalent_labelings(sim.labels, ref)

    def test_afforest_edge_accounting_matches_across_backends(self, mixed_graph):
        vec = engine.run("afforest", mixed_graph)
        sim = engine.run(
            "afforest",
            mixed_graph,
            backend=SimulatedBackend(SimulatedMachine(2, seed=5)),
        )
        m = mixed_graph.num_directed_edges
        assert vec.edges_sampled == sim.edges_sampled
        assert vec.edges_touched + vec.edges_skipped == m
        assert sim.edges_touched + sim.edges_skipped == m

    def test_sv_iteration_parity(self, two_cliques):
        vec = engine.run("sv", two_cliques)
        sim = engine.run(
            "sv",
            two_cliques,
            backend=SimulatedBackend(SimulatedMachine(2, seed=2)),
        )
        assert vec.iterations >= 1
        assert sim.iterations >= 1
        assert vec.edges_processed % two_cliques.num_directed_edges == 0


class TestBackendValidation:
    def test_vectorized_only_algorithm_rejects_simulated(self, mixed_graph):
        backend = SimulatedBackend(SimulatedMachine(2))
        with pytest.raises(ConfigurationError, match="does not support"):
            engine.run("sequential", mixed_graph, backend=backend)

    def test_error_names_supported_backends(self, mixed_graph):
        backend = SimulatedBackend(SimulatedMachine(2))
        with pytest.raises(ConfigurationError, match="vectorized"):
            engine.run("distributed", mixed_graph, backend=backend)


class TestProvenance:
    def test_result_stamped_with_run_context(self, mixed_graph):
        result = engine.run("afforest", mixed_graph, neighbor_rounds=1)
        assert result.algorithm == "afforest"
        assert result.backend == "vectorized"
        assert result.params["neighbor_rounds"] == 1

    def test_simulated_backend_stamped(self, mixed_graph):
        result = engine.run(
            "sv",
            mixed_graph,
            backend=SimulatedBackend(SimulatedMachine(2)),
        )
        assert result.backend == "simulated"
        assert result.run_stats is not None

    def test_noskip_defaults_recorded(self, mixed_graph):
        result = engine.run("afforest-noskip", mixed_graph)
        assert result.params["skip_largest"] is False
        assert result.largest_label is None


class TestProfiling:
    def test_afforest_phase_keys(self, mixed_graph):
        result = engine.run("afforest", mixed_graph, profile=True)
        assert set(result.phase_seconds) == {
            "L0", "C0", "L1", "C1", "F", "H-gather", "H", "C*", "total",
        }
        assert all(s >= 0 for s in result.phase_seconds.values())

    def test_sv_phase_keys(self, mixed_graph):
        result = engine.run("sv", mixed_graph, profile=True)
        labels = set(result.phase_seconds)
        expected = {"total"}
        for i in range(1, result.iterations + 1):
            expected.add(f"H{i}")
            # The converged final iteration skips its trailing compress
            # (the hook pass changed nothing, so π is already flat).
            if i < result.iterations or result.iterations == 1:
                expected.add(f"S{i}")
        assert labels == expected

    def test_total_phase_covers_run(self, mixed_graph):
        result = engine.run("afforest", mixed_graph, profile=True)
        phases = dict(result.phase_seconds)
        total = phases.pop("total")
        # Wall time includes every instrumented phase plus dispatch overhead.
        assert total >= max(phases.values())

    def test_uninstrumented_algorithm_gets_total_phase(self, mixed_graph):
        result = engine.run("sequential", mixed_graph, profile=True)
        assert set(result.phase_seconds) == {"total"}

    def test_no_profile_no_phases(self, mixed_graph):
        result = engine.run("afforest", mixed_graph)
        assert result.phase_seconds == {}

    def test_backend_left_disabled_after_profiled_run(self, mixed_graph):
        backend = VectorizedBackend()
        engine.run("afforest", mixed_graph, backend=backend, profile=True)
        assert not backend.instr.enabled
        second = engine.run("afforest", mixed_graph, backend=backend)
        assert second.phase_seconds == {}


class TestSimulatedPhaseStructure:
    """Engine runs on the simulated machine keep the Fig. 7 phase bands."""

    def test_afforest_simulated_phases(self, mixed_graph):
        machine = SimulatedMachine(3, seed=11)
        result = engine.run(
            "afforest",
            mixed_graph,
            backend=SimulatedBackend(machine),
            neighbor_rounds=2,
        )
        ref = sequential_components(mixed_graph)
        assert equivalent_labelings(result.labels, ref)
        phases = [p.label for p in machine.stats.phases]
        assert phases == ["I", "L0", "C0", "L1", "C1", "F", "H", "C*"]
        assert result.run_stats is machine.stats

    def test_sv_simulated_phases(self, mixed_graph):
        machine = SimulatedMachine(2, seed=4)
        result = engine.run(
            "sv", mixed_graph, backend=SimulatedBackend(machine)
        )
        ref = sequential_components(mixed_graph)
        assert equivalent_labelings(result.labels, ref)
        phases = [p.label for p in machine.stats.phases]
        assert phases[0] == "I"
        # Every iteration contributes a hook + compress phase pair except
        # the converged final one, whose trailing compress is skipped.
        skipped = 1 if result.iterations > 1 else 0
        assert len(phases) == 1 + 2 * result.iterations - skipped

    def test_simulated_runs_deterministic_per_seed(self, two_cliques):
        a = engine.run(
            "afforest",
            two_cliques,
            backend=SimulatedBackend(SimulatedMachine(2, seed=9)),
        )
        b = engine.run(
            "afforest",
            two_cliques,
            backend=SimulatedBackend(SimulatedMachine(2, seed=9)),
        )
        assert np.array_equal(a.labels, b.labels)
        assert a.edges_sampled == b.edges_sampled

    def test_vectorized_entry_point_still_returns_counters(self, mixed_graph):
        result = afforest(mixed_graph, profile=True)
        assert result.edges_touched + result.edges_skipped == \
            mixed_graph.num_directed_edges
        assert result.phase_seconds
