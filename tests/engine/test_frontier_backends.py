"""Cross-backend equivalence for the lifted frontier pipelines.

PR 5's acceptance bar: lp, lp-datadriven, bfs and dobfs are written once
against the frontier/label primitive family and must produce the same
labeling on every backend.  All four converge to the component-minimum
labeling (min-label scatter / min-seed BFS), so — like the tree-hooking
suite in ``test_process_backend.py`` — the assertion is bit-identical
labels, not just partition equivalence.
"""

import numpy as np
import pytest

from repro import engine
from repro.analysis import equivalent_labelings
from repro.bench.runner import run_algorithm
from repro.engine import (
    ProcessParallelBackend,
    SimulatedBackend,
    support_matrix_markdown,
)
from repro.generators.components import component_fraction_graph
from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph import from_edge_list
from repro.graph.csr import CSRGraph
from repro.parallel.machine import SimulatedMachine
from repro.unionfind import sequential_components

FRONTIER_ALGORITHMS = ("lp", "lp-datadriven", "bfs", "dobfs")


def _family_graphs() -> list[tuple[str, CSRGraph]]:
    return [
        ("powerlaw", barabasi_albert_graph(400, edges_per_vertex=4, seed=3)),
        ("lattice", grid_graph(16, 16)),
        ("multi-component", component_fraction_graph(300, 0.25, seed=11)),
        ("empty", from_edge_list([], num_vertices=0)),
        ("singleton", from_edge_list([], num_vertices=1)),
    ]


@pytest.fixture(scope="module", params=[1, 2, 4])
def process_backend(request):
    """One persistent pool per worker count, shared across this module."""
    backend = ProcessParallelBackend(workers=request.param)
    yield backend
    backend.close()


class TestFrontierBackendEquivalence:
    @pytest.mark.parametrize(
        "family,graph", _family_graphs(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_process_matches_vectorized(
        self, algorithm, family, graph, process_backend
    ):
        vec = engine.run(algorithm, graph)
        proc = engine.run(algorithm, graph, backend=process_backend)
        # Min-label convention: same labels, not just the same partition.
        assert np.array_equal(vec.labels, proc.labels)
        assert vec.num_components == proc.num_components

    @pytest.mark.parametrize(
        "family,graph", _family_graphs(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_simulated_matches_vectorized(self, algorithm, family, graph):
        vec = engine.run(algorithm, graph)
        sim = engine.run(
            algorithm,
            graph,
            backend=SimulatedBackend(SimulatedMachine(3, seed=7)),
        )
        assert np.array_equal(vec.labels, sim.labels)

    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_matches_union_find_oracle(
        self, algorithm, process_backend, random_graph_factory
    ):
        g = random_graph_factory(120, 300, seed=8)
        ref = sequential_components(g)
        result = engine.run(algorithm, g, backend=process_backend)
        assert equivalent_labelings(result.labels, ref)

    @pytest.mark.parametrize("algorithm", ("bfs", "dobfs"))
    def test_traversal_counters_match_across_backends(
        self, algorithm, random_graph_factory
    ):
        """Frontier structure pins the step counters on every substrate."""
        g = random_graph_factory(80, 200, seed=4)
        vec = engine.run(algorithm, g)
        sim = engine.run(
            algorithm, g, backend=SimulatedBackend(SimulatedMachine(2, seed=1))
        )
        assert vec.bfs_steps == sim.bfs_steps
        assert vec.top_down_steps == sim.top_down_steps
        assert vec.bottom_up_steps == sim.bottom_up_steps

    @pytest.mark.parametrize("algorithm", ("lp", "lp-datadriven"))
    def test_lp_simulated_converges_at_least_as_fast(
        self, algorithm, random_graph_factory
    ):
        """The simulated machine reads π live, so labels can chain through
        several hops inside one pass — convergence in no more passes than
        the synchronous vectorized sweep."""
        g = random_graph_factory(80, 200, seed=4)
        vec = engine.run(algorithm, g)
        sim = engine.run(
            algorithm, g, backend=SimulatedBackend(SimulatedMachine(2, seed=1))
        )
        assert 1 <= sim.iterations <= vec.iterations

    def test_repeated_frontier_runs_on_one_pool(self):
        """Pipeline switching reuses pool, frontier and mask segments."""
        g = barabasi_albert_graph(300, edges_per_vertex=3, seed=13)
        oracle = sequential_components(g)
        with ProcessParallelBackend(workers=2) as backend:
            for trial in range(8):
                algorithm = FRONTIER_ALGORITHMS[trial % len(FRONTIER_ALGORITHMS)]
                result = engine.run(algorithm, g, backend=backend)
                assert equivalent_labelings(result.labels, oracle), (
                    f"trial {trial} ({algorithm}) diverged from the oracle"
                )


class TestFrontierProfiling:
    def test_lp_datadriven_process_profile_has_frontier_phases(self):
        g = grid_graph(14, 14)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run(
                "lp-datadriven", g, backend=backend, profile=True
            )
        assert "P1" in result.phase_seconds
        assert "P*" in result.phase_seconds  # settle sweep
        assert "total" in result.phase_seconds

    def test_bfs_trace_has_frontier_attrs_and_worker_tracks(self):
        g = barabasi_albert_graph(300, edges_per_vertex=3, seed=2)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("bfs", g, backend=backend, profile=True)
        assert result.trace is not None
        t_spans = [s for s, _depth in result.trace.walk() if s.name == "T"]
        assert t_spans and all("frontier" in s.attrs for s in t_spans)
        assert result.trace.tracks()  # per-worker rows for the exporters

    def test_dobfs_emits_bottom_up_phases_on_giant(self):
        # A dense giant component triggers the bottom-up switch.
        g = barabasi_albert_graph(400, edges_per_vertex=8, seed=9)
        result = engine.run("dobfs", g, profile=True)
        assert result.bottom_up_steps > 0
        assert any(p.startswith("B") for p in result.phase_seconds)


class TestSupportMatrix:
    def test_frontier_algorithms_support_all_backends(self):
        for name in FRONTIER_ALGORITHMS:
            spec = engine.get_algorithm(name)
            for kind in ("vectorized", "simulated", "process"):
                assert spec.supports_backend(kind), (name, kind)

    def test_docs_matrix_in_sync_with_registry(self):
        import pathlib

        doc = pathlib.Path(__file__).resolve().parents[2] / "docs/algorithms.md"
        text = doc.read_text(encoding="utf-8")
        begin, end = "<!-- support-matrix:begin -->", "<!-- support-matrix:end -->"
        block = text.split(begin)[1].split(end)[0].strip()
        assert block == support_matrix_markdown().strip()


class TestBenchmarkRecordProvenance:
    def test_record_carries_backend_and_workers(self, mixed_graph):
        with ProcessParallelBackend(workers=2) as backend:
            rec = run_algorithm(
                mixed_graph, "lp", "mixed", repeats=2, backend=backend
            )
        assert rec.backend == "process"
        assert rec.workers == 2

    def test_record_defaults_to_vectorized(self, mixed_graph):
        rec = run_algorithm(mixed_graph, "bfs", "mixed", repeats=2)
        assert rec.backend == "vectorized"
        assert rec.workers is None
