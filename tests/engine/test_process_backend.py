"""Process-backend acceptance tests: OS processes over shared-memory π.

The acceptance bar from the issue: ``engine.run("afforest", g,
backend=ProcessParallelBackend(workers=4))`` must be equivalent to the
vectorized backend on every graph family.  Both backends use the
min-label convention, so correct runs are not merely partition-equivalent
but bit-identical — the stronger assertion is used wherever labels are
dense vertex ids.
"""

import numpy as np
import pytest

from repro import engine
from repro.analysis import equivalent_labelings
from repro.engine import ProcessParallelBackend
from repro.errors import ConfigurationError
from repro.generators.components import component_fraction_graph
from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph import from_edge_list
from repro.graph.csr import CSRGraph
from repro.unionfind import sequential_components

ALGORITHMS = ("afforest", "afforest-noskip", "sv")


def _family_graphs() -> list[tuple[str, CSRGraph]]:
    return [
        ("powerlaw", barabasi_albert_graph(800, edges_per_vertex=4, seed=3)),
        ("lattice", grid_graph(25, 25)),
        (
            "multi-component",
            component_fraction_graph(600, 0.25, seed=11),
        ),
        ("empty", from_edge_list([], num_vertices=0)),
        ("singleton", from_edge_list([], num_vertices=1)),
    ]


@pytest.fixture(scope="module", params=[1, 2, 4])
def process_backend(request):
    """One persistent pool per worker count, shared across this module."""
    backend = ProcessParallelBackend(workers=request.param)
    yield backend
    backend.close()


class TestProcessVectorizedEquivalence:
    @pytest.mark.parametrize(
        "family,graph", _family_graphs(), ids=lambda v: v if isinstance(v, str) else ""
    )
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_labels_match_vectorized(self, algorithm, family, graph, process_backend):
        vec = engine.run(algorithm, graph)
        proc = engine.run(algorithm, graph, backend=process_backend)
        # Min-label convention: same labels, not just the same partition.
        assert np.array_equal(vec.labels, proc.labels)
        assert vec.num_components == proc.num_components

    def test_matches_union_find_oracle(self, process_backend, random_graph_factory):
        g = random_graph_factory(120, 300, seed=8)
        ref = sequential_components(g)
        result = engine.run("afforest", g, backend=process_backend)
        assert equivalent_labelings(result.labels, ref)

    def test_labels_survive_backend_close(self):
        g = barabasi_albert_graph(200, edges_per_vertex=3, seed=5)
        backend = ProcessParallelBackend(workers=2)
        result = engine.run("afforest", g, backend=backend)
        backend.close()
        # Labels were detached from shared memory — still readable.
        assert int(result.labels.min()) >= 0

    def test_string_backend_spec(self):
        g = grid_graph(10, 10)
        result = engine.run("afforest", g, backend="process", workers=2)
        vec = engine.run("afforest", g)
        assert np.array_equal(result.labels, vec.labels)
        assert result.backend == "process"


class TestProcessBackendStress:
    def test_repeated_runs_are_stable(self):
        """Many runs on one pool: no segment leak, no label drift."""
        g = barabasi_albert_graph(400, edges_per_vertex=4, seed=13)
        oracle = sequential_components(g)
        with ProcessParallelBackend(workers=4) as backend:
            for trial in range(12):
                algorithm = ALGORITHMS[trial % len(ALGORITHMS)]
                result = engine.run(algorithm, g, backend=backend)
                assert equivalent_labelings(result.labels, oracle), (
                    f"trial {trial} ({algorithm}) diverged from the oracle"
                )

    def test_interleaved_graphs_on_one_pool(self):
        """Switching graphs reuses the pool but remaps shared mirrors."""
        g1 = grid_graph(12, 12)
        g2 = barabasi_albert_graph(300, edges_per_vertex=3, seed=1)
        with ProcessParallelBackend(workers=2) as backend:
            for g in (g1, g2, g1, g2):
                result = engine.run("afforest", g, backend=backend)
                vec = engine.run("afforest", g)
                assert np.array_equal(result.labels, vec.labels)


class TestProcessBackendConfiguration:
    def test_worker_default_positive(self):
        backend = ProcessParallelBackend()
        assert backend.workers >= 1
        backend.close()

    def test_profile_includes_settle_and_total(self):
        g = barabasi_albert_graph(300, edges_per_vertex=3, seed=2)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("afforest", g, backend=backend, profile=True)
        assert "total" in result.phase_seconds
        assert result.phase_seconds["total"] > 0
        # The settle loop always runs at least one verification sweep.
        assert "H-settle" in result.phase_seconds

    def test_unsupported_algorithm_rejected(self, mixed_graph):
        with ProcessParallelBackend(workers=1) as backend:
            with pytest.raises(ConfigurationError, match="does not support"):
                engine.run("sequential", mixed_graph, backend=backend)

    def test_result_stamped_with_backend_kind(self, mixed_graph):
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("sv", mixed_graph, backend=backend)
        assert result.backend == "process"
