"""Tests for the unified connectivity engine."""
