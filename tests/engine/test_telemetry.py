"""Engine-level telemetry: traces from real runs, worker spans, overhead.

The unit behaviour of the tracer/metrics/exporters lives in
``tests/obs/``; these tests check what the *engine* records — span trees
from actual pipeline runs, per-worker track rows from the process
backend, round attributes on iterative phases, and the guarantee that an
untraced run carries no telemetry residue and computes the same labeling.
"""

import json

import numpy as np
import pytest

from repro import engine
from repro.engine import ProcessParallelBackend
from repro.generators.powerlaw import barabasi_albert_graph
from repro.obs import load_trace, render_trace, write_trace


def canon(labels):
    _, inverse = np.unique(labels, return_inverse=True)
    return inverse


class TestProfiledRun:
    def test_trace_attached_and_consistent(self, mixed_graph):
        result = engine.run("afforest", mixed_graph, profile=True)
        trace = result.trace
        assert trace is not None
        assert trace.meta["algorithm"] == "afforest"
        assert trace.meta["backend"] == "vectorized"
        # phase_seconds is exactly the trace's flat view.
        assert result.phase_seconds == trace.phase_seconds()
        assert "total" in result.phase_seconds
        assert result.phase_seconds["total"] > 0

    def test_round_attrs_on_iterative_phases(self, mixed_graph):
        result = engine.run(
            "afforest", mixed_graph, profile=True, neighbor_rounds=2
        )
        spans = {
            (s.name, s.attrs.get("round"), s.attrs.get("final"))
            for s, _ in result.trace.walk()
            if s.track is None
        }
        assert ("L", 0, None) in spans
        assert ("L", 1, None) in spans
        assert ("C", 0, None) in spans
        assert ("C", None, True) in spans  # the final compress, label "C*"

    def test_sv_rounds_match_iterations(self, mixed_graph):
        result = engine.run("sv", mixed_graph, profile=True)
        hook_rounds = sorted(
            s.attrs["round"]
            for s, _ in result.trace.walk()
            if s.name == "H" and s.track is None
        )
        assert hook_rounds == list(range(1, result.iterations + 1))

    def test_caller_owned_tracer(self, mixed_graph):
        from repro.obs import Tracer

        tracer = Tracer(True)
        result = engine.run("afforest", mixed_graph, trace=tracer)
        assert result.trace is not None
        assert result.phase_seconds


class TestUntracedRun:
    """Satellite: disabled telemetry leaves no residue and changes nothing."""

    def test_no_telemetry_keys(self, mixed_graph):
        result = engine.run("afforest", mixed_graph)
        assert result.trace is None
        assert result.phase_seconds == {}
        assert result.counters == {}

    @pytest.mark.parametrize("algorithm", ["afforest", "sv"])
    def test_labeling_equivalence_across_families(self, algorithm):
        graphs = {
            "powerlaw": barabasi_albert_graph(400, edges_per_vertex=3, seed=3),
        }
        from repro.generators.lattice import grid_graph

        graphs["lattice"] = grid_graph(20, 20)
        for name, g in graphs.items():
            plain = engine.run(algorithm, g)
            traced = engine.run(algorithm, g, profile=True)
            assert np.array_equal(
                canon(plain.labels), canon(traced.labels)
            ), f"{algorithm} on {name}: tracing changed the labeling"


class TestWorkerTelemetry:
    def test_worker_tracks_and_skew(self):
        g = barabasi_albert_graph(3000, edges_per_vertex=4, seed=11)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("afforest", g, backend=backend, profile=True)
        trace = result.trace
        tracks = trace.tracks()
        assert 1 <= len(tracks) <= 2
        assert all(t.startswith("worker-") for t in tracks)
        # Every worker span carries its block id and nests under a phase.
        for span in trace.worker_spans():
            assert "block" in span.attrs
        skew = trace.worker_skew()
        assert skew, "process-backend trace should report per-phase skew"
        for stats in skew.values():
            assert stats["skew"] >= 1.0
            assert stats["max_s"] >= stats["mean_s"]
        # Worker time never double-counts into the flat phase view.
        assert result.phase_seconds == trace.phase_seconds()

    def test_untraced_process_run_records_nothing(self, mixed_graph):
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("afforest", mixed_graph, backend=backend)
        assert result.trace is None
        assert result.phase_seconds == {}


class TestChromeExportAcceptance:
    """The issue's acceptance criterion, as a test: a profiled afforest on
    the process backend exports a valid trace_event array with at least
    one span per pipeline phase and per-worker track rows, and the file
    round-trips through the ``repro trace`` renderer."""

    def test_export_round_trip(self, tmp_path):
        g = barabasi_albert_graph(3000, edges_per_vertex=4, seed=11)
        with ProcessParallelBackend(workers=2) as backend:
            result = engine.run("afforest", g, backend=backend, profile=True)
        path = tmp_path / "trace.json"
        write_trace(result.trace, path, format="chrome")

        events = json.loads(path.read_text())
        assert isinstance(events, list)
        complete = [e for e in events if e.get("ph") == "X"]
        labels = {e["name"] for e in complete if e.get("tid") == 0}
        for phase in ("total", "L0", "C0", "F", "H", "C*"):
            assert phase in labels, f"missing phase span {phase}"
        worker_rows = {e["tid"] for e in complete if e.get("tid", 0) != 0}
        assert worker_rows, "no per-worker track rows in the export"

        loaded = load_trace(path)
        text = render_trace(loaded)
        assert "afforest" in text
        assert "worker-0" in text
