"""Fig. 7 — π-array memory access patterns: SV vs Afforest (±skip).

The paper instruments a small urand graph and plots per-address access
heat and per-thread scatter for each phase.  Here the simulated machine
captures the same trace; the reported reduction gives, per phase, the
event count, the per-worker distribution, a sequentiality score, and the
fraction of accesses landing in the low-address (tree-root) region.

Paper shapes: Afforest's neighbour rounds stream π sequentially with high
root-region locality; SV's hook phases scatter uniformly and touch π far
more often in total; component search (F) adds a small structured probe.
"""

import numpy as np
import pytest

from repro import engine
from repro.analysis.memaccess import reduce_trace
from repro.bench.report import format_table
from repro.engine import SimulatedBackend
from repro.generators import uniform_random_graph
from repro.parallel import MemoryTrace, SimulatedMachine

from conftest import bench_size, register_report


def afforest_simulated(graph, machine, **kwargs):
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )


def sv_simulated(graph, machine):
    return engine.run("sv", graph, backend=SimulatedBackend(machine))

#: (log2 n, edge factor) per size tier — the simulated machine is a pure
#: Python interpreter loop, so Fig. 7 uses deliberately small graphs (the
#: paper does the same: |V| = 2**12 "to accommodate for large log-file
#: sizes"; access structure is scale-invariant for this topology).
_SIZES = {"tiny": (9, 6), "small": (10, 6), "default": (11, 7), "large": (12, 7)}
WORKERS = 8


def _run(name, runner, n):
    trace = MemoryTrace()
    machine = SimulatedMachine(WORKERS, trace=trace)
    runner(machine)
    return reduce_trace(trace.finalize(), n)


@pytest.fixture(scope="module")
def summaries(size):
    scale, ef = _SIZES[size]
    g = uniform_random_graph(2**scale, edge_factor=ef, seed=0)
    n = g.num_vertices
    out = {
        "sv": _run("sv", lambda m: sv_simulated(g, m), n),
        "afforest-noskip": _run(
            "afforest-noskip",
            lambda m: afforest_simulated(g, m, skip_largest=False),
            n,
        ),
        "afforest": _run(
            "afforest", lambda m: afforest_simulated(g, m), n
        ),
    }
    rows = []
    for name, summ in out.items():
        for ph in summ.phases:
            rows.append(
                [
                    name,
                    ph.label,
                    ph.events,
                    round(ph.sequentiality, 3),
                    round(ph.low_address_fraction, 3),
                    round(float(np.std(ph.per_worker)) / max(float(np.mean(ph.per_worker)), 1e-9), 3),
                ]
            )
    text = format_table(
        "Fig 7 — pi access pattern by phase (urand, simulated machine)",
        ["algorithm", "phase", "events", "sequentiality", "root_region_frac", "worker_cv"],
        rows,
    )
    from repro.bench.ascii import heatmap

    for name in ("sv", "afforest"):
        summ = out[name]
        mat = np.stack([ph.address_histogram for ph in summ.phases])
        labels = " ".join(ph.label for ph in summ.phases)
        text += (
            f"\n\n{name}: access density heat (rows = phases {labels}, "
            f"cols = pi address bins)\n" + heatmap(mat)
        )
    register_report("fig7 memaccess", text)
    return out, g


def test_fig7_shapes(summaries, benchmark):
    out, g = summaries
    sv, af, af_noskip = out["sv"], out["afforest"], out["afforest-noskip"]

    # SV touches pi more than Afforest in total (hook reprocesses all
    # edges every iteration).
    assert sv.total_events > af.total_events

    # Afforest's neighbour rounds are streaming (high sequentiality);
    # SV's first hook phase is scattered.
    assert af.phase("L0").sequentiality > sv.phase("H1").sequentiality

    # Root-region concentration grows through Afforest's rounds.
    assert af.phase("L1").low_address_fraction > af.phase("L0").low_address_fraction * 0.8
    assert af.phase("L1").low_address_fraction > 0.2

    # Component skipping shrinks the final link phase dramatically
    # relative to the no-skip configuration.
    assert af.phase("H").events < af_noskip.phase("H").events / 2

    # The find-largest probe is a small, bounded overhead.
    assert af.phase("F").events <= 1024

    # The init phase is perfectly sequential per worker.
    assert af.phase("I").sequentiality > 0.95

    benchmark(
        lambda: _run(
            "afforest", lambda m: afforest_simulated(g, m), g.num_vertices
        )
    )
