"""Fig. 8a (architecture axis) — consistency across machine profiles.

The paper's headline robustness claim: "the performance gain of Afforest
is consistent between three different shared-memory multi-core
architectures" (Broadwell, POWER8, Pascal), despite fundamentally
different core counts and memory systems.

Substitution S1 applies: each architecture becomes a cost-model profile
(worker count p, per-access cost τ, per-phase fork/join overhead β) fed
with per-phase work and imbalance measured on the simulated machine.
Profiles are loose caricatures — 20 wide cores, 160 SMT threads with
slower per-thread access, and a 1024-lane device with huge kernel-launch
overhead — chosen to *stress* the consistency claim, not to flatter it.
"""

import pytest

from repro import engine
from repro.bench.report import format_table
from repro.engine import SimulatedBackend
from repro.generators import load_dataset
from repro.parallel import SimulatedMachine

from conftest import register_report


def afforest_simulated(graph, machine, **kwargs):
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )


def sv_simulated(graph, machine):
    return engine.run("sv", graph, backend=SimulatedBackend(machine))

#: (workers, tau, beta) per architecture profile.
ARCHITECTURES = {
    "broadwell": (20, 1.0, 200.0),
    "power8": (160, 1.6, 400.0),
    "pascal": (1024, 2.5, 20000.0),
}

DATASETS = ("road", "twitter", "kron", "urand")
SIM_WORKERS = 8  # measurement machine; work/imbalance are ~p-independent

#: Per-phase work is Θ(n)+Θ(m) for a fixed topology class, so profiles
#: measured on the 2**10-vertex simulation extrapolate linearly to the
#: paper's 2**27-vertex graphs.  Without this step the per-phase overhead
#: β would dominate the wide architectures and the model would compare
#: phase *counts* instead of work — a tiny-graph artifact no real machine
#: at the paper's scale exhibits.
WORK_SCALE = float(2 ** 17)


def _phase_profile(runner):
    """(work, imbalance) per phase, measured on the simulated machine."""
    machine = SimulatedMachine(SIM_WORKERS, schedule="cyclic")
    runner(machine)
    return [(ph.work, ph.imbalance) for ph in machine.stats.phases]


def _modeled_time(profile, workers, tau, beta):
    total = 0.0
    for work, imbalance in profile:
        span = max(work * WORK_SCALE / workers * imbalance, 1.0)
        total += span * tau + beta
    return total


@pytest.fixture(scope="module")
def matrix(size):
    tier = "tiny"  # simulated runs are interpreter-bound; tiny suffices
    rows = []
    speedups = {arch: {} for arch in ARCHITECTURES}
    for dataset in DATASETS:
        g = load_dataset(dataset, tier)
        prof_af = _phase_profile(lambda m: afforest_simulated(g, m))
        prof_sv = _phase_profile(lambda m: sv_simulated(g, m))
        row = [dataset]
        for arch, (p, tau, beta) in ARCHITECTURES.items():
            t_af = _modeled_time(prof_af, p, tau, beta)
            t_sv = _modeled_time(prof_sv, p, tau, beta)
            s = t_sv / t_af
            speedups[arch][dataset] = s
            row.append(round(s, 2))
        rows.append(row)
    text = format_table(
        "Fig 8a (architectures) — modeled Afforest-over-SV speedup",
        ["dataset", *ARCHITECTURES],
        rows,
    )
    register_report("fig8a architectures", text)
    return speedups


def test_architecture_consistency(matrix, benchmark):
    # Afforest wins on every dataset under every architecture profile.
    for arch, per_dataset in matrix.items():
        for dataset, speedup in per_dataset.items():
            assert speedup > 1.0, (arch, dataset, speedup)

    # Consistency: for each dataset, the speedup varies by < 4x across
    # architectures (the paper's three bars per dataset sit in one band).
    for dataset in DATASETS:
        values = [matrix[arch][dataset] for arch in ARCHITECTURES]
        assert max(values) < 4.0 * min(values), (dataset, values)

    g = load_dataset("kron", "tiny")
    benchmark(lambda: _phase_profile(lambda m: afforest_simulated(g, m)))
