"""Table II — SV vs Afforest iterations and maximal tree depth.

Paper shape: SV runs several outer iterations per graph while Afforest's
*average local* link iterations stay ~1; Afforest's maximal tree depth is
comparable to SV's despite link's unbounded traversal.
"""

import pytest

from repro.analysis.workstats import afforest_workstats, sv_workstats
from repro.bench.report import format_table

from conftest import register_report

#: the instrumented scalar replay is Python-level per-edge work, so Table II
#: runs on a reduced subset of datasets at the session size tier.
DATASETS = ("road", "twitter", "web", "kron", "urand")


@pytest.fixture(scope="module")
def table(suite):
    stats = {}
    rows = []
    for name in DATASETS:
        g = suite[name]
        sv = sv_workstats(g)
        af = afforest_workstats(g)
        stats[name] = (sv, af)
        rows.append(
            [
                name,
                sv.iterations,
                sv.max_tree_depth,
                round(af.iterations, 3),
                af.max_iterations,
                af.max_tree_depth,
            ]
        )
    text = format_table(
        "Table II — iterations and tree depth (SV vs Afforest)",
        [
            "dataset",
            "sv_iters",
            "sv_max_depth",
            "aff_avg_local_iters",
            "aff_max_local_iters",
            "aff_max_depth",
        ],
        rows,
    )
    register_report("table2 workstats", text)
    return stats


def test_table2_shapes(table, suite, benchmark):
    for name, (sv, af) in table.items():
        # Afforest: average local iterations close to one (paper: "the
        # average number of local (per-edge) iterations in Afforest is
        # close to one").
        assert 1.0 <= af.iterations < 1.6, name
        # SV iterates multiple times over all edges.
        assert sv.iterations >= 2, name
        # Depths stay far below the worst-case O(|V|).
        assert af.max_tree_depth < suite[name].num_vertices // 10, name

    benchmark(lambda: sv_workstats(suite["urand"]))
