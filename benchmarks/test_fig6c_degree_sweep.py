"""Fig. 6c — runtime vs average degree on Kronecker graphs.

Paper shape: SV and LP runtime *grows* with average degree (they reprocess
every edge per iteration), DOBFS *shrinks* (denser graphs mean fewer BFS
levels and more bottom-up early exits), and Afforest stays ~flat (its work
is dominated by the O(|V|) sampled subgraph).

Both wall-clock medians and the architecture-independent work counters
(edges processed) are reported; the shape assertions run on the work
counters, which is what the paper's reasoning is actually about.
"""

import time

import pytest

import repro
from repro.baselines import dobfs_cc, label_propagation, shiloach_vishkin
from repro.bench.report import format_series
from repro.bench.runner import median_time
from repro.core import afforest
from repro.generators import kronecker_graph

from conftest import bench_size, register_report

DEGREES = [4, 8, 16, 32, 64]
_SCALES = {"tiny": 9, "small": 12, "default": 14, "large": 15}


@pytest.fixture(scope="module")
def sweep(size):
    scale = _SCALES[size]
    times: dict[str, list[float]] = {a: [] for a in ("sv", "lp", "dobfs", "afforest")}
    work: dict[str, list[int]] = {a: [] for a in ("sv", "lp", "dobfs", "afforest")}
    for d in DEGREES:
        g = kronecker_graph(scale, edge_factor=d / 2.0, seed=1)

        runners = {
            "sv": lambda: shiloach_vishkin(g),
            "lp": lambda: label_propagation(g),
            "dobfs": lambda: dobfs_cc(g),
            "afforest": lambda: afforest(g),
        }
        for name, fn in runners.items():
            med, _, _, _ = median_time(fn, repeats=5)
            times[name].append(round(med * 1000, 3))

        work["sv"].append(shiloach_vishkin(g).edges_processed)
        work["lp"].append(label_propagation(g).edges_processed)
        work["dobfs"].append(dobfs_cc(g).edges_processed)
        r = afforest(g)
        work["afforest"].append(r.edges_touched)

    text = format_series(
        f"Fig 6c — runtime (ms) vs average degree, kron scale {scale}",
        "avg_degree",
        DEGREES,
        times,
    )
    text += "\n\n" + format_series(
        "Fig 6c (work) — directed edges processed vs average degree",
        "avg_degree",
        DEGREES,
        work,
    )
    register_report("fig6c degree sweep", text)
    return times, work


def test_fig6c_shapes(sweep, size, benchmark):
    times, work = sweep

    # SV and LP work grows strongly with degree.
    assert work["sv"][-1] > 4 * work["sv"][0]
    assert work["lp"][-1] > 4 * work["lp"][0]

    # Afforest's work grows far slower than the degree itself (16x degree
    # increase -> paper shows a ~flat runtime curve).
    afforest_growth = work["afforest"][-1] / max(work["afforest"][0], 1)
    sv_growth = work["sv"][-1] / max(work["sv"][0], 1)
    assert afforest_growth < sv_growth / 2

    # DOBFS per-edge efficiency improves with density: its processed-edge
    # fraction of the graph shrinks as degree grows.
    scale = _SCALES[size]
    m_low = work["dobfs"][0] / (4 * 2**scale)
    m_high = work["dobfs"][-1] / (64 * 2**scale)
    assert m_high < m_low

    # Wall-clock: afforest fastest at the high-degree end.
    assert times["afforest"][-1] < times["sv"][-1]
    assert times["afforest"][-1] < times["lp"][-1]

    g = kronecker_graph(_SCALES[size], edge_factor=16, seed=1)
    benchmark(lambda: afforest(g))
