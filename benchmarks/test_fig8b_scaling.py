"""Fig. 8b — strong scaling on the web graph.

The paper measures Afforest, Afforest (no skip), SV and DOBFS-CC from 1 to
20 cores on the Intel machine, reporting 4.77–6.15x speedups at 20 cores.
The physical substrate here has one core, so scaling comes from the
simulated machine (Afforest/SV: per-worker span from real interleaved
execution) and the work/span projection (DOBFS: per-level work profile) —
the substitution DESIGN.md documents.

Shape assertions: every algorithm scales near-linearly at low worker
counts and saturates toward 20; Afforest-no-skip scales best (matching the
paper's 6.15x vs SV's 4.77x ordering); absolute modeled time of Afforest
stays below SV at every worker count.
"""

import numpy as np
import pytest

from repro import engine
from repro.baselines import dobfs_cc
from repro.bench.report import format_series
from repro.engine import SimulatedBackend
from repro.generators import web_graph
from repro.parallel import SimulatedMachine, WorkSpanModel

from conftest import register_report


def afforest_simulated(graph, machine, **kwargs):
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )


def sv_simulated(graph, machine):
    return engine.run("sv", graph, backend=SimulatedBackend(machine))

WORKER_COUNTS = [1, 2, 4, 8, 16, 20]
_SIZES = {"tiny": 2**9, "small": 2**10, "default": 2**11, "large": 2**12}

#: beta > 0 models per-phase fork/join overhead so curves saturate.
MODEL = WorkSpanModel(tau=1.0, beta=256.0)


@pytest.fixture(scope="module")
def scaling(size):
    g = web_graph(_SIZES[size], local_k=6, hub_edges_per_vertex=3, seed=0)
    times: dict[str, list[float]] = {}

    def simulate(name, runner):
        series = []
        for p in WORKER_COUNTS:
            # Cyclic scheduling spreads hub vertices across workers — the
            # analogue of GAP's OpenMP dynamic schedule; block partitioning
            # would serialise on whichever worker owns the hubs.
            machine = SimulatedMachine(p, schedule="cyclic")
            runner(machine)
            series.append(MODEL.time(machine.stats))
        times[name] = series

    simulate("afforest", lambda m: afforest_simulated(g, m))
    simulate(
        "afforest-noskip",
        lambda m: afforest_simulated(g, m, skip_largest=False),
    )
    simulate("sv", lambda m: sv_simulated(g, m))

    profile = dobfs_cc(g).step_edges
    times["dobfs"] = [
        MODEL.projected_time(profile, p) for p in WORKER_COUNTS
    ]

    speedups = {
        name: [round(series[0] / t, 2) for t in series]
        for name, series in times.items()
    }
    text = format_series(
        "Fig 8b — modeled strong scaling on web proxy (speedup over p=1)",
        "workers",
        WORKER_COUNTS,
        speedups,
    )
    text += "\n\n" + format_series(
        "Fig 8b (raw) — modeled time units",
        "workers",
        WORKER_COUNTS,
        {k: [round(x, 0) for x in v] for k, v in times.items()},
    )
    from repro.bench.ascii import line_plot

    text += "\n\n" + line_plot(
        WORKER_COUNTS, speedups, width=56, height=12, x_label="workers"
    )
    register_report("fig8b scaling", text)
    return g, times, speedups


def test_fig8b_shapes(scaling, benchmark):
    g, times, speedups = scaling

    for name, series in speedups.items():
        # Monotone non-decreasing speedup up to 16 workers (within noise).
        assert series[3] > series[1] >= series[0] == 1.0, name
        # Meaningful scaling by 20 workers (paper: 4.77x-6.15x).
        assert series[-1] > 2.5, (name, series)
        # Saturation: far from perfectly linear at 20 workers.
        assert series[-1] < 18.0, name

    # All algorithms land in the same scaling band ("all algorithms
    # attain similar speedups over multiple cores") — within ~3x of each
    # other at 20 workers.
    at20 = [s[-1] for s in speedups.values()]
    assert max(at20) < 3.5 * min(at20), speedups

    # Afforest is absolutely faster than SV at every worker count.
    for t_af, t_sv in zip(times["afforest"], times["sv"]):
        assert t_af < t_sv

    benchmark(
        lambda: afforest_simulated(g, SimulatedMachine(8))
    )
