"""Ablation A5 — first-k vs random neighbour sampling.

Sec. VI-A: "For random neighbor sampling, we use the graph file structure
by choosing the first appearing neighbors of each vertex.  This choice is
beneficial since the processed edges can be easily tracked to avoid
reprocessing."  This ablation quantifies both halves of that sentence:
convergence quality of the two modes is comparable, but the random mode's
untrackable slots force the final phase to reprocess every edge.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.runner import median_time
from repro.core import afforest

from conftest import register_report

DATASETS = ("web", "kron", "urand")


@pytest.fixture(scope="module")
def table(suite):
    rows = []
    data = {}
    for name in DATASETS:
        g = suite[name]
        first = afforest(g, sampling="first")
        rand = afforest(g, sampling="random")
        t_first, _, _, _ = median_time(
            lambda: afforest(g, sampling="first"), repeats=5
        )
        t_rand, _, _, _ = median_time(
            lambda: afforest(g, sampling="random"), repeats=5
        )
        data[name] = (first, rand)
        rows.append(
            [
                name,
                first.edges_touched,
                rand.edges_touched,
                round(rand.edges_touched / max(first.edges_touched, 1), 2),
                round(t_first * 1000, 3),
                round(t_rand * 1000, 3),
            ]
        )
    text = format_table(
        "Ablation A5 — first-k vs random neighbour sampling",
        ["dataset", "first_touched", "random_touched", "ratio", "first_ms", "random_ms"],
        rows,
    )
    register_report("ablation a5 sampling mode", text)
    return data


def test_ablation_sampling_mode(table, suite, benchmark):
    for name, (first, rand) in table.items():
        # Both exact (same component count).
        assert first.num_components == rand.num_components, name
        # The trackability advantage: first-k never reprocesses, so on
        # giant-component graphs it touches at most as many slots.
        assert first.edges_touched <= rand.edges_touched, name
        # Random sampling still benefits from skipping (coverage is
        # comparable), so it beats the no-sampling baseline.
        noskip = afforest(suite[name], neighbor_rounds=0, skip_largest=False)
        assert rand.edges_touched <= noskip.edges_touched * 1.05, name

    benchmark(lambda: afforest(suite["web"], sampling="random"))
