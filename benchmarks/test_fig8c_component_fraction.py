"""Fig. 8c — effect of component size on each algorithm.

urand graphs with average component fraction f: the graph has ~floor(1/f)
components of ~|V|*f vertices.  Paper shapes:

- SV and Afforest are unaffected by component structure;
- BFS-CC serialises components, so its runtime grows as f -> 0;
- DOBFS is fastest with 1–10 giant components (bottom-up heaven) but
  degrades like BFS for many small components;
- Afforest's skip heuristic makes it competitive with DOBFS at f -> 1.
"""

import pytest

import repro
from repro.bench.report import format_series
from repro.bench.runner import median_time
from repro.generators import component_fraction_graph

from conftest import register_report

FRACTIONS = [0.001, 0.01, 0.1, 0.5, 1.0]
_SIZES = {"tiny": 2**10, "small": 2**13, "default": 2**15, "large": 2**16}
ALGOS = ["afforest", "sv", "bfs", "dobfs"]


@pytest.fixture(scope="module")
def sweep(size):
    n = _SIZES[size]
    fractions = [f for f in FRACTIONS if f * n >= 8]
    times = {a: [] for a in ALGOS}
    for f in fractions:
        g = component_fraction_graph(n, f, edge_factor=8, seed=0)
        for algo in ALGOS:
            med, _, _, _ = median_time(
                lambda: repro.connected_components(g, algo), repeats=9
            )
            times[algo].append(round(med * 1000, 3))
    text = format_series(
        f"Fig 8c — runtime (ms) vs component fraction f (n={n})",
        "f",
        fractions,
        times,
    )
    register_report("fig8c component fraction", text)
    return fractions, times


def test_fig8c_shapes(sweep, size, benchmark):
    fractions, times = sweep
    lo, hi = 0, len(fractions) - 1  # smallest f (many comps) vs f=1

    # BFS serialises across components: many-small-components is much
    # slower than one giant component.
    assert times["bfs"][lo] > 2.0 * times["bfs"][hi]

    # DOBFS degrades toward small f as well.
    assert times["dobfs"][lo] > times["dobfs"][hi]

    # Tree-hooking algorithms are insensitive to f (the paper plots
    # essentially flat lines).  The paper's smallest component is still
    # ~1e3 vertices (f=1e-5 of 2**27); at reduced n the extreme-f points
    # degenerate into micro-cliques with different convergence behaviour,
    # so flatness is asserted over the faithful regime f*n >= 256.
    n = _SIZES[size]
    faithful = [i for i, f in enumerate(fractions) if f * n >= 256]
    for algo in ("sv", "afforest"):
        vals = [times[algo][i] for i in faithful]
        assert max(vals) < 3.5 * min(vals), (algo, vals)

    # At f=1, Afforest with skipping is competitive with DOBFS.
    assert times["afforest"][hi] < 2.0 * times["dobfs"][hi]

    # Afforest beats BFS at every point of the sweep.
    for t_af, t_bfs in zip(times["afforest"], times["bfs"]):
        assert t_af < t_bfs

    n = _SIZES[size]
    g = component_fraction_graph(n, 0.1, edge_factor=8, seed=0)
    benchmark(lambda: repro.connected_components(g, "afforest"))
