"""Ablation A1 — neighbor_rounds sweep (the paper fixes it to 2, Sec. VI-A).

Sweeping rounds 0..6 on the web and kron proxies shows why: round 0 means
no sampling (skip decided on singletons — useless), rounds 1–2 capture
most linkage at O(|V|) cost, and further rounds add sampled work without
reducing the final phase much.
"""

import pytest

from repro.bench.report import format_series
from repro.bench.runner import median_time
from repro.core import afforest

from conftest import register_report

ROUNDS = [0, 1, 2, 3, 4, 6]


@pytest.fixture(scope="module")
def sweep(suite):
    out = {}
    for dataset in ("web", "kron"):
        g = suite[dataset]
        touched = []
        runtime = []
        for r in ROUNDS:
            res = afforest(g, neighbor_rounds=r)
            touched.append(res.edges_touched)
            med, _, _, _ = median_time(
                lambda: afforest(g, neighbor_rounds=r), repeats=5
            )
            runtime.append(round(med * 1000, 3))
        out[dataset] = {"edges_touched": touched, "runtime_ms": runtime}
    text = ""
    for dataset, series in out.items():
        text += format_series(
            f"Ablation A1 — neighbor_rounds sweep ({dataset})",
            "rounds",
            ROUNDS,
            series,
        )
        text += "\n\n"
    register_report("ablation a1 neighbor rounds", text.rstrip())
    return out


def test_ablation_rounds_shape(sweep, suite, benchmark):
    for dataset, series in sweep.items():
        touched = series["edges_touched"]
        # Any sampling slashes the touched-edge count relative to rounds=0
        # (where the skip heuristic has nothing to work with).
        assert touched[1] < 0.7 * touched[0], dataset
        assert touched[2] < 0.7 * touched[0], dataset
        # Extra rounds past 2 only add sampled work: the curve through
        # rounds 2..6 grows by ~n per round, it never collapses further.
        assert touched[2] <= 4 * min(touched), dataset
        assert series["runtime_ms"][2] < series["runtime_ms"][0], dataset

    benchmark(lambda: afforest(suite["web"], neighbor_rounds=2))
