"""Ablation A3 — CSR vs edge-list data layout for SV.

Proxy for the paper's GPU discussion (Sec. VI-B): Soman et al. implement
SV over edge lists, trading memory volume for uniform per-edge work, while
the paper's CSR-based variants win when vertex degrees are narrow (road,
osm-eur).  Here the edge-list variant receives pre-flattened arrays while
the CSR variant pays the expansion, so the report quantifies the layout
overhead; both must be exactly equivalent.
"""

import numpy as np
import pytest

from repro.baselines import shiloach_vishkin, shiloach_vishkin_edgelist
from repro.bench.report import format_table
from repro.bench.runner import median_time
from repro.generators.datasets import GPU_SUITE

from conftest import bench_size, register_report


@pytest.fixture(scope="module")
def table(size):
    # The layout comparison is the paper's *GPU* experiment, so it runs on
    # the GPU dataset suite (kron-gpu/urand-gpu replace the CPU-sized
    # kron/urand, as in the paper).
    from repro.bench.datasets import evaluation_suite

    gpu_suite = evaluation_suite(size, names=GPU_SUITE)
    rows = []
    data = {}
    for name, g in gpu_suite.items():
        src, dst = g.edge_array()
        csr_med, _, _, _ = median_time(lambda: shiloach_vishkin(g), repeats=9)
        el_med, _, _, _ = median_time(
            lambda: shiloach_vishkin_edgelist(src, dst, g.num_vertices),
            repeats=9,
        )
        a = shiloach_vishkin(g)
        b = shiloach_vishkin_edgelist(src, dst, g.num_vertices)
        data[name] = (a, b, csr_med, el_med)
        rows.append(
            [
                name,
                round(csr_med * 1000, 3),
                round(el_med * 1000, 3),
                round(csr_med / el_med, 2),
                a.iterations,
            ]
        )
    text = format_table(
        "Ablation A3 — SV layout: CSR (with expansion) vs edge list",
        ["dataset", "csr_ms", "edgelist_ms", "csr/el", "iterations"],
        rows,
    )
    register_report("ablation a3 layout", text)
    return data


def test_ablation_layout(table, suite, benchmark):
    for name, (a, b, csr_med, el_med) in table.items():
        # Exact equivalence regardless of layout.
        assert np.array_equal(a.labels, b.labels), name
        assert a.iterations == b.iterations, name
        # The edge-list variant skips the CSR source expansion, so it can
        # only be faster or equal — up to scheduler noise on a shared
        # single-core box, hence the generous sanity margin.
        assert el_med <= csr_med * 1.6, name

    g = suite["kron"]
    src, dst = g.edge_array()
    benchmark(
        lambda: shiloach_vishkin_edgelist(src, dst, g.num_vertices)
    )
