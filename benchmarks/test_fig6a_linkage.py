"""Fig. 6a — Linkage vs %% edges processed for four partitioning strategies.

Paper shape (measured on the web graph, its slowest-converging dataset):
neighbour sampling converges near-optimally (~83%% linkage after two
rounds), uniform edge sampling is mid-field, and adjacency-matrix row
sampling is slowest.
"""

import pytest

from repro.analysis.convergence import convergence_curve
from repro.bench.report import format_series
from repro.core.strategies import STRATEGIES

from conftest import register_report

CHECKPOINTS = [5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0]


@pytest.fixture(scope="module")
def curves(suite):
    g = suite["web"]
    out = {}
    for name, strategy in STRATEGIES.items():
        out[name] = convergence_curve(
            g, strategy(g), strategy_name=name, resolution=40
        )
    series = {
        name: [round(c.linkage_at(p), 4) for p in CHECKPOINTS]
        for name, c in out.items()
    }
    text = format_series(
        "Fig 6a — linkage vs % edges processed (web proxy)",
        "%edges",
        CHECKPOINTS,
        series,
    )
    from repro.bench.ascii import line_plot

    text += "\n\n" + line_plot(
        CHECKPOINTS, series, width=56, height=12, x_label="%edges"
    )
    register_report("fig6a linkage", text)
    return out


def test_fig6a_strategy_ordering(curves, suite, benchmark):
    g = suite["web"]
    two_rounds_pct = 100.0 * 2 * g.num_vertices / g.num_directed_edges

    # Neighbour sampling dominates uniform and row sampling early on.
    for pct in (10.0, 20.0):
        assert curves["neighbor"].linkage_at(pct) > curves["uniform"].linkage_at(pct)
        assert curves["neighbor"].linkage_at(pct) > curves["row"].linkage_at(pct)

    # Paper: ~83% linkage after two neighbour rounds.
    assert curves["neighbor"].linkage_at(two_rounds_pct) > 0.75

    # The spanning-forest subgraph is the optimum; neighbour sampling
    # approaches it.
    assert (
        curves["optimal"].linkage_at(10.0)
        >= curves["neighbor"].linkage_at(10.0) - 0.02
    )

    # Everything converges to exactly 1.0 after all edges.
    for c in curves.values():
        assert c.linkage[-1] == pytest.approx(1.0)

    benchmark(
        lambda: convergence_curve(
            g, STRATEGIES["neighbor"](g), resolution=10
        )
    )
