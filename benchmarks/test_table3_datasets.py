"""Table III — evaluated graphs and their statistics.

Paper columns: dataset, |V|, |E|, avg/max degree, components, largest
component fraction, (pseudo-)diameter.  Our rows are the scaled proxies;
the *class signature* of each row must match the original: road/osm-eur
low-degree high-diameter single-giant, twitter/web heavy-tailed,
kron fragmented with a giant, urand uniform single-component.
"""

import numpy as np
import pytest

from repro.bench.report import format_table
from repro.graph.properties import summarize

from conftest import register_report


@pytest.fixture(scope="module")
def table(suite):
    rows = []
    props = {}
    for name, graph in suite.items():
        p = summarize(graph, name)
        props[name] = p
        rows.append(
            [
                name,
                p.num_vertices,
                p.num_edges,
                round(p.degree.mean, 2),
                p.degree.max,
                p.components.num_components,
                round(p.components.largest_fraction, 3),
                p.pseudo_diameter,
            ]
        )
    text = format_table(
        "Table III — dataset statistics (scaled proxies)",
        ["dataset", "|V|", "|E|", "deg_avg", "deg_max", "C", "cmax_frac", "diam~"],
        rows,
    )
    register_report("table3 datasets", text)
    return props


def test_table3_statistics(table, suite, benchmark):
    road, urand = table["road"], table["urand"]
    twitter, kron = table["twitter"], table["kron"]

    # Class signatures (Table III shapes).
    assert road.degree.mean < 5 and road.pseudo_diameter > 50
    assert urand.components.num_components == 1
    assert twitter.degree.max > 20 * twitter.degree.mean
    assert kron.components.num_components > 100
    assert kron.components.largest_fraction > 0.5

    benchmark(lambda: summarize(suite["road"], "road"))
