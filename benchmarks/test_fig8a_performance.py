"""Fig. 8a — cross-dataset performance of all algorithms.

The paper reports median runtimes of Afforest vs GAP's SV/BFS/DOBFS and a
custom LP across six datasets, with speedups of 2.49–67.24x over SV.
Here every algorithm runs on every proxy dataset; the report shows median
milliseconds and the speedup of Afforest over each baseline.

Shape assertions (the paper's headline claims):
- Afforest beats SV on every dataset (>= ~2.5x in the paper; >= 1.5x here
  to absorb substrate noise);
- Afforest wins or ties everywhere except possibly urand-vs-DOBFS (the one
  loss the paper reports, "due to the low-diameter and single component");
- LP collapses on the high-diameter road proxies.
"""

import pytest

from repro.bench.report import format_table
from repro.bench.runner import run_algorithm

from conftest import register_report

ALGORITHMS = ["afforest", "afforest-noskip", "sv", "lp", "bfs", "dobfs"]

#: minimum required Afforest-over-SV speedup per size tier.  The paper
#: reports >= 2.49x on 2**27-vertex graphs; at reduced scale the fixed
#: per-call overheads of the NumPy substrate compress ratios, so the gate
#: scales with the tier.
_MIN_SPEEDUP = {"tiny": 1.05, "small": 1.2, "default": 1.8, "large": 2.0}


@pytest.fixture(scope="module")
def records(suite):
    out = {}
    rows = []
    for name, graph in suite.items():
        recs = {
            algo: run_algorithm(graph, algo, name, repeats=7)
            for algo in ALGORITHMS
        }
        out[name] = recs
        af = recs["afforest"]
        rows.append(
            [
                name,
                *(round(recs[a].median_seconds * 1000, 2) for a in ALGORITHMS),
                round(af.speedup_over(recs["sv"]), 2),
                round(af.speedup_over(recs["dobfs"]), 2),
            ]
        )
    text = format_table(
        "Fig 8a — median runtime (ms) per dataset and algorithm",
        ["dataset", *ALGORITHMS, "af/sv", "af/dobfs"],
        rows,
    )
    register_report("fig8a performance", text)
    return out


def test_fig8a_afforest_beats_sv_everywhere(records, benchmark, suite, size):
    from repro.baselines import shiloach_vishkin
    from repro.core import afforest

    gate = _MIN_SPEEDUP[size]
    for name, recs in records.items():
        speedup = recs["afforest"].speedup_over(recs["sv"])
        if name in ("road", "osm-eur") and size in ("tiny", "small"):
            # Sub-millisecond runs on the sparse road proxies are noise-
            # dominated at reduced scale; require no regression here and
            # let the work counters below carry the claim.
            assert speedup > 0.6, f"{name}: only {speedup:.2f}x over SV"
        else:
            assert speedup > gate, f"{name}: only {speedup:.2f}x over SV"

    # The architecture-independent form of the claim: Afforest examines
    # strictly fewer edge slots than SV on every dataset (deterministic).
    for name, graph in suite.items():
        af_work = afforest(graph).edges_touched
        sv_work = shiloach_vishkin(graph).edges_processed
        assert af_work < sv_work, (name, af_work, sv_work)

    benchmark(
        lambda: run_algorithm(suite["kron"], "afforest", "kron", repeats=3)
    )


def test_fig8a_skip_helps_on_giant_graphs(records, benchmark, suite):
    # Skipping wins over no-skip wherever a giant component exists.
    for name in ("urand", "twitter", "web"):
        recs = records[name]
        assert (
            recs["afforest"].median_seconds
            <= recs["afforest-noskip"].median_seconds * 1.1
        ), name

    benchmark(
        lambda: run_algorithm(suite["urand"], "afforest-noskip", "urand", repeats=3)
    )


def test_fig8a_lp_degrades_on_high_diameter(records, benchmark, suite):
    road = records["road"]
    assert road["lp"].median_seconds > 3 * road["afforest"].median_seconds

    benchmark(lambda: run_algorithm(suite["road"], "lp", "road", repeats=3))


def test_fig8a_geometric_mean_speedup(records, benchmark, suite):
    """Paper: geometric-mean speedup of 4.99x over all architectures
    (vs the state of the art).  We assert a solid geomean over SV."""
    import math

    speedups = [
        recs["afforest"].speedup_over(recs["sv"]) for recs in records.values()
    ]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    assert geomean > 2.0, f"geomean speedup only {geomean:.2f}x"

    benchmark(lambda: run_algorithm(suite["web"], "sv", "web", repeats=3))
