"""Ablation A2 — large-component skipping and the probe budget.

Quantifies Theorem 3's payoff (edge slots never touched) per dataset and
sweeps ``sample_size`` of the probabilistic component search, checking the
probe's reliability claim: a constant number of probes suffices to find
the giant component, and a wrong guess costs only work, never correctness.
"""

import numpy as np
import pytest

from repro.analysis.verify import is_valid_labeling
from repro.bench.report import format_table
from repro.core import afforest
from repro.core.sampling import exact_largest_label
from repro.core.compress import compress_all
from repro.core.link import link_batch
from repro.constants import VERTEX_DTYPE

from conftest import register_report

SAMPLE_SIZES = [4, 16, 64, 256, 1024]


@pytest.fixture(scope="module")
def table(suite):
    rows = []
    data = {}
    for name, g in suite.items():
        res = afforest(g, skip_largest=True)
        noskip = afforest(g, skip_largest=False)
        frac = res.edges_skipped / max(g.num_directed_edges, 1)
        data[name] = (res, noskip, frac)
        rows.append(
            [
                name,
                res.edges_skipped,
                round(frac, 3),
                res.edges_final,
                noskip.edges_final,
            ]
        )
    text = format_table(
        "Ablation A2 — edge slots skipped by Theorem 3",
        ["dataset", "skipped", "skip_frac_of_|E2|", "final_with_skip", "final_no_skip"],
        rows,
    )
    register_report("ablation a2 skip", text)
    return data


def _pi_after_rounds(g, rounds=2):
    pi = np.arange(g.num_vertices, dtype=VERTEX_DTYPE)
    deg = np.asarray(g.degree())
    indptr, indices = g.indptr, g.indices
    for r in range(rounds):
        verts = np.nonzero(deg > r)[0].astype(VERTEX_DTYPE)
        link_batch(pi, verts, indices[indptr[verts] + r])
        compress_all(pi)
    return pi


def test_ablation_skip_payoff(table, suite, benchmark):
    # Giant-component datasets skip the bulk of their final phase.
    for name in ("urand", "twitter", "web"):
        _, _, frac = table[name]
        assert frac > 0.5, (name, frac)

    # Correctness is independent of the skip decision everywhere.
    for name, g in suite.items():
        res, _, _ = table[name]
        assert is_valid_labeling(g, res.labels), name

    benchmark(lambda: afforest(suite["urand"], skip_largest=True))


def test_ablation_probe_budget(suite, benchmark):
    """Probe reliability: across seeds and sample sizes, the sampled mode
    matches the exact giant label on giant-component graphs once the
    budget reaches a few dozen probes."""
    from repro.core.sampling import most_frequent_element

    g = suite["urand"]
    pi = _pi_after_rounds(g)
    exact = exact_largest_label(pi)
    rows = []
    for k in SAMPLE_SIZES:
        hits = sum(
            most_frequent_element(pi, k, rng=np.random.default_rng(seed)) == exact
            for seed in range(20)
        )
        rows.append([k, f"{hits}/20"])
    text = format_table(
        "Ablation A2b — probe budget vs giant-label hit rate (urand)",
        ["sample_size", "hits"],
        rows,
    )
    register_report("ablation a2b probe budget", text)

    # 64+ probes: essentially always right on a >90% giant component.
    assert all(
        most_frequent_element(pi, 64, rng=np.random.default_rng(s)) == exact
        for s in range(20)
    )

    # Tiny budgets may misidentify, but results stay exact.
    for seed in range(5):
        res = afforest(g, sample_size=1, seed=seed)
        assert is_valid_labeling(g, res.labels)

    benchmark(lambda: most_frequent_element(pi, 1024))
