"""Ablation A4 — loop schedule vs load balance on skewed graphs.

The paper's GPU implementation leans on Groute's "intra thread-block load
balancing" because per-vertex work is wildly skewed on power-law graphs;
the CPU version inherits OpenMP scheduling.  This ablation quantifies the
effect in the simulator: Afforest's final link phase under block, cyclic
and chunked partitioning on the heavy-tailed twitter proxy.

Shape: block partitioning concentrates hub vertices on few workers
(imbalance ≫ 1, span ≈ serial); cyclic/chunk spread them (imbalance near
1) — which is exactly why the neighbour rounds, whose per-vertex work is
constant, scale so well regardless of schedule.
"""

import pytest

from repro import engine
from repro.bench.report import format_table
from repro.engine import SimulatedBackend
from repro.generators import chung_lu_graph
from repro.parallel import SimulatedMachine

from conftest import register_report


def afforest_simulated(graph, machine, **kwargs):
    return engine.run(
        "afforest", graph, backend=SimulatedBackend(machine), **kwargs
    )

SCHEDULES = ("block", "cyclic", "chunk", "dynamic")
WORKERS = 8
_SIZES = {"tiny": 2**9, "small": 2**10, "default": 2**11, "large": 2**12}


@pytest.fixture(scope="module")
def profiles(size):
    import numpy as np

    from repro.graph.coo import EdgeList
    from repro.graph.builder import build_csr

    g0 = chung_lu_graph(
        _SIZES[size], exponent=2.1, mean_degree=16.0, seed=0
    )
    # Relabel so high-degree vertices occupy a contiguous id range, the
    # id-degree locality real crawl datasets exhibit (hubs are crawled
    # early).  This is the regime where static block partitioning
    # concentrates hub work on few workers.
    deg = np.asarray(g0.degree())
    order = np.argsort(-deg, kind="stable")
    mapping = np.empty_like(order)
    mapping[order] = np.arange(order.shape[0])
    src, dst = g0.undirected_edge_array()
    g = build_csr(
        EdgeList(g0.num_vertices, mapping[src], mapping[dst])
    )
    out = {}
    rows = []
    for schedule in SCHEDULES:
        machine = SimulatedMachine(
            WORKERS, schedule=schedule, chunk_size=max(_SIZES[size] // 64, 1)
        )
        afforest_simulated(g, machine, skip_largest=False)
        merged = machine.stats.merged_by_label()
        final = merged["H"]
        out[schedule] = machine.stats
        rows.append(
            [
                schedule,
                final.work,
                final.span,
                round(final.imbalance, 2),
                machine.stats.total_span,
            ]
        )
    text = format_table(
        "Ablation A4 — final link phase balance by schedule (twitter proxy)",
        ["schedule", "H_work", "H_span", "H_imbalance", "total_span"],
        rows,
    )
    register_report("ablation a4 scheduling", text)
    return g, out


def test_ablation_scheduling(profiles, benchmark):
    g, stats = profiles
    h = {s: stats[s].merged_by_label()["H"] for s in SCHEDULES}

    # Same total work regardless of schedule (it's the same algorithm).
    works = {s: h[s].work for s in SCHEDULES}
    assert max(works.values()) == min(works.values()), works

    # Skew hurts block partitioning; interleaved/dynamic schedules fix it.
    assert h["cyclic"].imbalance < h["block"].imbalance
    assert h["dynamic"].imbalance < h["block"].imbalance
    assert h["cyclic"].imbalance < 2.0
    assert h["dynamic"].imbalance < 2.0
    assert h["block"].imbalance > 1.2

    # The better balance translates into a shorter critical path.
    assert stats["cyclic"].total_span < stats["block"].total_span

    benchmark(
        lambda: afforest_simulated(
            g, SimulatedMachine(WORKERS, schedule="cyclic"),
            skip_largest=False,
        )
    )
