"""Benchmark-harness plumbing.

Every experiment module computes its paper artifact (table or figure
series), registers the rendered text via :func:`register_report`, and
exposes at least one ``benchmark``-fixture test so the module participates
in ``pytest benchmarks/ --benchmark-only``.

Reports are written to ``benchmarks/results/<slug>.txt`` as they are
produced and echoed into the terminal summary at the end of the run, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
full reproduction next to pytest-benchmark's timing table.

Set ``REPRO_BENCH_SIZE`` (tiny/small/default/large) to rescale every
experiment; the default is ``small`` (2**13-vertex proxies), which keeps
the complete harness under a few minutes while preserving every paper
shape.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS: list[tuple[str, str]] = []


def bench_size() -> str:
    """The size tier every experiment runs at."""
    return os.environ.get("REPRO_BENCH_SIZE", "small")


def register_report(title: str, text: str) -> None:
    """Persist one experiment's rendered output and queue it for the
    terminal summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n", encoding="utf-8")
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction artifacts")
    for _title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def size() -> str:
    return bench_size()


@pytest.fixture(scope="session")
def suite(size):
    """The Fig. 8a evaluation suite, generated once per session."""
    from repro.bench.datasets import evaluation_suite

    return evaluation_suite(size)
