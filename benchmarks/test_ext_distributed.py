"""Extension E1 — distributed-memory forest reduction (paper future work).

Not a paper figure: the conclusions propose extending Afforest to
distributed memory; this bench characterises the extension built in
:mod:`repro.distributed` — exactness across world sizes, O(|V| log R)
communication independent of |E|, and the local/communication work split.
"""

import numpy as np
import pytest

import repro
from repro.analysis import equivalent_labelings
from repro.bench.report import format_table
from repro.distributed import distributed_components
from repro.generators import uniform_random_graph

from conftest import register_report

RANKS = [1, 2, 4, 8, 16]
_SIZES = {"tiny": 2**10, "small": 2**13, "default": 2**15, "large": 2**16}


@pytest.fixture(scope="module")
def sweep(size):
    n = _SIZES[size]
    g = uniform_random_graph(n, edge_factor=16, seed=0)
    reference = repro.connected_components(g, "sequential")
    rows = []
    results = {}
    for ranks in RANKS:
        result = distributed_components(g, ranks)
        results[ranks] = result
        rows.append(
            [
                ranks,
                result.merge_rounds,
                result.comm_stats.messages,
                result.comm_stats.bytes_sent,
                round(result.bytes_per_vertex, 1),
                equivalent_labelings(result.labels, reference),
            ]
        )
    text = format_table(
        f"Extension E1 — distributed forest reduction (urand n={n})",
        ["ranks", "merge_rounds", "messages", "bytes", "bytes/|V|", "exact"],
        rows,
    )
    register_report("ext e1 distributed", text)
    return g, results


def test_ext_distributed_shapes(sweep, benchmark):
    g, results = sweep
    n = g.num_vertices

    # Exactness at every world size (already in the table; re-assert).
    for ranks, result in results.items():
        assert result.num_components == results[1].num_components

    # Logarithmic reduction depth.
    assert results[16].merge_rounds == 4
    assert results[4].merge_rounds == 2

    # Communication: exactly (R-1) reduction sends + (R-1) broadcast
    # sends of 8n bytes each.
    for ranks, result in results.items():
        expected = 8 * n * (ranks - 1) * 2
        assert result.comm_stats.bytes_sent == expected, ranks

    # Traffic is edge-independent: denser graph, same bytes.
    dense = uniform_random_graph(n, edge_factor=64, seed=1)
    assert (
        distributed_components(dense, 8).comm_stats.bytes_sent
        == results[8].comm_stats.bytes_sent
    )

    benchmark(lambda: distributed_components(g, 8))
