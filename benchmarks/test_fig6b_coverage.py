"""Fig. 6b — Coverage vs %% edges processed for four partitioning strategies.

Coverage tracks how much of the largest component has gathered into one
tree — the signal that decides when large-component skipping can engage.
Paper shape: neighbour sampling reaches ~80%% coverage after two rounds;
row sampling trails badly (it must wait for the giant component's id range
to be reached).
"""

import pytest

from repro.analysis.convergence import convergence_curve
from repro.bench.report import format_series
from repro.core.strategies import STRATEGIES

from conftest import register_report

CHECKPOINTS = [5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0]


@pytest.fixture(scope="module")
def curves(suite):
    g = suite["web"]
    out = {
        name: convergence_curve(g, strategy(g), strategy_name=name, resolution=40)
        for name, strategy in STRATEGIES.items()
    }
    series = {
        name: [round(c.coverage_at(p), 4) for p in CHECKPOINTS]
        for name, c in out.items()
    }
    text = format_series(
        "Fig 6b — coverage vs % edges processed (web proxy)",
        "%edges",
        CHECKPOINTS,
        series,
    )
    from repro.bench.ascii import line_plot

    text += "\n\n" + line_plot(
        CHECKPOINTS, series, width=56, height=12, x_label="%edges"
    )
    register_report("fig6b coverage", text)
    return out


def test_fig6b_coverage_ordering(curves, suite, benchmark):
    g = suite["web"]
    two_rounds_pct = 100.0 * 2 * g.num_vertices / g.num_directed_edges

    # Paper: ~80% coverage after two neighbour rounds.
    assert curves["neighbor"].coverage_at(two_rounds_pct) > 0.7

    # Neighbour sampling covers the giant component faster than the
    # unstructured strategies.
    for pct in (10.0, 20.0):
        assert curves["neighbor"].coverage_at(pct) >= curves["row"].coverage_at(pct)

    # All strategies end at full coverage.
    for c in curves.values():
        assert c.coverage[-1] == pytest.approx(1.0)

    benchmark(
        lambda: convergence_curve(g, STRATEGIES["row"](g), resolution=10)
    )
