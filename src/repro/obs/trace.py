"""Structured span tracing: the engine's recording substrate.

A :class:`Tracer` records a tree of :class:`Span` objects — nested,
attributed, timestamped intervals — for one engine run.  Backends open a
span per pipeline phase (through the
:class:`~repro.engine.instrumentation.Instrumentation` shim), the process
backend attaches *worker* spans measured inside OS worker processes, and
:meth:`Tracer.finish` freezes everything into an immutable :class:`Trace`
that exporters (:mod:`repro.obs.export`) and the ASCII renderer
(:mod:`repro.obs.render`) consume.

Phase identity is structured: a :class:`PhaseLabel` is a ``str`` subclass
that carries the phase's *base name* and attributes (``round``, ``final``)
separately from its display string, so iterative phases (``H1``, ``H2``,
…) land in the trace as ``name="H"`` with an explicit ``round`` attribute
instead of encoding the round in the label — while everything keyed by
the flat label (``CCResult.phase_seconds``, existing tests, the
``compare --profile`` table) keeps seeing the familiar strings.

Timestamps are ``time.perf_counter()`` values.  On every supported
platform that clock is system-wide, so spans recorded inside worker
processes are directly comparable with the parent's.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["PhaseLabel", "Span", "Trace", "Tracer", "phase_label"]


class PhaseLabel(str):
    """A phase label carrying structured identity alongside its string.

    Instances *are* strings (``PhaseLabel("H", round=2) == "H2"``), so
    they flow unchanged through every API that treats phases as plain
    labels; consumers that care about structure read ``.base`` and
    ``.attrs`` instead of parsing the text back apart.
    """

    base: str
    attrs: dict[str, Any]

    def __new__(
        cls,
        base: str,
        *,
        round: int | None = None,  # noqa: A002 - mirrors the span attribute
        final: bool = False,
        **attrs: Any,
    ) -> "PhaseLabel":
        text = base
        if round is not None:
            text = f"{text}{round}"
        if final:
            text = f"{text}*"
        self = super().__new__(cls, text)
        self.base = base
        merged: dict[str, Any] = {}
        if round is not None:
            merged["round"] = round
        if final:
            merged["final"] = True
        merged.update(attrs)
        self.attrs = merged
        return self


def phase_label(
    base: str,
    *,
    round: int | None = None,  # noqa: A002
    final: bool = False,
    **attrs: Any,
) -> PhaseLabel:
    """Build a :class:`PhaseLabel` (``phase_label("H", round=2) == "H2"``)."""
    return PhaseLabel(base, round=round, final=final, **attrs)


def split_label(label: str) -> tuple[str, dict[str, Any]]:
    """``(base name, attrs)`` of a label; plain strings have no attrs."""
    if isinstance(label, PhaseLabel):
        return label.base, dict(label.attrs)
    return str(label), {}


class Span:
    """One timed interval in a trace: a phase, sub-phase, or worker task.

    ``label`` is the flat display string (``"H2"``); ``name`` is the
    structured base (``"H"``) with the remainder in ``attrs``
    (``{"round": 2}``).  ``track`` is ``None`` for spans measured on the
    coordinating thread and a worker identifier (``"worker-0"``) for
    spans measured inside worker processes — per-track spans render as
    separate rows in the Chrome/Perfetto export and are excluded from
    ``phase_seconds`` so they never double-count their parent phase.
    """

    __slots__ = ("name", "label", "t0", "t1", "attrs", "track", "children")

    def __init__(
        self,
        label: str,
        t0: float,
        t1: float | None = None,
        *,
        track: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        name, label_attrs = split_label(label)
        if attrs:
            label_attrs.update(attrs)
        self.name = name
        self.label = str(label)
        self.t0 = t0
        self.t1 = t1
        self.attrs = label_attrs
        self.track = track
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Wall seconds covered by the span (0.0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" track={self.track}" if self.track else ""
        return (
            f"Span({self.label!r}, {self.duration * 1000:.3f} ms,"
            f" {len(self.children)} children{extra})"
        )


class Trace:
    """A finished run's telemetry: the span tree plus metric snapshots.

    ``spans`` are the root spans in start order (an engine run has one,
    ``total``); ``counters``, ``gauges``, and ``histograms`` are the final
    snapshots of the run's :class:`~repro.obs.metrics.MetricsRegistry`;
    ``meta`` is provenance (algorithm, backend, worker count) stamped by
    the engine.
    """

    __slots__ = ("spans", "counters", "gauges", "histograms", "meta")

    def __init__(
        self,
        spans: list[Span],
        *,
        counters: dict[str, int] | None = None,
        gauges: dict[str, float] | None = None,
        histograms: dict[str, dict[str, Any]] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.spans = spans
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = dict(histograms or {})
        self.meta = dict(meta or {})

    # -- traversal -------------------------------------------------------- #

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Every span with its depth, depth-first in recording order."""
        stack: list[tuple[Span, int]] = [(s, 0) for s in reversed(self.spans)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            stack.extend((c, depth + 1) for c in reversed(span.children))

    def num_spans(self) -> int:
        """Total spans in the tree (all tracks)."""
        return sum(1 for _ in self.walk())

    @property
    def t0(self) -> float:
        """Earliest start timestamp (0.0 for an empty trace)."""
        times = [s.t0 for s, _ in self.walk()]
        return min(times) if times else 0.0

    @property
    def t1(self) -> float:
        """Latest end timestamp (0.0 for an empty trace)."""
        times = [s.t1 for s, _ in self.walk() if s.t1 is not None]
        return max(times) if times else 0.0

    # -- derived views ---------------------------------------------------- #

    def phase_seconds(self) -> dict[str, float]:
        """Flat ``label -> accumulated wall seconds`` view of the trace.

        Repeated labels accumulate (matching iterative pipelines that
        revisit a phase); worker-track spans are excluded because their
        time is already covered by the enclosing phase span.
        """
        seconds: dict[str, float] = {}
        for span, _ in self.walk():
            if span.track is not None or span.t1 is None:
                continue
            seconds[span.label] = seconds.get(span.label, 0.0) + span.duration
        return seconds

    def worker_spans(self) -> list[Span]:
        """Every worker-track span, in recording order."""
        return [s for s, _ in self.walk() if s.track is not None]

    def tracks(self) -> list[str]:
        """Worker track names in order of first appearance."""
        seen: list[str] = []
        for span in self.worker_spans():
            if span.track not in seen:
                seen.append(span.track)  # type: ignore[arg-type]
        return seen

    def worker_skew(self) -> dict[str, dict[str, float]]:
        """Per-phase worker imbalance: max/mean task duration and count.

        Groups worker-track spans by label and reports, per phase,
        ``{"max_s", "mean_s", "skew", "tasks"}`` where ``skew`` is the
        max/mean ratio — 1.0 means perfectly balanced blocks.
        """
        groups: dict[str, list[float]] = {}
        for span in self.worker_spans():
            groups.setdefault(span.label, []).append(span.duration)
        skew: dict[str, dict[str, float]] = {}
        for label, durations in groups.items():
            mean = sum(durations) / len(durations)
            peak = max(durations)
            skew[label] = {
                "max_s": peak,
                "mean_s": mean,
                "skew": peak / mean if mean > 0 else 1.0,
                "tasks": float(len(durations)),
            }
        return skew

    # -- serialisation ---------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""

        def span_dict(span: Span) -> dict[str, Any]:
            d: dict[str, Any] = {
                "name": span.name,
                "label": span.label,
                "t0": span.t0,
                "t1": span.t1,
            }
            if span.attrs:
                d["attrs"] = span.attrs
            if span.track is not None:
                d["track"] = span.track
            if span.children:
                d["children"] = [span_dict(c) for c in span.children]
            return d

        return {
            "spans": [span_dict(s) for s in self.spans],
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""

        def build(d: dict[str, Any]) -> Span:
            span = Span(
                d.get("label", d.get("name", "")),
                float(d["t0"]),
                None if d.get("t1") is None else float(d["t1"]),
                track=d.get("track"),
            )
            span.name = d.get("name", span.name)
            span.attrs = dict(d.get("attrs") or {})
            span.children = [build(c) for c in d.get("children", [])]
            return span

        return cls(
            [build(d) for d in data.get("spans", [])],
            counters=data.get("counters"),
            gauges=data.get("gauges"),
            histograms=data.get("histograms"),
            meta=data.get("meta"),
        )


class _NullSpanContext:
    """Reusable no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Records spans for one run; cheap no-op when disabled.

    ``span`` opens a nested span around a block of work; ``add_span``
    attaches an already-measured interval (a worker task timed inside
    another process) under the currently open span.  ``finish`` closes
    any dangling spans and returns the immutable :class:`Trace`.
    """

    def __init__(self, enabled: bool = True, *, metrics=None) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.enabled = enabled
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled)
        )
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, label: str, **attrs: Any):
        """Context manager recording a nested span around its body."""
        if not self.enabled:
            return _NULL_SPAN
        return self._span(label, attrs)

    @contextmanager
    def _span(self, label: str, attrs: dict[str, Any]):
        span = Span(label, time.perf_counter(), attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.t1 = time.perf_counter()
            self._stack.pop()

    def add_span(
        self,
        label: str,
        t0: float,
        t1: float,
        *,
        track: str | None = None,
        **attrs: Any,
    ) -> Span | None:
        """Attach an externally measured interval under the open span."""
        if not self.enabled:
            return None
        span = Span(label, t0, t1, track=track, attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self._roots).append(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def phase_seconds(self) -> dict[str, float]:
        """Live flat label -> seconds view over the spans closed so far."""
        return Trace(self._roots).phase_seconds()

    def finish(self, **meta: Any) -> Trace:
        """Freeze into a :class:`Trace` (closing any still-open spans)."""
        now = time.perf_counter()
        while self._stack:
            self._stack.pop().t1 = now
        return Trace(
            self._roots,
            counters=self.metrics.counters_snapshot(),
            gauges=self.metrics.gauges_snapshot(),
            histograms=self.metrics.histogram_summaries(),
            meta=meta,
        )
