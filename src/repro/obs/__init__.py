"""Observability: span tracing, metrics, exporters, and rendering.

The telemetry layer behind ``engine.run(profile=True, trace=...)``:

- :class:`Tracer` / :class:`Trace` / :class:`Span`
  (:mod:`repro.obs.trace`) — nested, attributed spans with start/end
  timestamps; :func:`phase_label` builds labels that carry structured
  identity (``phase_label("H", round=2) == "H2"``);
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters, gauges,
  and fixed-bucket histograms, no-ops while disabled;
- exporters (:mod:`repro.obs.export`) — JSONL events and Chrome
  ``trace_event`` JSON (Perfetto-loadable), both round-trippable via
  :func:`load_trace`;
- :func:`render_trace` (:mod:`repro.obs.render`) — the ASCII
  timeline/summary printed by ``python -m repro trace``;
- the run ledger (:mod:`repro.obs.ledger`) — durable, append-only
  :class:`RunRecord` JSONL entries behind ``engine.run(record=...)``;
- :func:`diff_runs` (:mod:`repro.obs.diff`) — regression attribution
  between two recorded runs or traces;
- :class:`HeartbeatMonitor` (:mod:`repro.obs.heartbeat`) — live
  per-round progress events with an ETA from the round trend;
- :func:`render_prometheus` (:mod:`repro.obs.promexport`) — Prometheus
  text exposition of any metrics snapshot.

The package is self-contained (no imports from :mod:`repro.engine` or
:mod:`repro.bench` at module scope), so every layer above can build on it
without cycles.
"""

from __future__ import annotations

from repro.obs.diff import RunDiff, attribution_markdown, diff_runs, format_diff
from repro.obs.export import (
    TRACE_FORMATS,
    load_trace,
    trace_events,
    write_chrome,
    write_jsonl,
    write_trace,
)
from repro.obs.heartbeat import HeartbeatEvent, HeartbeatMonitor, format_event
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    record_from_result,
    resolve_ledger,
)
from repro.obs.metrics import (
    POW2_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.promexport import prometheus_lines, render_prometheus
from repro.obs.render import render_trace, skew_lines
from repro.obs.trace import PhaseLabel, Span, Trace, Tracer, phase_label

__all__ = [
    "Counter",
    "Gauge",
    "HeartbeatEvent",
    "HeartbeatMonitor",
    "Histogram",
    "MetricsRegistry",
    "PhaseLabel",
    "POW2_BUCKETS",
    "RATIO_BUCKETS",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "Span",
    "Trace",
    "TRACE_FORMATS",
    "Tracer",
    "attribution_markdown",
    "diff_runs",
    "format_diff",
    "format_event",
    "load_trace",
    "phase_label",
    "prometheus_lines",
    "record_from_result",
    "render_prometheus",
    "render_trace",
    "resolve_ledger",
    "skew_lines",
    "trace_events",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
