"""Observability: span tracing, metrics, exporters, and rendering.

The telemetry layer behind ``engine.run(profile=True, trace=...)``:

- :class:`Tracer` / :class:`Trace` / :class:`Span`
  (:mod:`repro.obs.trace`) — nested, attributed spans with start/end
  timestamps; :func:`phase_label` builds labels that carry structured
  identity (``phase_label("H", round=2) == "H2"``);
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters, gauges,
  and fixed-bucket histograms, no-ops while disabled;
- exporters (:mod:`repro.obs.export`) — JSONL events and Chrome
  ``trace_event`` JSON (Perfetto-loadable), both round-trippable via
  :func:`load_trace`;
- :func:`render_trace` (:mod:`repro.obs.render`) — the ASCII
  timeline/summary printed by ``python -m repro trace``.

The package is self-contained (no imports from :mod:`repro.engine` or
:mod:`repro.bench` at module scope), so every layer above can build on it
without cycles.
"""

from __future__ import annotations

from repro.obs.export import (
    TRACE_FORMATS,
    load_trace,
    trace_events,
    write_chrome,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import (
    POW2_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.render import render_trace, skew_lines
from repro.obs.trace import PhaseLabel, Span, Trace, Tracer, phase_label

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseLabel",
    "POW2_BUCKETS",
    "RATIO_BUCKETS",
    "Span",
    "Trace",
    "TRACE_FORMATS",
    "Tracer",
    "load_trace",
    "phase_label",
    "render_trace",
    "skew_lines",
    "trace_events",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
