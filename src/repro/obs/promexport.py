"""Prometheus text exposition of run metrics.

Renders a metrics snapshot — live :class:`~repro.obs.metrics.MetricsRegistry`,
finished :class:`~repro.obs.trace.Trace`, or durable
:class:`~repro.obs.ledger.RunRecord` — in the Prometheus text exposition
format (version 0.0.4), so the future serving layer can expose a
``/metrics`` endpoint by calling one function, and ``repro obs show
--prom`` can feed recorded runs to any Prometheus-compatible tooling
today.

Mapping:

- counters become ``<ns>_<name>_total`` (``# TYPE counter``);
- gauges become ``<ns>_<name>`` (``# TYPE gauge``);
- histogram summaries become the full ``_bucket``/``_sum``/``_count``
  triplet with *cumulative* ``le`` buckets, converted from the
  registry's per-bucket counts.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); caller-supplied labels (algorithm,
backend, dataset) are attached to every sample.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

from repro.obs.ledger import RunRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace

__all__ = ["prometheus_lines", "render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(namespace: str, name: str, suffix: str = "") -> str:
    base = _NAME_OK.sub("_", f"{namespace}_{name}{suffix}")
    if base and base[0].isdigit():
        base = f"_{base}"
    return base


def _label_str(labels: Mapping[str, Any] | None, **extra: str) -> str:
    merged: dict[str, str] = {}
    for k, v in (labels or {}).items():
        if v is None:
            continue
        key = _LABEL_OK.sub("_", str(k))
        value = str(v).replace("\\", r"\\").replace('"', r"\"")
        merged[key] = value
    merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in merged.items())
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_lines(
    *,
    counters: Mapping[str, int] | None = None,
    gauges: Mapping[str, float] | None = None,
    histograms: Mapping[str, Mapping[str, Any]] | None = None,
    namespace: str = "repro",
    labels: Mapping[str, Any] | None = None,
) -> list[str]:
    """The exposition lines for one metrics snapshot."""
    lines: list[str] = []
    base_labels = _label_str(labels)
    for name in sorted(counters or {}):
        metric = _metric_name(namespace, name, "_total")
        lines.append(f"# TYPE {metric} counter")
        value = _format_value(float((counters or {})[name]))
        lines.append(f"{metric}{base_labels} {value}")
    for name in sorted(gauges or {}):
        metric = _metric_name(namespace, name)
        lines.append(f"# TYPE {metric} gauge")
        value = _format_value(float((gauges or {})[name]))
        lines.append(f"{metric}{base_labels} {value}")
    for name in sorted(histograms or {}):
        summary = (histograms or {})[name]
        if not isinstance(summary, Mapping):
            continue
        metric = _metric_name(namespace, name)
        lines.append(f"# TYPE {metric} histogram")
        buckets = summary.get("buckets") or {}
        bounded = sorted(
            (float(b), int(c)) for b, c in buckets.items() if b != "+inf"
        )
        cumulative = 0
        for bound, count in bounded:
            cumulative += count
            le = _label_str(labels, le=_format_value(bound))
            lines.append(f"{metric}_bucket{le} {cumulative}")
        total = int(summary.get("count") or 0)
        le = _label_str(labels, le="+Inf")
        lines.append(f"{metric}_bucket{le} {total}")
        total_sum = _format_value(float(summary.get("sum") or 0.0))
        lines.append(f"{metric}_sum{base_labels} {total_sum}")
        lines.append(f"{metric}_count{base_labels} {total}")
    return lines


def render_prometheus(
    source: Trace | RunRecord | MetricsRegistry | Mapping[str, Any],
    *,
    namespace: str = "repro",
    labels: Mapping[str, Any] | None = None,
) -> str:
    """Render any metrics-bearing object as Prometheus text.

    For traces and run records, provenance (algorithm, backend, and —
    for records — the dataset) is merged into the sample labels unless
    the caller supplies their own.
    """
    merged: dict[str, Any] = {}
    if isinstance(source, Trace):
        counters: Mapping[str, Any] = source.counters
        gauges: Mapping[str, Any] = source.gauges
        histograms: Mapping[str, Any] = source.histograms
        for key in ("algorithm", "backend"):
            if source.meta.get(key):
                merged[key] = source.meta[key]
    elif isinstance(source, RunRecord):
        counters = source.counters
        gauges = source.gauges
        histograms = source.histograms
        if source.algorithm:
            merged["algorithm"] = source.algorithm
        if source.backend:
            merged["backend"] = source.backend
        if source.meta.get("dataset"):
            merged["dataset"] = source.meta["dataset"]
        merged["run_id"] = source.run_id
    elif isinstance(source, MetricsRegistry):
        counters = source.counters_snapshot()
        gauges = source.gauges_snapshot()
        histograms = source.histogram_summaries()
    else:
        counters = source.get("counters") or {}
        gauges = source.get("gauges") or {}
        histograms = source.get("histograms") or {}
    merged.update(labels or {})
    lines = prometheus_lines(
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        namespace=namespace,
        labels=merged,
    )
    return "\n".join(lines) + ("\n" if lines else "")
