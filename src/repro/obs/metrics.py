"""Run metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is created per engine run (inside the
:class:`~repro.obs.trace.Tracer`) and snapshotted into the finished
:class:`~repro.obs.trace.Trace`.  Instruments are created on first use —
``registry.counter("settle_passes").inc()`` — and every accessor returns
a shared no-op instrument while the registry is disabled, so unprofiled
runs pay a single attribute check per recording site.

Histograms use *fixed* bucket boundaries chosen at creation (no dynamic
rebinning): cheap ``searchsorted`` inserts, stable summaries, and bucket
counts that can be merged across runs.  :data:`POW2_BUCKETS` suits
non-negative magnitudes spanning orders of magnitude (hook distances,
edge-block sizes); :data:`RATIO_BUCKETS` suits imbalance ratios >= 1.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "POW2_BUCKETS",
    "RATIO_BUCKETS",
]

#: power-of-two upper bounds: 1, 2, 4, ..., 2**30.
POW2_BUCKETS: tuple[float, ...] = tuple(float(2**k) for k in range(31))

#: max/mean imbalance ratio bounds (1.0 = perfectly balanced).
RATIO_BUCKETS: tuple[float, ...] = (
    1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative increments are a caller bug)."""
        self.value += amount


class Gauge:
    """Last-written named value (e.g. worker count, block count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value, replacing the previous one."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with running sum/min/max.

    ``buckets`` are ascending upper bounds; values above the last bound
    land in an implicit overflow bucket.  ``observe_many`` takes any
    array-like and bins it in one vectorised pass.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        self.name = name
        self.bounds = np.asarray(list(buckets), dtype=float)
        if self.bounds.size == 0 or np.any(np.diff(self.bounds) <= 0):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"histogram {name!r} needs ascending non-empty buckets"
            )
        self.counts = np.zeros(self.bounds.size + 1, dtype=np.int64)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one value."""
        self.counts[int(np.searchsorted(self.bounds, value, side="left"))] += 1
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of values in one vectorised pass."""
        arr = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=float,
        )
        if arr.size == 0:
            return
        idx = np.searchsorted(self.bounds, arr, side="left")
        np.add.at(self.counts, idx, 1)
        self.total += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    def summary(self) -> dict[str, Any]:
        """JSON-ready snapshot: count, sum, min/max/mean, bucket counts.

        Bucket keys are the stringified upper bounds plus ``"+inf"`` for
        the overflow bucket; empty buckets are omitted to keep benchmark
        records compact.
        """
        buckets: dict[str, int] = {}
        for bound, count in zip(self.bounds, self.counts[:-1]):
            if count:
                buckets[f"{bound:g}"] = int(count)
        if self.counts[-1]:
            buckets["+inf"] = int(self.counts[-1])
        out: dict[str, Any] = {
            "count": self.total,
            "sum": self.sum,
            "buckets": buckets,
        }
        if self.total:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.sum / self.total
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values: Iterable[float]) -> None:
        return None


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one run; no-op accessors while disabled."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str):
        """The counter registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str):
        """The gauge registered under ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, buckets: Sequence[float] = POW2_BUCKETS):
        """The histogram under ``name``; ``buckets`` applies on creation."""
        if not self.enabled:
            return _NULL
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, buckets)
        return hist

    # -- snapshots -------------------------------------------------------- #

    def counters_snapshot(self) -> dict[str, int]:
        """Counter values (counters with a zero value included)."""
        return {name: c.value for name, c in self._counters.items()}

    def gauges_snapshot(self) -> dict[str, float]:
        """Gauge values by name."""
        return {name: g.value for name, g in self._gauges.items()}

    def histogram_summaries(self) -> dict[str, dict[str, Any]]:
        """Every histogram's :meth:`Histogram.summary` by name."""
        return {name: h.summary() for name, h in self._histograms.items()}
