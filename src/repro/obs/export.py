"""Trace exporters: JSONL events, Chrome ``trace_event`` JSON, loaders.

Two on-disk formats, both round-trippable back into a
:class:`~repro.obs.trace.Trace`:

- **JSONL** (:func:`write_jsonl`): a ``meta`` line (counters, histogram
  summaries, provenance) followed by one JSON object per span in
  depth-first order, each carrying its ``id`` and ``parent`` id — easy to
  grep, stream, and post-process with standard tools;
- **Chrome** (:func:`write_chrome`): the ``trace_event`` *JSON array
  format* of complete (``"ph": "X"``) events, loadable directly in
  Perfetto / ``chrome://tracing``.  The coordinating thread renders as
  tid 0 and every worker track as its own named thread row, so process-
  backend runs show per-worker skew visually.

:func:`load_trace` sniffs the format (a leading ``[`` means Chrome) and
rebuilds the span tree — for Chrome input, nesting is reconstructed from
timestamp containment per track, and worker spans re-attach under the
deepest containing span of the main track.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.obs.trace import Span, Trace

__all__ = [
    "TRACE_FORMATS",
    "load_trace",
    "trace_events",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]

#: formats accepted by :func:`write_trace` and the CLI's ``--trace-format``.
TRACE_FORMATS = ("jsonl", "chrome")

#: metadata event name carrying the non-span trace payload through Chrome
#: format (counters, histograms, provenance); viewers ignore it.
_META_EVENT = "repro_trace_meta"


# --------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------- #


def _jsonl_lines(trace: Trace) -> list[dict[str, Any]]:
    lines: list[dict[str, Any]] = [
        {
            "type": "meta",
            "counters": trace.counters,
            "gauges": trace.gauges,
            "histograms": trace.histograms,
            "meta": trace.meta,
        }
    ]
    next_id = 0
    stack: list[tuple[Span, int | None]] = [
        (s, None) for s in reversed(trace.spans)
    ]
    while stack:
        span, parent = stack.pop()
        span_id = next_id
        next_id += 1
        record: dict[str, Any] = {
            "type": "span",
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "label": span.label,
            "t0": span.t0,
            "t1": span.t1,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.track is not None:
            record["track"] = span.track
        lines.append(record)
        stack.extend((c, span_id) for c in reversed(span.children))
    return lines


def write_jsonl(trace: Trace, path: str | Path) -> None:
    """Write the trace as one JSON object per line (meta line first)."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in _jsonl_lines(trace):
            fh.write(json.dumps(line) + "\n")


def _load_jsonl(text: str) -> Trace:
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    meta: dict[str, Any] = {}
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            counters = record.get("counters") or {}
            gauges = record.get("gauges") or {}
            histograms = record.get("histograms") or {}
            meta = record.get("meta") or {}
        elif kind == "span":
            span = Span(
                record.get("label", record.get("name", "")),
                float(record["t0"]),
                None if record.get("t1") is None else float(record["t1"]),
                track=record.get("track"),
            )
            span.name = record.get("name", span.name)
            span.attrs = dict(record.get("attrs") or {})
            spans[int(record["id"])] = span
            parent = record.get("parent")
            host = None if parent is None else spans.get(int(parent))
            if host is None:
                # Dangling parent ids (truncated or hand-edited files)
                # degrade to extra roots instead of raising.
                roots.append(span)
            else:
                host.children.append(span)
    return Trace(
        roots,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        meta=meta,
    )


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #


def trace_events(trace: Trace) -> list[dict[str, Any]]:
    """The trace as a Chrome ``trace_event`` list (JSON array format).

    Timestamps are microseconds rebased to the trace start.  The
    coordinating thread is tid 0; each worker track gets the next tid and
    a ``thread_name`` metadata event, so Perfetto shows one row per
    worker under the phase row.
    """
    origin = trace.t0
    tids = {track: i + 1 for i, track in enumerate(trace.tracks())}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": trace.meta.get("algorithm") or "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "engine"},
        },
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": track},
            }
        )
    events.append(
        {
            "name": _META_EVENT,
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {
                "counters": trace.counters,
                "gauges": trace.gauges,
                "histograms": trace.histograms,
                "meta": trace.meta,
            },
        }
    )
    for span, _depth in trace.walk():
        if span.t1 is None:
            continue
        args = {k: v for k, v in span.attrs.items() if _json_safe(v)}
        args["label"] = span.label
        events.append(
            {
                "name": span.label,
                "cat": span.name,
                "ph": "X",
                "ts": (span.t0 - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": 0 if span.track is None else tids[span.track],
                "args": args,
            }
        )
    return events


def _json_safe(value: Any) -> bool:
    return isinstance(value, (str, int, bool)) or (
        isinstance(value, float) and math.isfinite(value)
    )


def write_chrome(trace: Trace, path: str | Path) -> None:
    """Write the Chrome ``trace_event`` JSON array to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_events(trace), fh, indent=1)


def _load_chrome(events: list[dict[str, Any]]) -> Trace:
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    meta: dict[str, Any] = {}
    track_names: dict[int, str] = {}
    complete: list[dict[str, Any]] = []
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                tid = int(event.get("tid", 0))
                if tid != 0:
                    track_names[tid] = event.get("args", {}).get(
                        "name", f"track-{tid}"
                    )
            elif event.get("name") == _META_EVENT:
                args = event.get("args", {})
                counters = args.get("counters") or {}
                gauges = args.get("gauges") or {}
                histograms = args.get("histograms") or {}
                meta = args.get("meta") or {}
        elif ph == "X":
            complete.append(event)

    def to_span(event: dict[str, Any]) -> Span:
        tid = int(event.get("tid", 0))
        t0 = float(event.get("ts", 0.0)) / 1e6
        span = Span(
            event.get("args", {}).get("label", event.get("name", "")),
            t0,
            t0 + float(event.get("dur", 0.0)) / 1e6,
            track=None if tid == 0 else track_names.get(tid, f"track-{tid}"),
        )
        span.name = event.get("cat", span.name)
        span.attrs = {
            k: v for k, v in event.get("args", {}).items() if k != "label"
        }
        return span

    # Rebuild main-track nesting from timestamp containment: sorted by
    # start (ties broken longest-first), each span nests under the nearest
    # enclosing interval still on the stack.
    main = sorted(
        (to_span(e) for e in complete if int(e.get("tid", 0)) == 0),
        key=lambda s: (s.t0, -(s.duration)),
    )
    roots: list[Span] = []
    stack: list[Span] = []
    eps = 1e-9
    for span in main:
        while stack and span.t0 >= (stack[-1].t1 or 0.0) - eps:
            stack.pop()
        (stack[-1].children if stack else roots).append(span)
        stack.append(span)

    # Worker spans hang off the deepest main-track span containing them.
    workers = sorted(
        (to_span(e) for e in complete if int(e.get("tid", 0)) != 0),
        key=lambda s: s.t0,
    )
    for span in workers:
        host: Span | None = None
        candidates = list(roots)
        while candidates:
            found = next(
                (
                    c
                    for c in candidates
                    if c.track is None
                    and c.t0 - eps <= span.t0
                    and (span.t1 or span.t0) <= (c.t1 or 0.0) + eps
                ),
                None,
            )
            if found is None:
                break
            host = found
            candidates = list(found.children)
        (host.children if host else roots).append(span)
    return Trace(
        roots,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        meta=meta,
    )


# --------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------- #


def write_trace(trace: Trace, path: str | Path, format: str = "chrome") -> None:
    """Write ``trace`` to ``path`` in the given format."""
    if format == "jsonl":
        write_jsonl(trace, path)
    elif format == "chrome":
        write_chrome(trace, path)
    else:
        raise ConfigurationError(
            f"unknown trace format {format!r}; available: {list(TRACE_FORMATS)}"
        )


def load_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`write_trace`, sniffing the format."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if not stripped:
        raise ConfigurationError(f"trace file {path} is empty")
    if stripped.startswith("["):
        return _load_chrome(json.loads(text))
    return _load_jsonl(text)
