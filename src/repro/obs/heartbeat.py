"""Live run telemetry: per-round heartbeat events with an ETA.

Traces answer questions *after* a run; the heartbeat answers "is it
making progress?" *during* one.  Pipelines call
``instr.beat(phase, changed=..., frontier=...)`` once per round; the
:class:`HeartbeatMonitor` timestamps the round, estimates time to
completion from the round trend, and hands a :class:`HeartbeatEvent`
to a pluggable sink (any callable, or a list to append to).  The
process backend additionally emits ``kind="block"`` events as worker
block timings become visible in the shared stats segment — while the
barrier is still in flight.

Guarantees the serving layer can build on: ``round`` increases
monotonically across a monitor's lifetime (even when a composed plan
restarts its pipeline round numbering), and ``eta_seconds`` is finite
from the third round onward — the estimator falls back to
"as many rounds again" when the convergence signal is not decaying.

When no heartbeat is attached the engine never constructs any of this;
the hot path pays one ``None`` check per round.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque

__all__ = ["HeartbeatEvent", "HeartbeatMonitor", "format_event"]

#: rounds of history the ETA trend looks back over.
_TREND_WINDOW = 8


@dataclass
class HeartbeatEvent:
    """One progress observation.

    ``kind`` is ``"round"`` for pipeline rounds and ``"block"`` for a
    worker block completing inside a process-backend barrier.  ``round``
    is the monitor's monotone round count (block events carry the round
    they happened in); ``eta_seconds`` is ``inf`` until the trend has
    two rounds to extrapolate from.
    """

    kind: str
    round: int
    phase: str
    elapsed_seconds: float
    round_seconds: float
    eta_seconds: float
    frontier: int | None = None
    changed: int | None = None
    extra: dict[str, Any] = field(default_factory=dict)


class HeartbeatMonitor:
    """Turns per-round callbacks into timestamped, ETA-carrying events.

    ``sink`` is any callable taking a :class:`HeartbeatEvent`; a list
    (anything with ``append``) works directly.  The monitor is owned by
    one engine run on one thread — it keeps no locks.
    """

    def __init__(
        self,
        sink: Callable[[HeartbeatEvent], Any] | list[HeartbeatEvent],
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if callable(sink):
            self._sink: Callable[[HeartbeatEvent], Any] = sink
        else:
            self._sink = sink.append
        self._clock = clock
        self._t0 = clock()
        self._last = self._t0
        self._round = 0
        self._durations: Deque[float] = deque(maxlen=_TREND_WINDOW)
        self._prev_signal: float | None = None

    @property
    def rounds(self) -> int:
        """Rounds observed so far."""
        return self._round

    def beat(
        self,
        phase: str = "",
        *,
        frontier: int | None = None,
        changed: int | None = None,
        **extra: Any,
    ) -> HeartbeatEvent:
        """Record the end of one pipeline round and emit its event.

        ``changed`` (labels that moved) is the preferred convergence
        signal for the ETA trend; ``frontier`` (vertices active next
        round) is used when ``changed`` is not known.
        """
        now = self._clock()
        self._round += 1
        round_s = now - self._last
        self._last = now
        self._durations.append(round_s)
        signal = changed if changed is not None else frontier
        eta = self._eta(None if signal is None else float(signal))
        event = HeartbeatEvent(
            kind="round",
            round=self._round,
            phase=str(phase),
            elapsed_seconds=now - self._t0,
            round_seconds=round_s,
            eta_seconds=eta,
            frontier=frontier,
            changed=changed,
            extra=dict(extra),
        )
        self._sink(event)
        return event

    def block(
        self,
        phase: str = "",
        *,
        block: int,
        seconds: float,
        items: int | None = None,
        **extra: Any,
    ) -> HeartbeatEvent:
        """Emit a worker-block completion observed inside a barrier."""
        now = self._clock()
        payload = {"block": int(block), "seconds": float(seconds)}
        if items is not None:
            payload["items"] = int(items)
        payload.update(extra)
        event = HeartbeatEvent(
            kind="block",
            round=self._round,
            phase=str(phase),
            elapsed_seconds=now - self._t0,
            round_seconds=0.0,
            eta_seconds=math.inf,
            extra=payload,
        )
        self._sink(event)
        return event

    def _eta(self, signal: float | None) -> float:
        """Seconds to completion extrapolated from the round trend.

        With a decaying convergence signal the estimate is geometric:
        rounds remaining until the signal falls below one, at the mean
        recent round duration.  Without one (or when the signal is not
        shrinking) it assumes as many rounds again as already run —
        crude, but finite, which is what a progress bar needs.
        """
        prev = self._prev_signal
        self._prev_signal = signal
        if self._round < 2:
            return math.inf
        avg = sum(self._durations) / len(self._durations)
        if (
            signal is not None
            and prev is not None
            and 0.0 < signal < prev
        ):
            decay = signal / prev
            remaining = math.log(max(signal, 2.0)) / -math.log(decay)
            return avg * min(remaining, 1e6)
        return avg * self._round


def format_event(event: HeartbeatEvent) -> str:
    """One human line per event, for ``repro obs watch``."""
    if event.kind == "block":
        items = event.extra.get("items")
        tail = f"  items={items}" if items is not None else ""
        return (
            f"    block {event.extra.get('block', '?')}"
            f"  {event.phase or '-'}"
            f"  {event.extra.get('seconds', 0.0) * 1000:8.2f} ms{tail}"
        )
    signal = ""
    if event.changed is not None:
        signal = f"  changed={event.changed}"
    elif event.frontier is not None:
        signal = f"  frontier={event.frontier}"
    eta = (
        "eta    --"
        if math.isinf(event.eta_seconds)
        else f"eta {event.eta_seconds:5.2f}s"
    )
    return (
        f"round {event.round:3d}  {event.phase or '-':<8}"
        f"  {event.round_seconds * 1000:8.2f} ms  {eta}{signal}"
    )
