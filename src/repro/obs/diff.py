"""Trace-diff regression attribution: *why* did a run get slower?

The perf gate can say a median moved 1.4x; this module says where.
:func:`diff_runs` compares two recorded runs — ledger entries
(:class:`~repro.obs.ledger.RunRecord`), traces
(:class:`~repro.obs.trace.Trace`), or plain benchmark-record dicts —
and attributes the movement to phases (per-label wall seconds) and to
the counters/gauges that changed with it.  The result renders three
ways: a one-line summary for failure messages
(``fastsv/lattice: +38% in HS3, rounds_skipped 4->0``), an aligned
text table for the CLI, and a markdown table for CI step summaries.

Attribution is deliberately threshold-based, not statistical: a phase
"moved" when its delta clears both a relative and an absolute floor,
so timer jitter on microsecond phases does not read as a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.ledger import RunRecord
from repro.obs.trace import Trace

__all__ = [
    "CounterDelta",
    "PhaseDelta",
    "RunDiff",
    "attribution_markdown",
    "diff_runs",
    "format_diff",
]

#: a phase counts as moved past this fraction of its larger side ...
REL_THRESHOLD = 0.10
#: ... provided the absolute delta also clears this many seconds.
ABS_FLOOR_SECONDS = 50e-6


@dataclass
class PhaseDelta:
    """One phase's wall seconds on each side of the diff."""

    label: str
    a_seconds: float
    b_seconds: float

    @property
    def delta(self) -> float:
        return self.b_seconds - self.a_seconds

    @property
    def pct(self) -> float:
        """Percent change relative to side a (+inf for a new phase)."""
        if self.a_seconds <= 0.0:
            return float("inf") if self.b_seconds > 0.0 else 0.0
        return 100.0 * self.delta / self.a_seconds

    def moved(
        self,
        rel_threshold: float = REL_THRESHOLD,
        abs_floor: float = ABS_FLOOR_SECONDS,
    ) -> bool:
        """Whether the movement clears both significance floors."""
        scale = max(self.a_seconds, self.b_seconds)
        return abs(self.delta) >= max(rel_threshold * scale, abs_floor)

    def describe(self) -> str:
        """``+38% in HS3`` / ``new phase HS3`` / ``HS3 disappeared``."""
        if self.a_seconds <= 0.0:
            return f"new phase {self.label}"
        if self.b_seconds <= 0.0:
            return f"{self.label} disappeared"
        return f"{self.pct:+.0f}% in {self.label}"


@dataclass
class CounterDelta:
    """One counter/gauge value on each side of the diff."""

    name: str
    a: float
    b: float

    def describe(self) -> str:
        def fmt(v: float) -> str:
            return str(int(v)) if float(v).is_integer() else f"{v:.4g}"

        return f"{self.name} {fmt(self.a)}→{fmt(self.b)}"


@dataclass
class RunDiff:
    """Two runs compared: totals, per-phase deltas, moved counters."""

    label_a: str
    label_b: str
    total_a: float
    total_b: float
    phases: list[PhaseDelta] = field(default_factory=list)
    counters: list[CounterDelta] = field(default_factory=list)
    gauges: list[CounterDelta] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        """total_b / total_a (inf when side a measured zero seconds)."""
        if self.total_a <= 0.0:
            return float("inf") if self.total_b > 0.0 else 1.0
        return self.total_b / self.total_a

    def moved_phases(self) -> list[PhaseDelta]:
        """Phases whose movement is significant, largest |delta| first."""
        return [p for p in self.phases if p.moved()]

    def regressed(self, threshold: float = 1.0) -> bool:
        """Whether side b is slower than ``threshold`` x side a."""
        return self.ratio > threshold

    def attribution(self, max_counters: int = 3) -> str:
        """The attribution clause: top phase moves plus moved counters."""
        parts: list[str] = []
        moved = self.moved_phases()
        if moved:
            parts.append(moved[0].describe())
        parts.extend(c.describe() for c in self.counters[:max_counters])
        if not parts:
            return "no phase or counter moved past thresholds"
        return ", ".join(parts)

    def summary(self) -> str:
        """One line: label, total movement, and the attribution clause."""
        label = self.label_b or self.label_a or "run"
        if self.total_a > 0.0:
            total = f"{100.0 * (self.ratio - 1.0):+.0f}% total"
        else:
            total = f"{self.total_b * 1000:.2f} ms total"
        return f"{label}: {total} — {self.attribution()}"


def _as_run(source: Any, label: str | None = None) -> dict[str, Any]:
    """Normalise a diffable source into one flat dict.

    Accepts :class:`RunRecord`, :class:`Trace`, or a mapping shaped like
    a benchmark record (``median_seconds`` / ``seconds`` /
    ``phase_seconds`` / ``counters`` / ``gauges`` keys, all optional).
    """
    if isinstance(source, RunRecord):
        phase = dict(source.phase_seconds)
        return {
            "label": label or source.label(),
            "total": source.seconds or phase.get("total", 0.0),
            "phase_seconds": phase,
            "counters": dict(source.counters),
            "gauges": dict(source.gauges),
        }
    if isinstance(source, Trace):
        phase = source.phase_seconds()
        meta = source.meta
        inferred = "/".join(
            str(meta[k]) for k in ("algorithm", "backend") if meta.get(k)
        )
        return {
            "label": label or inferred,
            "total": phase.get("total") or (source.t1 - source.t0),
            "phase_seconds": phase,
            "counters": dict(source.counters),
            "gauges": dict(source.gauges),
        }
    if isinstance(source, dict):
        phase = dict(source.get("phase_seconds") or {})
        total = (
            source.get("seconds")
            or source.get("median_seconds")
            or phase.get("total")
            or 0.0
        )
        inferred = "/".join(
            str(source[k])
            for k in ("algorithm", "dataset", "backend")
            if source.get(k)
        )
        return {
            "label": label or inferred,
            "total": float(total),
            "phase_seconds": phase,
            "counters": dict(source.get("counters") or {}),
            "gauges": dict(source.get("gauges") or {}),
        }
    from repro.errors import ConfigurationError

    raise ConfigurationError(
        f"cannot diff {type(source).__name__}; expected a RunRecord,"
        " Trace, or benchmark-record dict"
    )


#: counters that restate wall time or identity; excluded from attribution
#: because the phase table already tells that story.  The communication
#: totals scale with the distributed world size rather than with the
#: regression being attributed, so a ranks=2 vs ranks=4 diff would drown
#: the clause in traffic deltas.
_NOISE_COUNTERS = frozenset(
    {
        "probe_seconds_us",
        "comm_bytes_sent",
        "comm_messages",
        "comm_supersteps",
    }
)

#: name prefixes suppressed the same way (per-rank-pair traffic matrix).
_NOISE_PREFIXES = ("comm_pair_",)


def diff_runs(
    a: Any,
    b: Any,
    *,
    label_a: str | None = None,
    label_b: str | None = None,
) -> RunDiff:
    """Compare two runs; side ``a`` is the baseline, ``b`` the candidate."""
    run_a = _as_run(a, label_a)
    run_b = _as_run(b, label_b)

    labels = list(run_a["phase_seconds"])
    labels += [k for k in run_b["phase_seconds"] if k not in labels]
    phases = [
        PhaseDelta(
            k,
            float(run_a["phase_seconds"].get(k, 0.0)),
            float(run_b["phase_seconds"].get(k, 0.0)),
        )
        for k in labels
        if k != "total"
    ]
    phases.sort(key=lambda p: abs(p.delta), reverse=True)

    def moved_values(key: str) -> list[CounterDelta]:
        va, vb = run_a[key], run_b[key]
        names = list(va) + [k for k in vb if k not in va]
        out = [
            CounterDelta(k, float(va.get(k, 0)), float(vb.get(k, 0)))
            for k in names
            if k not in _NOISE_COUNTERS
            and not k.startswith(_NOISE_PREFIXES)
        ]
        out = [c for c in out if c.a != c.b]
        out.sort(key=lambda c: abs(c.b - c.a), reverse=True)
        return out

    return RunDiff(
        label_a=run_a["label"],
        label_b=run_b["label"],
        total_a=float(run_a["total"]),
        total_b=float(run_b["total"]),
        phases=phases,
        counters=moved_values("counters"),
        gauges=moved_values("gauges"),
    )


def format_diff(diff: RunDiff, max_phases: int = 12) -> str:
    """Aligned text rendering for the CLI: totals, phases, counters."""
    lines = [
        f"a: {diff.label_a or '(unlabelled)'}"
        f"  total {diff.total_a * 1000:.3f} ms",
        f"b: {diff.label_b or '(unlabelled)'}"
        f"  total {diff.total_b * 1000:.3f} ms  ({diff.ratio:.2f}x)",
    ]
    shown = diff.phases[:max_phases]
    if shown:
        width = max(len("phase"), *(len(p.label) for p in shown))
        lines.append("")
        lines.append(
            f"{'phase':<{width}}  {'a ms':>9}  {'b ms':>9}"
            f"  {'delta ms':>9}  moved"
        )
        for p in shown:
            flag = "*" if p.moved() else ""
            lines.append(
                f"{p.label:<{width}}  {p.a_seconds * 1000:>9.3f}"
                f"  {p.b_seconds * 1000:>9.3f}"
                f"  {p.delta * 1000:>+9.3f}  {flag}"
            )
        hidden = len(diff.phases) - len(shown)
        if hidden > 0:
            lines.append(f"... {hidden} more phases below threshold")
    for title, deltas in (
        ("counters", diff.counters),
        ("gauges", diff.gauges),
    ):
        if deltas:
            lines.append("")
            lines.append(
                f"{title}: "
                + "; ".join(c.describe() for c in deltas[:8])
            )
    lines.append("")
    lines.append(diff.summary())
    return "\n".join(lines)


def attribution_markdown(
    pairs: list[tuple[str, RunDiff]],
    *,
    title: str = "Regression attribution",
) -> str:
    """A markdown table over many diffs (one row per combination).

    ``pairs`` maps a display name (``dataset/algorithm/backend``) to its
    diff; rows are ordered slowest-ratio first so the likeliest culprit
    tops the CI step summary.
    """
    lines = [f"### {title}", ""]
    if not pairs:
        lines.append("_no comparable runs_")
        return "\n".join(lines)
    lines.append("| run | ratio | phase attribution | counters moved |")
    lines.append("|---|---|---|---|")
    for name, diff in sorted(
        pairs, key=lambda item: item[1].ratio, reverse=True
    ):
        moved = diff.moved_phases()
        phase_cell = (
            "; ".join(p.describe() for p in moved[:3]) if moved else "-"
        )
        counter_cell = (
            "; ".join(c.describe() for c in diff.counters[:3])
            if diff.counters
            else "-"
        )
        ratio = (
            f"{diff.ratio:.2f}x" if diff.total_a > 0.0 else "new"
        )
        lines.append(
            f"| {name} | {ratio} | {phase_cell} | {counter_cell} |"
        )
    return "\n".join(lines)
