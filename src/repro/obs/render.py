"""ASCII trace rendering: timeline, phase table, per-worker tracks.

The terminal twin of the Chrome exporter, following the
:mod:`repro.bench.ascii` conventions (block characters, sparklines, no
plotting stack).  :func:`render_trace` produces the full report printed
by ``python -m repro trace``; :func:`skew_lines` formats the per-worker
imbalance summary that ``compare --profile`` appends for process-backend
runs.
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import Trace

__all__ = ["render_trace", "skew_lines", "timeline_bar"]

_BAR = "█"
_PAD = "·"


def timeline_bar(
    intervals: list[tuple[float, float]],
    origin: float,
    total: float,
    width: int,
) -> str:
    """A ``width``-character strip marking ``intervals`` on ``[origin,
    origin+total)`` with solid blocks (non-empty intervals always mark at
    least one cell)."""
    if total <= 0 or width <= 0:
        return _PAD * max(width, 0)
    cells = [False] * width
    for t0, t1 in intervals:
        lo = int((t0 - origin) / total * width)
        hi = int((t1 - origin) / total * width)
        lo = min(max(lo, 0), width - 1)
        hi = min(max(hi, lo + 1), width)
        for i in range(lo, hi):
            cells[i] = True
    return "".join(_BAR if c else _PAD for c in cells)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}"


def skew_lines(skew: dict[str, dict[str, float]]) -> list[str]:
    """Human-readable per-phase worker-skew lines (max/mean block time).

    ``skew`` is the :meth:`~repro.obs.trace.Trace.worker_skew` mapping
    (or its JSON round-trip); phases appear in recording order.  Missing
    statistics render as zeros instead of raising, so the renderer keeps
    working on skew maps written by other tool versions.
    """
    lines = []
    for label, stats in skew.items():
        if not isinstance(stats, dict):
            continue
        lines.append(
            f"{label:<10} {float(stats.get('skew', 1.0)):5.2f}x  "
            f"(max {_fmt_ms(float(stats.get('max_s', 0.0)))} ms, "
            f"mean {_fmt_ms(float(stats.get('mean_s', 0.0)))} ms, "
            f"{int(stats.get('tasks', 0))} tasks)"
        )
    return lines


def render_trace(trace: Trace, *, width: int = 48) -> str:
    """Multi-section ASCII report of a trace.

    Sections: a provenance header; the span tree with durations and a
    shared-timeline strip per span; per-worker track rows (process-backend
    runs); the worker-skew table; counters and histogram summaries.
    """
    origin = trace.t0
    total = max(trace.t1 - origin, 0.0)
    meta = trace.meta
    title = meta.get("algorithm") or "trace"
    qualifiers = [str(meta[k]) for k in ("backend", "workers") if meta.get(k)]
    header = title + (f" [{', '.join(qualifiers)}]" if qualifiers else "")
    lines = [
        f"trace: {header} — {_fmt_ms(total)} ms wall, "
        f"{trace.num_spans()} spans"
    ]

    main_spans = [
        (span, depth)
        for span, depth in trace.walk()
        if span.track is None
    ]
    # Column width tracks the deepest/longest label (fused HS<i> rounds,
    # attribute-heavy phases) so unknown vocabularies stay aligned.
    name_width = max(
        [22] + [2 * d + len(str(s.label)) for s, d in main_spans]
    )
    lines.append("")
    lines.append(f"{'span':<{name_width}} {'ms':>10} {'%':>7}  timeline")
    for span, depth in main_spans:
        name = "  " * depth + str(span.label)
        share = span.duration / total if total else 0.0
        bar = timeline_bar(
            [(span.t0, span.t1 or span.t0)], origin, total, width
        )
        open_mark = "" if span.t1 is not None else "  (open)"
        lines.append(
            f"{name:<{name_width}} {_fmt_ms(span.duration):>10}"
            f" {share:>6.1%}  {bar}{open_mark}"
        )

    tracks = trace.tracks()
    if tracks:
        by_track: dict[str, list] = {t: [] for t in tracks}
        for span in trace.worker_spans():
            by_track[span.track].append(span)  # type: ignore[index]
        lines.append("")
        lines.append("worker tracks:")
        for track in tracks:
            spans = by_track[track]
            busy = sum(s.duration for s in spans)
            share = busy / total if total else 0.0
            bar = timeline_bar(
                [(s.t0, s.t1 or s.t0) for s in spans], origin, total, width
            )
            lines.append(
                f"  {track:<12} {bar}  {len(spans)} tasks, "
                f"busy {_fmt_ms(busy)} ms ({share:.0%})"
            )
        skew = trace.worker_skew()
        if skew:
            lines.append("")
            lines.append("worker skew (max/mean block time per phase):")
            lines.extend("  " + line for line in skew_lines(skew))

    if trace.counters:
        lines.append("")
        parts = ", ".join(
            f"{k}={v}" for k, v in sorted(trace.counters.items())
        )
        lines.append(f"counters: {parts}")
    if trace.gauges:
        lines.append("")
        parts = ", ".join(
            f"{k}={v:g}" for k, v in sorted(trace.gauges.items())
        )
        lines.append(f"gauges: {parts}")
    if trace.histograms:
        lines.append("")
        lines.append("histograms:")
        lines.extend(_histogram_lines(trace.histograms))
    return "\n".join(lines)


def _histogram_lines(histograms: dict[str, dict[str, Any]]) -> list[str]:
    """One summary + sparkline line per histogram."""
    from repro.bench.ascii import sparkline  # lazy: bench imports the engine

    lines = []
    for name, summary in sorted(histograms.items()):
        if not isinstance(summary, dict):
            lines.append(f"  {name}: (unreadable summary)")
            continue
        count = summary.get("count", 0)
        if not count:
            lines.append(f"  {name}: empty")
            continue
        spark = sparkline(
            [float(v) for v in (summary.get("buckets") or {}).values()]
        )
        lines.append(
            f"  {name}: n={count} mean={summary.get('mean', 0.0):.3g} "
            f"min={summary.get('min', 0.0):.3g} "
            f"max={summary.get('max', 0.0):.3g}  {spark}"
        )
    return lines
