"""The run ledger: a durable, append-only store of run records.

Counters and spans evaporate when the process exits; the ledger is the
piece that makes them durable.  Every recorded ``engine.run`` or
benchmark invocation appends one self-contained :class:`RunRecord` — a
JSON line carrying plan provenance, the backend and worker count, a
graph fingerprint, per-phase wall seconds from the trace, every
counter/gauge/histogram snapshot, the label dtype the run actually
used, and an environment snapshot — to a JSONL file (default
``.repro/ledger.jsonl``; override per-ledger or via the
``REPRO_LEDGER`` environment variable).

Records are self-contained on purpose: two entries can be diffed
(:mod:`repro.obs.diff`) or exported as Prometheus text
(:mod:`repro.obs.promexport`) weeks apart, on another machine, without
the graph or the code that produced them.

The module is dependency-light by design (stdlib + the trace types):
it imports nothing from :mod:`repro.engine` or :mod:`repro.bench`, so
both layers can write to it without cycles.  Results and graphs are
duck-typed for the same reason.
"""

from __future__ import annotations

import json
import os
import platform
import time
import uuid
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Any

from repro.obs.trace import Trace

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_ENV",
    "RunLedger",
    "RunRecord",
    "env_snapshot",
    "fingerprint_graph",
    "record_from_result",
    "resolve_ledger",
]

#: ledger location used when neither the caller nor the environment says
#: otherwise (relative to the current working directory).
DEFAULT_LEDGER_PATH = ".repro/ledger.jsonl"

#: environment variable naming the ledger file; when set, ``engine.run``
#: records every run there without being asked per-call.
LEDGER_ENV = "REPRO_LEDGER"

#: elements sampled from each CSR array when fingerprinting a graph.
_FINGERPRINT_SAMPLE = 1024


def fingerprint_graph(graph: Any) -> dict[str, Any]:
    """A compact, stable identity for a graph: sizes plus a digest.

    The digest hashes the vertex/edge counts and a strided sample of the
    CSR arrays (up to :data:`_FINGERPRINT_SAMPLE` elements each), so it
    is cheap on huge graphs yet changes whenever the topology does.
    Works on anything exposing ``num_vertices`` and an edge count
    (``num_directed_edges`` preferred: on CSR graphs the undirected
    ``num_edges`` pays a full self-loop scan, too slow for a per-run
    fingerprint) and, optionally, ``indptr`` / ``indices``.
    """
    n = int(getattr(graph, "num_vertices", 0))
    m = getattr(graph, "num_directed_edges", None)
    if m is None:
        m = getattr(graph, "num_edges", 0)
    m = int(m)
    h = blake2b(digest_size=8)
    h.update(f"{n}:{m}".encode())
    for attr in ("indptr", "indices"):
        arr = getattr(graph, attr, None)
        if arr is None:
            continue
        step = max(1, len(arr) // _FINGERPRINT_SAMPLE)
        sample = arr[::step]
        h.update(
            sample.tobytes()
            if hasattr(sample, "tobytes")
            else bytes(sample)
        )
    return {"vertices": n, "edges": m, "digest": h.hexdigest()}


def env_snapshot() -> dict[str, Any]:
    """The environment facts worth keeping next to a measurement."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pid": os.getpid(),
        "cpu_count": os.cpu_count(),
    }


def _new_run_id(timestamp: float) -> str:
    return f"r{int(timestamp * 1000):012x}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunRecord:
    """One ledger entry: everything a later diff needs, self-contained.

    ``kind`` distinguishes the writer (``"engine.run"`` vs ``"bench"``);
    ``seconds`` is the run's wall time as measured by the writer (for
    bench records, the median over samples); ``meta`` is free-form
    writer context (dataset name, sample count, plan params).
    """

    run_id: str = ""
    timestamp: float = 0.0
    kind: str = "engine.run"
    algorithm: str = ""
    plan: str = ""
    backend: str = ""
    workers: int | None = None
    graph: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, Any] = field(default_factory=dict)
    label_dtype_bits: int | None = None
    num_components: int | None = None
    env: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        """Short human identity: ``algorithm/dataset/backend``."""
        dataset = self.meta.get("dataset") or self.graph.get("digest") or "?"
        parts = [self.algorithm or self.plan or "?", str(dataset)]
        if self.backend:
            parts.append(self.backend)
        return "/".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        d: dict[str, Any] = {
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "algorithm": self.algorithm,
            "plan": self.plan,
            "backend": self.backend,
            "workers": self.workers,
            "graph": self.graph,
            "seconds": self.seconds,
            "phase_seconds": self.phase_seconds,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "label_dtype_bits": self.label_dtype_bits,
            "num_components": self.num_components,
            "env": self.env,
            "meta": self.meta,
        }
        return d

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        """Rebuild a record, tolerating extra/missing keys."""
        rec = cls()
        for key in (
            "run_id",
            "kind",
            "algorithm",
            "plan",
            "backend",
        ):
            value = data.get(key)
            if value is not None:
                setattr(rec, key, str(value))
        rec.timestamp = float(data.get("timestamp") or 0.0)
        rec.seconds = float(data.get("seconds") or 0.0)
        workers = data.get("workers")
        rec.workers = None if workers is None else int(workers)
        bits = data.get("label_dtype_bits")
        rec.label_dtype_bits = None if bits is None else int(bits)
        comps = data.get("num_components")
        rec.num_components = None if comps is None else int(comps)
        for key in (
            "graph",
            "phase_seconds",
            "counters",
            "gauges",
            "histograms",
            "env",
            "meta",
        ):
            value = data.get(key)
            if isinstance(value, dict):
                setattr(rec, key, dict(value))
        return rec


def record_from_result(
    result: Any,
    *,
    graph: Any = None,
    kind: str = "engine.run",
    seconds: float | None = None,
    timestamp: float | None = None,
    meta: dict[str, Any] | None = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a finished run.

    ``result`` is duck-typed against :class:`~repro.engine.result.CCResult`
    (``algorithm``/``plan``/``backend``/``counters``/``phase_seconds``/
    ``trace``/``num_components``); anything missing stays at its default,
    so bench callers can pass lighter objects.
    """
    trace = getattr(result, "trace", None)
    gauges: dict[str, float] = {}
    histograms: dict[str, Any] = {}
    workers: int | None = None
    if isinstance(trace, Trace):
        gauges = dict(trace.gauges)
        histograms = dict(trace.histograms)
        raw_workers = trace.meta.get("workers")
        workers = None if raw_workers is None else int(raw_workers)
    bits = gauges.get("label_dtype_bits")
    now = time.time() if timestamp is None else timestamp
    total = getattr(result, "phase_seconds", {}).get("total", 0.0)
    try:
        components = int(getattr(result, "num_components"))
    except Exception:
        components = None
    return RunRecord(
        run_id=_new_run_id(now),
        timestamp=now,
        kind=kind,
        algorithm=str(getattr(result, "algorithm", "") or ""),
        plan=str(getattr(result, "plan", "") or ""),
        backend=str(getattr(result, "backend", "") or ""),
        workers=workers,
        graph=fingerprint_graph(graph) if graph is not None else {},
        seconds=float(total if seconds is None else seconds),
        phase_seconds=dict(getattr(result, "phase_seconds", {}) or {}),
        counters=dict(getattr(result, "counters", {}) or {}),
        gauges=gauges,
        histograms=histograms,
        label_dtype_bits=None if bits is None else int(bits),
        num_components=components,
        env=env_snapshot(),
        meta=dict(meta or {}),
    )


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord` entries.

    Appends are single ``write()`` calls of one line, so concurrent
    writers (the process backend's parent, parallel bench shards) can
    share a ledger without a lock on POSIX filesystems.  Reads tolerate
    malformed lines — a torn write costs one record, not the ledger.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            path = os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_PATH
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({str(self.path)!r})"

    def append(self, record: RunRecord) -> RunRecord:
        """Write one record; creates the ledger (and parents) on demand."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        return record

    def records(self) -> list[RunRecord]:
        """Every readable record, oldest first ([] for a missing file)."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if isinstance(data, dict) and data.get("run_id"):
                out.append(RunRecord.from_dict(data))
        return out

    def last(self, n: int = 1) -> list[RunRecord]:
        """The most recent ``n`` records, oldest of them first."""
        return self.records()[-n:]

    def resolve(self, ref: str) -> RunRecord:
        """A record by reference: run-id prefix, ``latest``, or ``-N``.

        ``-1`` is the newest entry, ``-2`` the one before, mirroring git
        revision arithmetic; any other string matches records whose
        ``run_id`` starts with it and must be unambiguous.
        """
        from repro.errors import ConfigurationError

        records = self.records()
        if not records:
            raise ConfigurationError(f"ledger {self.path} has no records")
        if ref in ("latest", "last", "-1"):
            return records[-1]
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None and index < 0:
            if -index > len(records):
                raise ConfigurationError(
                    f"ledger {self.path} has only {len(records)} records"
                    f" (asked for {ref})"
                )
            return records[index]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise ConfigurationError(
                f"no ledger record matches {ref!r} in {self.path}"
            )
        if len(matches) > 1:
            ids = ", ".join(r.run_id for r in matches[:4])
            raise ConfigurationError(
                f"run reference {ref!r} is ambiguous ({ids}, ...)"
            )
        return matches[0]


def resolve_ledger(
    record: bool | str | Path | RunLedger | None,
) -> RunLedger | None:
    """Normalise ``engine.run(record=...)`` into a ledger (or None).

    ``None`` consults :data:`LEDGER_ENV` — recording stays off unless
    the variable names a file.  ``True`` uses the default resolution
    chain, ``False`` forces recording off, a path records there, and a
    ready :class:`RunLedger` is used as-is.
    """
    if record is None:
        return RunLedger() if os.environ.get(LEDGER_ENV) else None
    if record is False:
        return None
    if record is True:
        return RunLedger()
    if isinstance(record, RunLedger):
        return record
    return RunLedger(record)
