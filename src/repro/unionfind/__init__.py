"""Parent-array (π) machinery and the sequential union-find ground truth."""

from repro.unionfind.parent import ParentArray
from repro.unionfind.sequential import SequentialUnionFind, sequential_components

__all__ = ["ParentArray", "SequentialUnionFind", "sequential_components"]
