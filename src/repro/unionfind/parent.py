"""The parent array π: the central data structure of the SV/Afforest family.

:class:`ParentArray` wraps a flat ``int64`` array of parent pointers with the
diagnostics the paper's analysis needs: Invariant-1 checking (``pi[x] <= x``,
Sec. III-A), cycle detection, per-vertex tree depth, root/tree census, and
conversion to a canonical component labeling.

Hot algorithm kernels operate on the raw ndarray (``ParentArray.pi``); the
wrapper methods are for validation, analysis and tests.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import InvariantViolationError


class ParentArray:
    """Parent-pointer forest over ``n`` vertices.

    Construction initialises every vertex self-pointing (``pi[v] = v``),
    matching line 1 of both SV (Fig. 1) and Afforest (Fig. 5).
    """

    __slots__ = ("_pi",)

    def __init__(self, n_or_array: int | np.ndarray) -> None:
        if isinstance(n_or_array, (int, np.integer)):
            self._pi = np.arange(int(n_or_array), dtype=VERTEX_DTYPE)
        else:
            arr = np.ascontiguousarray(n_or_array, dtype=VERTEX_DTYPE)
            if arr.ndim != 1:
                raise InvariantViolationError("parent array must be 1-D")
            if arr.size and (arr.min() < 0 or arr.max() >= arr.size):
                raise InvariantViolationError(
                    "parent pointers must lie within [0, n)"
                )
            self._pi = arr.copy()

    # ------------------------------------------------------------------ #
    # raw access
    # ------------------------------------------------------------------ #

    @property
    def pi(self) -> np.ndarray:
        """The underlying mutable parent array (hot kernels write here)."""
        return self._pi

    @property
    def num_vertices(self) -> int:
        return int(self._pi.shape[0])

    def copy(self) -> "ParentArray":
        return ParentArray(self._pi)

    def __len__(self) -> int:
        return self.num_vertices

    def __getitem__(self, v: int) -> int:
        return int(self._pi[v])

    # ------------------------------------------------------------------ #
    # invariants & diagnostics
    # ------------------------------------------------------------------ #

    def check_invariant1(self) -> None:
        """Assert Invariant 1 of the paper: ``pi[x] <= x`` for every x.

        Lemma 1 derives acyclicity (for cycles of length >= 2) from this
        invariant; it must hold after every ``link``/``compress``.
        """
        bad = np.nonzero(self._pi > np.arange(self.num_vertices, dtype=VERTEX_DTYPE))[0]
        if bad.size:
            v = int(bad[0])
            raise InvariantViolationError(
                f"Invariant 1 violated at vertex {v}: pi[{v}] = {int(self._pi[v])} > {v}"
                f" ({bad.size} violations total)"
            )

    def holds_invariant1(self) -> bool:
        """Non-raising form of :meth:`check_invariant1`."""
        return bool(np.all(self._pi <= np.arange(self.num_vertices, dtype=VERTEX_DTYPE)))

    def has_cycle(self) -> bool:
        """True if π contains a cycle of length >= 2 (self loops at roots
        are the normal terminal state, not cycles).

        Exact O(n): walk each unvisited chain, marking vertices as
        on-the-current-path (1) or settled (2).  Revisiting a vertex on the
        current path means a cycle; reaching a settled vertex or a root does
        not.
        """
        n = self.num_vertices
        pi = self._pi
        state = np.zeros(n, dtype=np.int8)
        for start in range(n):
            if state[start] != 0:
                continue
            path = []
            v = start
            while True:
                if state[v] == 1:
                    return True  # hit our own in-progress path
                if state[v] == 2:
                    break  # joins a previously settled chain
                state[v] = 1
                path.append(v)
                p = int(pi[v])
                if p == v:
                    break  # root
                v = p
            for u in path:
                state[u] = 2
        return False

    def roots(self) -> np.ndarray:
        """Ids of root vertices (``pi[v] == v``)."""
        idx = np.arange(self.num_vertices, dtype=VERTEX_DTYPE)
        return idx[self._pi == idx]

    def num_trees(self) -> int:
        """Number of trees in the forest (= number of roots)."""
        idx = np.arange(self.num_vertices, dtype=VERTEX_DTYPE)
        return int(np.count_nonzero(self._pi == idx))

    def find_root(self, v: int) -> int:
        """Walk parent pointers from ``v`` to its root (no path mutation)."""
        pi = self._pi
        seen = 0
        n = self.num_vertices
        while pi[v] != v:
            v = int(pi[v])
            seen += 1
            if seen > n:
                raise InvariantViolationError("cycle encountered in parent array")
        return v

    def depth(self, v: int) -> int:
        """Number of parent hops from ``v`` to its root."""
        pi = self._pi
        d = 0
        n = self.num_vertices
        while pi[v] != v:
            v = int(pi[v])
            d += 1
            if d > n:
                raise InvariantViolationError("cycle encountered in parent array")
        return d

    def depths(self) -> np.ndarray:
        """Depth of every vertex, computed in O(n) total via memoisation."""
        n = self.num_vertices
        pi = self._pi
        depths = np.full(n, -1, dtype=VERTEX_DTYPE)
        idx = np.arange(n, dtype=VERTEX_DTYPE)
        depths[pi == idx] = 0
        for v in range(n):
            if depths[v] >= 0:
                continue
            path = []
            x = v
            while depths[x] < 0:
                path.append(x)
                x = int(pi[x])
                if len(path) > n:
                    raise InvariantViolationError("cycle encountered in parent array")
            base = int(depths[x])
            for i, u in enumerate(reversed(path), start=1):
                depths[u] = base + i
        return depths

    def max_depth(self) -> int:
        """Maximum tree depth in the forest (0 for a fully compressed one)."""
        if self.num_vertices == 0:
            return 0
        return int(self.depths().max())

    def is_flat(self) -> bool:
        """True when every tree has depth <= 1 (post-``compress`` state)."""
        return bool(np.all(self._pi[self._pi] == self._pi))

    # ------------------------------------------------------------------ #
    # labeling
    # ------------------------------------------------------------------ #

    def labels(self) -> np.ndarray:
        """Component label (root id) of every vertex.

        Fully resolves chains regardless of current compression state.
        """
        pi = self._pi.copy()
        n = self.num_vertices
        # Pointer doubling: O(log depth) passes, each a vectorised gather.
        for _ in range(n + 1):
            nxt = pi[pi]
            if np.array_equal(nxt, pi):
                return pi
            pi = nxt
        raise InvariantViolationError("cycle encountered in parent array")

    def tree_sizes(self) -> dict[int, int]:
        """Mapping root id -> number of vertices in its tree."""
        lab = self.labels()
        roots, counts = np.unique(lab, return_counts=True)
        return {int(r): int(c) for r, c in zip(roots, counts)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParentArray(n={self.num_vertices}, trees={self.num_trees()})"
