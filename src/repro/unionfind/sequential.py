"""Sequential union-find: the ground-truth connectivity oracle.

A classic disjoint-set forest with union by rank and path halving — the
near-linear sequential baseline every parallel algorithm in the library is
verified against.  Kept deliberately independent of the Afforest machinery
(no Invariant-1 direction constraint) so that a shared bug cannot mask
itself.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.graph.csr import CSRGraph


class SequentialUnionFind:
    """Disjoint-set forest with union by rank and path halving."""

    __slots__ = ("_parent", "_rank", "_num_sets")

    def __init__(self, n: int) -> None:
        self._parent = np.arange(n, dtype=VERTEX_DTYPE)
        self._rank = np.zeros(n, dtype=np.int8)
        self._num_sets = int(n)

    @property
    def num_sets(self) -> int:
        """Current number of disjoint sets."""
        return self._num_sets

    def find(self, v: int) -> int:
        """Root of ``v``'s set, halving the path as a side effect."""
        parent = self._parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = int(parent[v])
        return v

    def union(self, u: int, v: int) -> bool:
        """Merge the sets of ``u`` and ``v``; True if they were distinct."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        rank = self._rank
        if rank[ru] < rank[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        if rank[ru] == rank[rv]:
            rank[ru] += 1
        self._num_sets -= 1
        return True

    def connected(self, u: int, v: int) -> bool:
        """True if ``u`` and ``v`` are in the same set."""
        return self.find(u) == self.find(v)

    def labels(self) -> np.ndarray:
        """Root id of every vertex (a valid CC labeling)."""
        n = self._parent.shape[0]
        out = np.empty(n, dtype=VERTEX_DTYPE)
        for v in range(n):
            out[v] = self.find(v)
        return out


def sequential_components(graph: CSRGraph) -> np.ndarray:
    """Exact connected-component labels of ``graph`` via sequential
    union-find.

    Labels are root ids of the disjoint-set forest; use
    :func:`repro.analysis.verify.canonical_labels` to normalise before
    comparing labelings from different algorithms.
    """
    uf = SequentialUnionFind(graph.num_vertices)
    src, dst = graph.undirected_edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        uf.union(u, v)
    return uf.labels()
