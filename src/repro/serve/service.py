"""The connectivity service: solve once, answer forever, absorb streams.

A :class:`ConnectivityService` is the long-lived core of the serving
layer.  It solves a graph exactly once through :func:`repro.engine.run`
(any plan, any backend), then keeps two things hot:

- a fully compressed **label array** (``labels[v]`` is the minimum
  vertex id of ``v``'s component — the same canonical labeling every
  engine finish produces), and
- a **component-size census** (``sizes[root]`` = component population),

so ``same_component(u, v)`` and ``component_size(v)`` are O(1) array
gathers, and the batch forms are one vectorized gather for the whole
request batch.

Edge insertions stream into an
:class:`~repro.core.incremental.IncrementalConnectivity` seeded from the
solved labels (Afforest's ``link`` is an order-independent edge
insertion, Theorem 1), and a configurable **re-compression policy**
periodically flattens the parent forest and republishes the hot arrays.

Consistency is *epochal*: readers always see a complete, immutable
:class:`Snapshot` — labels, census, component count, all from the same
generation — never a half-updated parent array.  Publishing a new epoch
is a single reference swap, so a reader holding epoch ``e`` keeps a
coherent view while epoch ``e+1`` is being built.  Because both the
batch solve and the incremental path label every component by its
minimum vertex id, the labels published at each epoch are bit-identical
to a from-scratch batch re-solve of the base graph plus every edge
inserted so far — the invariant the serving benchmark's oracle gate
checks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.incremental import IncrementalConnectivity
from repro.engine import ExecutionBackend
from repro.errors import ConfigurationError
from repro.graph.builder import from_edge_array
from repro.graph.csr import CSRGraph
from repro.obs.ledger import fingerprint_graph
from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import render_prometheus

__all__ = ["ConnectivityService", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One epoch's immutable, self-consistent view of connectivity.

    ``labels`` and ``sizes`` are read-only arrays (writes raise), so a
    snapshot handed to a reader can never tear: every field was derived
    from the same compressed parent array, and nothing mutates after
    publication.  ``edges_applied`` counts the stream edges absorbed
    into this epoch — the oracle handle for re-solve verification.
    """

    epoch: int
    labels: np.ndarray
    sizes: np.ndarray
    num_components: int
    edges_applied: int

    @property
    def num_vertices(self) -> int:
        return int(self.labels.shape[0])

    def same_component(self, u: int, v: int) -> bool:
        """O(1): do ``u`` and ``v`` share a component in this epoch?"""
        self._check(u)
        self._check(v)
        return bool(self.labels[u] == self.labels[v])

    def component_size(self, v: int) -> int:
        """O(1): population of ``v``'s component in this epoch."""
        self._check(v)
        return int(self.sizes[self.labels[v]])

    def same_component_batch(
        self, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """One vectorized gather answering every ``(us[i], vs[i])`` pair."""
        us = self._check_batch(us)
        vs = self._check_batch(vs)
        if us.shape != vs.shape:
            raise ConfigurationError("us/vs must have equal length")
        return self.labels[us] == self.labels[vs]

    def component_sizes(self, vs: np.ndarray) -> np.ndarray:
        """One vectorized gather of component sizes for a vertex batch."""
        vs = self._check_batch(vs)
        return self.sizes[self.labels[vs]]

    def _check(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise ConfigurationError(
                f"vertex {v} out of range for {self.num_vertices}-vertex"
                " universe"
            )

    def _check_batch(self, vs: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(vs, dtype=np.int64)
        if arr.size and (
            int(arr.min()) < 0 or int(arr.max()) >= self.num_vertices
        ):
            raise ConfigurationError(
                f"vertex batch out of range for {self.num_vertices}-vertex"
                " universe"
            )
        return arr


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


class ConnectivityService:
    """A long-lived query/update connectivity engine over one graph.

    Parameters
    ----------
    graph:
        The base graph, solved once at construction.
    algorithm:
        Registered algorithm or composed plan name for the initial
        solve (anything :func:`repro.engine.run` accepts, including
        ``auto``).
    backend, workers:
        Execution substrate for the initial solve (kind string or a
        ready :class:`~repro.engine.ExecutionBackend`); the serving
        loop itself is pure vectorized NumPy.
    recompress_every:
        Stream edges absorbed between re-compression epochs.  ``0``
        defers publication entirely to explicit :meth:`refresh` calls.
    dataset:
        Optional human name carried into telemetry and ledger records.
    on_epoch:
        Callback invoked as ``on_epoch(snapshot)`` after each new epoch
        publishes — the hook the benchmark's oracle gate uses to verify
        bit-identity against a batch re-solve.
    metrics:
        A shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        service creates an enabled one when not given (the request
        layer records into the same registry, so one Prometheus scrape
        covers the whole serving session).
    params:
        Extra keyword parameters forwarded to the initial solve.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        algorithm: str = "afforest",
        backend: ExecutionBackend | str | None = None,
        workers: int | None = None,
        recompress_every: int = 4096,
        dataset: str | None = None,
        on_epoch: Callable[[Snapshot], object] | None = None,
        metrics: MetricsRegistry | None = None,
        **params: Any,
    ) -> None:
        if recompress_every < 0:
            raise ConfigurationError(
                f"recompress_every must be >= 0, got {recompress_every}"
            )
        from repro import engine

        self.graph = graph
        self.algorithm = algorithm
        self.dataset = dataset
        self.fingerprint = fingerprint_graph(graph)
        self.recompress_every = recompress_every
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.on_epoch = on_epoch
        result = engine.run(
            algorithm, graph, backend=backend, workers=workers, **params
        )
        self.plan = result.plan
        self.backend_kind = result.backend
        # The solved labeling doubles as a depth-one parent forest; the
        # incremental layer adopts it and absorbs the stream from there.
        self._inc = IncrementalConnectivity.from_labels(
            result.labels, compress_every=0
        )
        self._lock = threading.Lock()
        self._since_epoch = 0
        self._inserted_src: list[np.ndarray] = []
        self._inserted_dst: list[np.ndarray] = []
        self._edges_applied = 0
        self._snapshot = self._build_snapshot(epoch=0)
        self._stamp_gauges()

    # ------------------------------------------------------------------ #
    # reads — always O(1)/O(batch) against the published snapshot
    # ------------------------------------------------------------------ #

    @property
    def snapshot(self) -> Snapshot:
        """The latest published epoch (grab once for multi-query reads)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    @property
    def num_vertices(self) -> int:
        return self._snapshot.num_vertices

    @property
    def num_components(self) -> int:
        return self._snapshot.num_components

    @property
    def pending_updates(self) -> int:
        """Stream edges absorbed but not yet published in an epoch."""
        return self._since_epoch

    def labels(self) -> np.ndarray:
        """The current epoch's full labeling (read-only view)."""
        return self._snapshot.labels

    def same_component(self, u: int, v: int) -> bool:
        """O(1) point query against the current epoch."""
        self.metrics.counter("serve_point_queries").inc()
        return self._snapshot.same_component(u, v)

    def component_size(self, v: int) -> int:
        """O(1) component population against the current epoch."""
        self.metrics.counter("serve_point_queries").inc()
        return self._snapshot.component_size(v)

    def same_component_batch(
        self, us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """Vectorized pair query against the current epoch."""
        out = self._snapshot.same_component_batch(us, vs)
        self.metrics.counter("serve_batch_queries").inc()
        self.metrics.counter("serve_queried_pairs").inc(int(out.shape[0]))
        return out

    def component_sizes(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized size query against the current epoch."""
        out = self._snapshot.component_sizes(vs)
        self.metrics.counter("serve_batch_queries").inc()
        self.metrics.counter("serve_queried_pairs").inc(int(out.shape[0]))
        return out

    # ------------------------------------------------------------------ #
    # updates — absorbed immediately, published epochally
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int) -> int:
        """Insert one stream edge; returns the epoch it will publish in."""
        return self.add_edges(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
        )

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Absorb a batch of stream edges through link/compress.

        The edges take effect in the parent forest immediately (so a
        later re-solve sees them regardless of epoch boundaries) but
        become *visible to readers* when the next epoch publishes —
        after ``recompress_every`` absorbed edges, or at an explicit
        :meth:`refresh`.  Returns the current epoch number.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        with self._lock:
            self._inc.add_edges(src, dst)
            self._inserted_src.append(src)
            self._inserted_dst.append(dst)
            self._edges_applied += int(src.shape[0])
            self._since_epoch += int(src.shape[0])
            self.metrics.counter("serve_updates").inc()
            self.metrics.counter("serve_edges_inserted").inc(
                int(src.shape[0])
            )
            if (
                self.recompress_every
                and self._since_epoch >= self.recompress_every
            ):
                self._publish_locked()
            else:
                self.metrics.gauge("serve_pending_updates").set(
                    self._since_epoch
                )
        return self.epoch

    def refresh(self) -> int:
        """Publish pending updates as a new epoch now; returns the epoch.

        A no-op (same epoch back) when nothing is pending, so callers
        can refresh defensively without burning generation numbers.
        """
        with self._lock:
            if self._since_epoch:
                self._publish_locked()
        return self.epoch

    # ------------------------------------------------------------------ #
    # oracle support and telemetry
    # ------------------------------------------------------------------ #

    def inserted_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Every stream edge absorbed so far, in insertion order."""
        with self._lock:
            if not self._inserted_src:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            return (
                np.concatenate(self._inserted_src),
                np.concatenate(self._inserted_dst),
            )

    def batch_resolve(self, edges_applied: int | None = None) -> np.ndarray:
        """From-scratch batch re-solve of base graph + absorbed stream.

        Rebuilds the CSR from the base edges plus the first
        ``edges_applied`` stream edges (default: all of them) and runs
        the service's algorithm on it — the independent labeling the
        epoch invariant promises to match bit-for-bit.
        """
        from repro import engine

        src, dst = self.inserted_edges()
        if edges_applied is not None:
            src, dst = src[:edges_applied], dst[:edges_applied]
        base_src, base_dst = self.graph.undirected_edge_array()
        combined = from_edge_array(
            np.concatenate([base_src, src]),
            np.concatenate([base_dst, dst]),
            num_vertices=self.num_vertices,
        )
        return engine.run(self.algorithm, combined).labels

    def prometheus(self, **labels: Any) -> str:
        """The session's metrics in Prometheus text exposition format."""
        merged: dict[str, Any] = {
            "algorithm": self.algorithm,
            "backend": self.backend_kind,
        }
        if self.dataset:
            merged["dataset"] = self.dataset
        merged.update(labels)
        return render_prometheus(self.metrics, labels=merged)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _build_snapshot(self, epoch: int) -> Snapshot:
        labels = self._inc.labels()  # full compression + private copy
        sizes = np.bincount(labels, minlength=labels.shape[0])
        return Snapshot(
            epoch=epoch,
            labels=_frozen(labels),
            sizes=_frozen(sizes),
            num_components=self._inc.num_components,
            edges_applied=self._edges_applied,
        )

    def _publish_locked(self) -> None:
        snapshot = self._build_snapshot(self._snapshot.epoch + 1)
        # The swap is a single reference assignment: readers hold either
        # the old complete snapshot or the new one, never a mixture.
        self._snapshot = snapshot
        self._since_epoch = 0
        self.metrics.counter("serve_epochs").inc()
        self._stamp_gauges()
        if self.on_epoch is not None:
            self.on_epoch(snapshot)

    def _stamp_gauges(self) -> None:
        self.metrics.gauge("serve_epoch").set(self._snapshot.epoch)
        self.metrics.gauge("serve_components").set(
            self._snapshot.num_components
        )
        self.metrics.gauge("serve_pending_updates").set(self._since_epoch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConnectivityService({self.algorithm!r}, "
            f"n={self.num_vertices}, epoch={self.epoch}, "
            f"components={self.num_components})"
        )
