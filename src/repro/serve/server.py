"""The request layer: a worker loop with batching and backpressure.

:class:`ConnectivityServer` wraps a
:class:`~repro.serve.service.ConnectivityService` in a single-consumer
request queue drained by a worker thread.  The loop's job is *request
coalescing*: it drains up to ``max_batch`` pending requests per wakeup
and answers each contiguous run of same-kind queries with **one**
vectorized gather against the epoch snapshot — a thousand
``same-component`` requests become one fancy-indexing operation —
while updates stay strictly ordered within the stream.

Flow control is explicit: the queue has a fixed depth (``max_queue``);
a non-blocking submit against a full queue raises
:class:`BackpressureError` (callers that prefer to wait pass
``block=True`` and are throttled by the queue itself).  Shutdown is
graceful: :meth:`stop` rejects new submissions, lets the loop drain
everything already accepted, then joins the thread — no accepted
request is ever dropped.

Telemetry rides on the service's shared
:class:`~repro.obs.metrics.MetricsRegistry` (latency and batch-size
histograms, queue-depth gauge, request/batch/coalesce counters), each
drained batch is recorded as an attributed span in an optional
:class:`~repro.obs.Tracer`, and :meth:`session_record` renders the
whole session as a durable ``kind="serve"``
:class:`~repro.obs.ledger.RunRecord` for the run ledger.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.obs.ledger import RunLedger, RunRecord, env_snapshot, resolve_ledger
from repro.obs.trace import Tracer
from repro.serve.service import ConnectivityService

__all__ = ["BackpressureError", "ConnectivityServer", "ServerClosedError"]


class BackpressureError(ReproError):
    """The request queue is full and the caller asked not to wait."""


class ServerClosedError(ReproError):
    """The server is stopped (or stopping) and rejects new requests."""


#: histogram bucket bounds for request latency, in microseconds.
_LATENCY_BUCKETS = tuple(float(2**k) for k in range(1, 24))

#: kinds whose requests coalesce into one vectorized call per run.
_QUERY_KINDS = frozenset({"same", "sizes"})


@dataclass
class _Request:
    kind: str
    payload: tuple[np.ndarray, ...] = ()
    future: Future = field(default_factory=Future)
    t_submit: float = 0.0


_SHUTDOWN = _Request(kind="__shutdown__")


class ConnectivityServer:
    """Batched request front-end over one :class:`ConnectivityService`.

    Parameters
    ----------
    service:
        The solved state to serve (queries *and* the update stream).
    max_batch:
        Requests drained per loop wakeup — the coalescing window.
    max_queue:
        Queue depth bound; the backpressure limit.
    trace:
        ``True`` (or a ready :class:`~repro.obs.Tracer`) records one
        attributed span per drained batch, capped at
        ``max_trace_spans`` to bound a long session's memory.
    record:
        Ledger destination for the session record written by
        :meth:`stop` — same forms as ``engine.run(record=...)``
        (``True``/path/:class:`~repro.obs.ledger.RunLedger`; default
        ``None`` consults ``REPRO_LEDGER``).
    """

    def __init__(
        self,
        service: ConnectivityService,
        *,
        max_batch: int = 256,
        max_queue: int = 1024,
        trace: Tracer | bool | None = None,
        record: bool | str | RunLedger | None = None,
        max_trace_spans: int = 4096,
    ) -> None:
        from repro.errors import ConfigurationError

        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
        self.service = service
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.metrics = service.metrics
        # The tracer shares the service's registry, so a finished trace
        # carries the session's counters/histograms next to its spans.
        self.tracer = (
            trace
            if isinstance(trace, Tracer)
            else Tracer(bool(trace), metrics=service.metrics)
        )
        self.max_trace_spans = max_trace_spans
        self._trace_spans = 0
        self._ledger = resolve_ledger(record)
        self._queue: queue.Queue[_Request] = queue.Queue(maxsize=max_queue)
        self._thread: threading.Thread | None = None
        self._closed = False
        self._started_at = 0.0
        self._stopped_at = 0.0
        self.run_id: str | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ConnectivityServer":
        """Start the worker loop (idempotent while running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        if self._closed:
            raise ServerClosedError("server was stopped; build a new one")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = None) -> RunRecord | None:
        """Drain accepted requests, stop the loop, record the session.

        New submissions are rejected from the moment ``stop`` is
        called; everything accepted before it completes normally.
        Returns the appended ledger record (None when recording is
        off).
        """
        if self._thread is None or self._stopped_at:
            return None
        if not self._closed:
            self._closed = True
            # The sentinel queues *behind* every accepted request, so
            # popping it proves the drain is complete.
            self._queue.put(_SHUTDOWN)
        self._thread.join(timeout)
        self._stopped_at = time.perf_counter()
        record = None
        if self._ledger is not None:
            record = self.session_record()
            self._ledger.append(record)
            self.run_id = record.run_id
        return record

    def __enter__(self) -> "ConnectivityServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit_same(
        self, us: np.ndarray, vs: np.ndarray, *, block: bool = True
    ) -> Future:
        """Queue a same-component pair batch; resolves to a bool array."""
        return self._submit("same", (np.asarray(us), np.asarray(vs)), block)

    def submit_sizes(self, vs: np.ndarray, *, block: bool = True) -> Future:
        """Queue a component-size batch; resolves to an int array."""
        return self._submit("sizes", (np.asarray(vs),), block)

    def submit_update(
        self, src: np.ndarray, dst: np.ndarray, *, block: bool = True
    ) -> Future:
        """Queue an edge-insertion batch; resolves to the current epoch."""
        return self._submit("update", (np.asarray(src), np.asarray(dst)), block)

    def submit_refresh(self, *, block: bool = True) -> Future:
        """Queue an explicit epoch publish; resolves to the new epoch."""
        return self._submit("refresh", (), block)

    def same_component(self, u: int, v: int) -> bool:
        """Synchronous point query through the full request path."""
        fut = self.submit_same(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
        )
        return bool(fut.result()[0])

    def component_size(self, v: int) -> int:
        """Synchronous size query through the full request path."""
        fut = self.submit_sizes(np.asarray([v], dtype=np.int64))
        return int(fut.result()[0])

    def _submit(
        self, kind: str, payload: tuple[np.ndarray, ...], block: bool
    ) -> Future:
        if self._closed or self._thread is None:
            self.metrics.counter("serve_rejected").inc()
            raise ServerClosedError(
                "server is not running; start() it before submitting"
            )
        req = _Request(kind=kind, payload=payload, t_submit=time.perf_counter())
        try:
            self._queue.put(req, block=block)
        except queue.Full:
            self.metrics.counter("serve_rejected").inc()
            raise BackpressureError(
                f"request queue at capacity ({self.max_queue}); retry later"
            ) from None
        self.metrics.counter("serve_requests").inc()
        return req.future

    # ------------------------------------------------------------------ #
    # the worker loop
    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while True:
            req = self._queue.get()
            if req is _SHUTDOWN:
                self._fail_stragglers()
                return
            batch = [req]
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    # Re-queue so the outer loop sees it after this
                    # batch completes; nothing can enqueue behind it.
                    self._queue.put(nxt)
                    break
                batch.append(nxt)
            self.metrics.gauge("serve_queue_depth").set(self._queue.qsize())
            self._run_batch(batch)

    def _fail_stragglers(self) -> None:
        """Resolve requests that raced past the closed check at stop().

        ``_submit`` checks ``_closed`` before enqueueing, so a request
        can land behind the sentinel only in the narrow window between
        that check and the flag flipping; failing its future here keeps
        the no-dangling-futures guarantee airtight.
        """
        while True:
            try:
                req = self._queue.get_nowait()
            except queue.Empty:
                return
            if req is not _SHUTDOWN and not req.future.done():
                req.future.set_exception(
                    ServerClosedError("server stopped before execution")
                )

    def _run_batch(self, batch: list[_Request]) -> None:
        t0 = time.perf_counter()
        self.metrics.counter("serve_batches").inc()
        self.metrics.histogram("serve_batch_size").observe(len(batch))
        # Contiguous same-kind query runs collapse into one vectorized
        # call; updates and refreshes execute in stream order between
        # them, so the observable sequence matches arrival order.
        runs: list[list[_Request]] = []
        for req in batch:
            if (
                runs
                and req.kind in _QUERY_KINDS
                and runs[-1][-1].kind == req.kind
            ):
                runs[-1].append(req)
            else:
                runs.append([req])
        for run in runs:
            self._execute_run(run)
        if self.tracer.enabled and self._trace_spans < self.max_trace_spans:
            self._trace_spans += 1
            self.tracer.add_span(
                "batch",
                t0,
                time.perf_counter(),
                size=len(batch),
                runs=len(runs),
                epoch=self.service.epoch,
            )
        elif self.tracer.enabled:
            self.metrics.counter("serve_trace_spans_dropped").inc()
        done = time.perf_counter()
        latency_us = self.metrics.histogram(
            "serve_latency_us", _LATENCY_BUCKETS
        )
        latency_us.observe_many(
            [(done - r.t_submit) * 1e6 for r in batch]
        )

    def _execute_run(self, run: list[_Request]) -> None:
        kind = run[0].kind
        try:
            if kind == "same":
                if len(run) > 1:
                    self.metrics.counter("serve_coalesced").inc(len(run))
                us = np.concatenate([r.payload[0] for r in run])
                vs = np.concatenate([r.payload[1] for r in run])
                answers = self.service.same_component_batch(us, vs)
                offset = 0
                for r in run:
                    width = int(np.asarray(r.payload[0]).shape[0])
                    r.future.set_result(answers[offset : offset + width])
                    offset += width
            elif kind == "sizes":
                if len(run) > 1:
                    self.metrics.counter("serve_coalesced").inc(len(run))
                vs = np.concatenate([r.payload[0] for r in run])
                sizes = self.service.component_sizes(vs)
                offset = 0
                for r in run:
                    width = int(np.asarray(r.payload[0]).shape[0])
                    r.future.set_result(sizes[offset : offset + width])
                    offset += width
            elif kind == "update":
                (req,) = run
                epoch = self.service.add_edges(req.payload[0], req.payload[1])
                req.future.set_result(epoch)
            elif kind == "refresh":
                (req,) = run
                req.future.set_result(self.service.refresh())
            else:  # pragma: no cover - submission layer owns the kinds
                raise ReproError(f"unknown request kind {kind!r}")
        except Exception as exc:
            self.metrics.counter("serve_errors").inc(len(run))
            for r in run:
                if not r.future.done():
                    r.future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # session accounting
    # ------------------------------------------------------------------ #

    def session_seconds(self) -> float:
        """Wall seconds the loop has been (or was) serving."""
        if not self._started_at:
            return 0.0
        end = self._stopped_at or time.perf_counter()
        return end - self._started_at

    def session_record(self, **meta: Any) -> RunRecord:
        """The session as a durable ``kind="serve"`` ledger record.

        Self-contained like every ledger entry: provenance (algorithm,
        backend, graph fingerprint), session wall seconds, the full
        counter/gauge/histogram snapshot of the shared registry, and
        free-form ``meta`` from the caller (the benchmark adds its
        workload mix here).
        """
        service = self.service
        counters = self.metrics.counters_snapshot()
        merged_meta: dict[str, Any] = {
            "requests": counters.get("serve_requests", 0),
            "epochs": service.epoch,
            "max_batch": self.max_batch,
            "max_queue": self.max_queue,
        }
        if service.dataset:
            merged_meta["dataset"] = service.dataset
        merged_meta.update(meta)
        now = time.time()
        record = RunRecord(
            run_id=f"s{int(now * 1000):012x}-{uuid.uuid4().hex[:6]}",
            timestamp=now,
            kind="serve",
            algorithm=service.algorithm,
            plan=service.plan,
            backend=service.backend_kind,
            graph=dict(service.fingerprint),
            seconds=self.session_seconds(),
            counters=counters,
            gauges=self.metrics.gauges_snapshot(),
            histograms=self.metrics.histogram_summaries(),
            num_components=service.num_components,
            env=env_snapshot(),
            meta=merged_meta,
        )
        return record
