"""A keyed cache of solved serving states.

A server that fronts many graphs should pay each graph's batch solve
once.  :class:`ServiceCache` keys ready
:class:`~repro.serve.service.ConnectivityService` instances by the
graph's content fingerprint (:func:`repro.obs.ledger.fingerprint_graph`
— vertex/edge counts plus a strided CSR digest) combined with the
solve-relevant configuration (algorithm and re-compression policy), so
the same topology arriving under two file names hits the same entry
while a different plan or policy gets its own solved state.

Eviction is LRU with a fixed capacity: serving labels are O(n) memory
per graph, so the cache bounds resident state, and the eviction counter
makes thrash visible in telemetry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.graph.csr import CSRGraph
from repro.obs.ledger import fingerprint_graph
from repro.obs.metrics import MetricsRegistry
from repro.serve.service import ConnectivityService

__all__ = ["ServiceCache"]


class ServiceCache:
    """LRU cache of :class:`ConnectivityService` keyed by graph identity.

    ``capacity`` bounds resident solved states; ``metrics`` (optional,
    shared) receives ``serve_cache_hits`` / ``serve_cache_misses`` /
    ``serve_cache_evictions`` counters and a ``serve_cache_size`` gauge.
    Keyword arguments to :meth:`get_or_create` beyond the graph are
    forwarded to the service constructor and participate in the key.
    """

    def __init__(
        self,
        capacity: int = 4,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, ConnectivityService] = OrderedDict()

    @staticmethod
    def key_for(
        graph: CSRGraph,
        *,
        algorithm: str = "afforest",
        recompress_every: int = 4096,
        **_ignored: Any,
    ) -> str:
        """The cache key: content digest + solve-relevant configuration.

        Backend and worker count are deliberately excluded — they change
        how the initial solve executes, not what it produces (labelings
        are bit-identical across backends), so they must not split the
        cache.
        """
        fp = fingerprint_graph(graph)
        return (
            f"{fp['digest']}:{fp['vertices']}:{fp['edges']}"
            f":{algorithm}:{recompress_every}"
        )

    def get_or_create(
        self, graph: CSRGraph, **kwargs: Any
    ) -> ConnectivityService:
        """The cached service for ``graph`` (solving it on first sight)."""
        key = self.key_for(graph, **kwargs)
        with self._lock:
            service = self._entries.get(key)
            if service is not None:
                self._entries.move_to_end(key)
                self.metrics.counter("serve_cache_hits").inc()
                return service
        # Solve outside the lock: a cold miss on a big graph must not
        # stall hits on already-resident graphs.
        self.metrics.counter("serve_cache_misses").inc()
        service = ConnectivityService(graph, **kwargs)
        with self._lock:
            # A racing miss may have landed the same key; latest wins
            # (both are equivalent — solves are deterministic).
            self._entries[key] = service
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.metrics.counter("serve_cache_evictions").inc()
            self.metrics.gauge("serve_cache_size").set(len(self._entries))
        return service

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counts and current size, for reports."""
        counters = self.metrics.counters_snapshot()
        return {
            "hits": counters.get("serve_cache_hits", 0),
            "misses": counters.get("serve_cache_misses", 0),
            "evictions": counters.get("serve_cache_evictions", 0),
            "size": len(self),
        }

    def clear(self) -> None:
        """Drop every resident service."""
        with self._lock:
            self._entries.clear()
            self.metrics.gauge("serve_cache_size").set(0)
