"""Connectivity-as-a-service: the long-lived query/update serving layer.

The batch engine answers "what are the components of this graph?" once;
this package answers "are these two vertices connected *right now*?"
millions of times, while the graph keeps growing.  Three pieces:

- :class:`ConnectivityService` (:mod:`repro.serve.service`) — solves a
  graph once via :func:`repro.engine.run`, keeps a fully compressed
  label array and a component-size census hot for O(1) reads, absorbs
  edge-insertion streams through incremental link/compress, and
  publishes immutable epoch :class:`Snapshot` views so readers never
  observe torn labels;
- :class:`ServiceCache` (:mod:`repro.serve.cache`) — an LRU cache of
  solved states keyed by graph content fingerprint, so a multi-graph
  front-end pays each batch solve once;
- :class:`ConnectivityServer` (:mod:`repro.serve.server`) — the request
  layer: a worker loop that coalesces queued queries into single
  vectorized gathers, bounds the queue for backpressure
  (:class:`BackpressureError`), shuts down gracefully, and emits
  telemetry (per-batch spans, latency histograms, Prometheus text,
  durable ``kind="serve"`` ledger records).

Driven by ``repro serve`` on the CLI and measured by
:mod:`repro.bench.serving` (throughput + p50/p95/p99 latency, with an
oracle gate asserting every published epoch is bit-identical to a
from-scratch batch re-solve).  See ``docs/serving.md``.
"""

from __future__ import annotations

from repro.serve.cache import ServiceCache
from repro.serve.server import (
    BackpressureError,
    ConnectivityServer,
    ServerClosedError,
)
from repro.serve.service import ConnectivityService, Snapshot

__all__ = [
    "BackpressureError",
    "ConnectivityServer",
    "ConnectivityService",
    "ServerClosedError",
    "ServiceCache",
    "Snapshot",
]
