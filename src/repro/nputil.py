"""Shared vectorised array utilities.

These implement the flat "expand CSR slices without a Python loop" patterns
used across the library: frontier expansion in BFS, remaining-neighbour
flattening in Afforest's final phase, and frontier edge gathering in
data-driven label propagation.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE

__all__ = ["segment_ranges", "expand_slices"]


def segment_ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each ``c`` in ``counts``.

    ``segment_ranges([2, 0, 3]) == [0, 1, 0, 1, 2]``.  Zero-length segments
    contribute nothing (and are dropped up front so the boundary resets
    land on distinct positions).
    """
    nz = counts[counts > 0].astype(VERTEX_DTYPE)
    total = int(nz.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    out = np.ones(total, dtype=VERTEX_DTYPE)
    out[0] = 0
    if nz.shape[0] > 1:
        out[np.cumsum(nz)[:-1]] = 1 - nz[:-1]
    return np.cumsum(out)


def expand_slices(
    starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the slices ``[starts[i], starts[i] + counts[i])``.

    Returns ``(owner, offset)``: ``owner[k]`` is the slice index that
    produced flat element ``k`` and ``offset[k]`` its absolute position.
    The core idiom for touching the CSR neighbourhoods of a vertex set in
    one vectorised gather.
    """
    counts = np.maximum(counts, 0)
    owner = np.repeat(
        np.arange(counts.shape[0], dtype=VERTEX_DTYPE), counts
    )
    offset = np.repeat(starts, counts) + segment_ranges(counts)
    return owner, offset
