"""Convergence measures: Linkage(t) and Coverage(t) (paper Sec. V-B).

Linkage is the fraction of all eventual tree merges already performed:

    Linkage(t) = (|V| - T_t) / (|V| - C)

with ``T_t`` the current number of trees in π and ``C`` the final component
count.  Coverage is the fraction of the largest component already gathered
into a single tree:

    Coverage(t) = τ_max(t) / |c_max|

:func:`convergence_curve` replays any subgraph partitioning strategy
(:mod:`repro.core.strategies`) through ``link``/``compress`` and records
both measures against the percentage of directed edges processed — the
exact data behind Figs. 6a/6b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import link_batch
from repro.core.strategies import SubgraphBatch
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph


def linkage(pi: np.ndarray, final_components: int) -> float:
    """Linkage measure of the current parent array."""
    n = pi.shape[0]
    denom = n - final_components
    if denom <= 0:
        return 1.0
    trees = int(np.count_nonzero(pi == np.arange(n, dtype=pi.dtype)))
    return (n - trees) / denom


def coverage(pi: np.ndarray, largest_component_size: int) -> float:
    """Coverage measure: largest current tree relative to ``|c_max|``.

    Requires π to be acyclic (always true under Invariant 1).  Trees are
    resolved to roots by pointer doubling, so the measure is exact at any
    compression state.
    """
    if largest_component_size <= 0:
        return 1.0
    labels = pi.copy()
    while True:
        nxt = labels[labels]
        if np.array_equal(nxt, labels):
            break
        labels = nxt
    tree_sizes = np.bincount(labels)
    return float(tree_sizes.max()) / float(largest_component_size)


@dataclass
class ConvergenceCurve:
    """Linkage/coverage samples along one strategy's execution."""

    strategy: str
    edges_total: int
    #: cumulative directed edges processed at each checkpoint
    edges_processed: list[int] = field(default_factory=list)
    linkage: list[float] = field(default_factory=list)
    coverage: list[float] = field(default_factory=list)

    @property
    def percent_processed(self) -> np.ndarray:
        return 100.0 * np.asarray(self.edges_processed) / max(self.edges_total, 1)

    def linkage_at(self, percent: float) -> float:
        """Linkage at (or before) a given percentage of edges processed."""
        return self._measure_at(percent, self.linkage)

    def coverage_at(self, percent: float) -> float:
        """Coverage at (or before) a given percentage of edges processed."""
        return self._measure_at(percent, self.coverage)

    def _measure_at(self, percent: float, series: list[float]) -> float:
        pcts = self.percent_processed
        idx = np.nonzero(pcts <= percent + 1e-9)[0]
        if idx.size == 0:
            return 0.0
        return float(series[int(idx[-1])])


def convergence_curve(
    graph: CSRGraph,
    batches: list[SubgraphBatch],
    *,
    strategy_name: str = "strategy",
    resolution: int = 50,
    final_components: int | None = None,
    largest_component_size: int | None = None,
) -> ConvergenceCurve:
    """Replay ``batches`` through link/compress, sampling both measures.

    Batches larger than ``|E_directed| / resolution`` are subdivided so the
    curve stays smooth through the big remainder batch.  A compress runs
    after every batch boundary (matching Afforest's interleaving); measures
    are taken after each chunk.
    """
    if resolution < 1:
        raise ConfigurationError(f"resolution must be >= 1, got {resolution}")
    n = graph.num_vertices
    total = sum(b.num_edges for b in batches)
    pi = np.arange(n, dtype=VERTEX_DTYPE)

    if final_components is None or largest_component_size is None:
        from repro.graph.properties import component_census

        census = component_census(graph)
        if final_components is None:
            final_components = census.num_components
        if largest_component_size is None:
            largest_component_size = census.largest

    curve = ConvergenceCurve(strategy_name, edges_total=total)
    chunk = max(total // resolution, 1)
    processed = 0

    def checkpoint() -> None:
        curve.edges_processed.append(processed)
        curve.linkage.append(linkage(pi, final_components))
        curve.coverage.append(coverage(pi, largest_component_size))

    checkpoint()
    for batch in batches:
        for lo in range(0, batch.num_edges, chunk):
            hi = min(lo + chunk, batch.num_edges)
            link_batch(pi, batch.src[lo:hi], batch.dst[lo:hi])
            processed += hi - lo
            checkpoint()
        compress_all(pi)
    return curve
