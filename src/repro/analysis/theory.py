"""Uniform edge-sampling theory (paper Sec. IV-B).

The paper grounds subgraph sampling in a result of Frieze et al.: for a
connected d-regular graph, independently sampling edges with probability
``p >= (1 + eps) / d`` leaves a connected component of size Θ(n) almost
surely, and (Claim 1) the expected sampled-edge count at the threshold is
``(1 + eps) * n / 2 = O(n)``.

This module implements the threshold arithmetic, the sampling experiment
that validates it empirically (the phase transition is sharp enough to
observe at a few thousand vertices), and the degree-bias measurement that
motivates neighbour sampling for general graphs: uniform sampling at
O(|V|) budget misses a constant fraction of degree-one vertices, whose
single edge any spanning forest must contain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.generators.rng import make_rng
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.properties import component_census

__all__ = [
    "frieze_threshold",
    "expected_sampled_edges",
    "sample_edges_uniform",
    "SamplingOutcome",
    "uniform_sampling_experiment",
    "degree_one_miss_rate",
]


def frieze_threshold(degree: int, eps: float = 0.0) -> float:
    """The sampling probability ``(1 + eps) / d`` of Sec. IV-B."""
    if degree < 1:
        raise ConfigurationError(f"degree must be >= 1, got {degree}")
    if eps < -1.0:
        raise ConfigurationError(f"eps must be > -1, got {eps}")
    return min((1.0 + eps) / degree, 1.0)


def expected_sampled_edges(num_vertices: int, degree: int, eps: float = 0.0) -> float:
    """Claim 1: ``p * m = (1 + eps)/d * (d/2) n = (1 + eps) n / 2``."""
    return frieze_threshold(degree, eps) * degree * num_vertices / 2.0


def sample_edges_uniform(
    graph: CSRGraph,
    p: float,
    *,
    seed: int | np.random.Generator | None = 0,
) -> EdgeList:
    """Keep each undirected edge independently with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must lie in [0, 1], got {p}")
    rng = make_rng(seed)
    src, dst = graph.undirected_edge_array()
    keep = rng.random(src.shape[0]) < p
    return EdgeList(graph.num_vertices, src[keep], dst[keep])


@dataclass(frozen=True)
class SamplingOutcome:
    """Result of one uniform-sampling experiment."""

    p: float
    sampled_edges: int
    expected_edges: float
    largest_component_fraction: float


def uniform_sampling_experiment(
    graph: CSRGraph,
    p: float,
    *,
    seed: int = 0,
) -> SamplingOutcome:
    """Sample ``G_p`` and measure its largest-component fraction.

    For a d-regular ``graph`` this is exactly the experiment behind the
    paper's invocation of Frieze et al.: supercritical ``p`` yields a
    giant component, subcritical ``p`` shatters the graph.
    """
    sampled = sample_edges_uniform(graph, p, seed=seed)
    deg = np.asarray(graph.degree())
    d = float(deg.mean()) if deg.size else 0.0
    sub = build_csr(sampled)
    census = component_census(sub)
    return SamplingOutcome(
        p=p,
        sampled_edges=sampled.num_edges,
        expected_edges=p * graph.num_edges,
        largest_component_fraction=census.largest_fraction,
    )


def degree_one_miss_rate(
    graph: CSRGraph,
    p: float,
    *,
    seed: int = 0,
) -> float:
    """Fraction of degree-one vertices whose only edge was *not* sampled.

    The paper's argument for neighbour sampling: "the only edge of a
    degree-one vertex is surely included in any SF", yet uniform sampling
    misses it with probability ``1 - p`` — this function measures that
    miss rate (neighbour sampling's rate is 0 by construction).
    """
    deg = np.asarray(graph.degree())
    pendant = np.nonzero(deg == 1)[0]
    if pendant.size == 0:
        return 0.0
    sampled = sample_edges_uniform(graph, p, seed=seed)
    covered = np.zeros(graph.num_vertices, dtype=bool)
    covered[sampled.src] = True
    covered[sampled.dst] = True
    return float(np.count_nonzero(~covered[pendant])) / pendant.size
