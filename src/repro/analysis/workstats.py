"""Table II work statistics: per-edge local iterations and tree depths.

The paper's Table II contrasts, per dataset:

- **SV**: number of outer iterations, and the maximal tree depth arising
  during execution;
- **Afforest** (without component skipping): the *average* number of local
  iterations the ``link`` loop runs per edge (close to 1 in practice — most
  edges find their endpoints already linked), and the maximal tree depth
  encountered.

:func:`afforest_workstats` replays Afforest's exact processing schedule
(neighbour rounds, interleaved compress, full remainder) through the scalar
instrumented ``link``; :func:`sv_workstats` wraps the vectorized SV with
depth tracking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.shiloach_vishkin import shiloach_vishkin
from repro.constants import DEFAULT_NEIGHBOR_ROUNDS, VERTEX_DTYPE
from repro.core.compress import compress_all
from repro.core.link import LinkCounters, link
from repro.graph.csr import CSRGraph
from repro.unionfind.parent import ParentArray


@dataclass(frozen=True)
class WorkStats:
    """One Table II row-half (either SV or Afforest)."""

    algorithm: str
    iterations: float  # SV: outer iterations; Afforest: mean local iterations
    max_iterations: int
    max_tree_depth: int
    edges_processed: int


def sv_workstats(graph: CSRGraph) -> WorkStats:
    """SV's Table II numbers: outer iterations and max tree depth."""
    result = shiloach_vishkin(graph, track_depth=True)
    return WorkStats(
        algorithm="sv",
        iterations=float(result.iterations),
        max_iterations=result.iterations,
        max_tree_depth=result.max_tree_depth,
        edges_processed=result.edges_processed,
    )


def afforest_workstats(
    graph: CSRGraph,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    depth_checkpoints: int = 16,
) -> WorkStats:
    """Afforest's Table II numbers via the instrumented scalar ``link``.

    Replays the Fig. 5 schedule without component skipping (as Table II
    specifies).  Tree depth is sampled every ``edges / depth_checkpoints``
    scalar links (a full depth scan per edge would be quadratic); the
    maximum over checkpoints matches the paper's "maximal tree depth".
    """
    n = graph.num_vertices
    pi = np.arange(n, dtype=VERTEX_DTYPE)
    counters = LinkCounters()
    indptr, indices = graph.indptr, graph.indices
    deg = np.asarray(graph.degree())
    max_depth = 0

    def scan_depth() -> None:
        nonlocal max_depth
        d = ParentArray(pi).max_depth()
        if d > max_depth:
            max_depth = d

    total_edges = graph.num_directed_edges
    stride = max(total_edges // max(depth_checkpoints, 1), 1)
    since_scan = 0

    def do_link(u: int, w: int) -> None:
        nonlocal since_scan
        link(pi, u, w, counters)
        since_scan += 1
        if since_scan >= stride:
            scan_depth()
            since_scan = 0

    for r in range(neighbor_rounds):
        for v in np.nonzero(deg > r)[0].tolist():
            do_link(v, int(indices[indptr[v] + r]))
        scan_depth()
        compress_all(pi)
    for v in range(n):
        for e in range(int(indptr[v]) + neighbor_rounds, int(indptr[v + 1])):
            do_link(v, int(indices[e]))
    scan_depth()
    compress_all(pi)

    return WorkStats(
        algorithm="afforest",
        iterations=counters.mean_iterations,
        max_iterations=counters.max_iterations,
        max_tree_depth=max_depth,
        edges_processed=counters.edges_processed,
    )
