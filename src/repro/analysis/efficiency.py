"""Work-efficiency comparison across algorithms (Sec. V framing).

The paper's central quantitative lens is *edges processed*: optimal CC
work is O(|V|) while traversal/tree-hooking baselines pay O(|E|) to
O(D·|E|).  :func:`work_efficiency_report` measures this for every
algorithm on one graph, normalising by the directed edge count, so the
paper's work hierarchy

    afforest  <  dobfs  <=  bfs  <  sv  <=  lp

can be read (and asserted) directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    bfs_cc,
    dobfs_cc,
    label_propagation,
    label_propagation_datadriven,
    shiloach_vishkin,
)
from repro.core import afforest
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class WorkRecord:
    """Edges processed by one algorithm on one graph."""

    algorithm: str
    edges_processed: int
    edges_per_directed_edge: float  # processed / |E_directed|
    detail: str = ""


def work_efficiency_report(graph: CSRGraph) -> list[WorkRecord]:
    """Per-algorithm processed-edge counts for ``graph``.

    Counts are the per-algorithm natural work units (directed edge
    examinations for all; early-exit modeled edges for DOBFS; touched
    edge slots for Afforest) — the same units the paper's analysis uses.
    """
    denom = max(graph.num_directed_edges, 1)
    records = []

    r = afforest(graph)
    records.append(
        WorkRecord(
            "afforest",
            r.edges_touched,
            r.edges_touched / denom,
            f"skipped {r.edges_skipped}",
        )
    )
    rn = afforest(graph, skip_largest=False)
    records.append(
        WorkRecord(
            "afforest-noskip", rn.edges_touched, rn.edges_touched / denom
        )
    )
    d = dobfs_cc(graph)
    records.append(
        WorkRecord(
            "dobfs",
            d.edges_processed,
            d.edges_processed / denom,
            f"{d.bottom_up_steps} bottom-up steps",
        )
    )
    b = bfs_cc(graph)
    records.append(
        WorkRecord("bfs", b.edges_processed, b.edges_processed / denom)
    )
    s = shiloach_vishkin(graph)
    records.append(
        WorkRecord(
            "sv",
            s.edges_processed,
            s.edges_processed / denom,
            f"{s.iterations} iterations",
        )
    )
    lp = label_propagation(graph)
    records.append(
        WorkRecord(
            "lp",
            lp.edges_processed,
            lp.edges_processed / denom,
            f"{lp.iterations} iterations",
        )
    )
    lpd = label_propagation_datadriven(graph)
    records.append(
        WorkRecord(
            "lp-datadriven", lpd.edges_processed, lpd.edges_processed / denom
        )
    )
    return records


def work_ratio(records: list[WorkRecord], a: str, b: str) -> float:
    """How many times more edges ``b`` processes than ``a``."""
    by_name = {r.algorithm: r for r in records}
    num = by_name[b].edges_processed
    den = max(by_name[a].edges_processed, 1)
    return num / den
