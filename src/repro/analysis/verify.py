"""Labeling verification.

Different CC algorithms emit different label values for the same partition;
comparisons go through :func:`canonical_labels`, which renames labels to
"smallest vertex id in the component" — a canonical form under which two
labelings are equal iff they induce the same partition.

:func:`is_valid_labeling` checks a labeling against the graph itself (every
edge's endpoints share a label, and label classes are connected), which
catches both under- and over-merging without needing a reference labeling.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import InvariantViolationError
from repro.graph.csr import CSRGraph
from repro.graph.properties import scipy_components


def canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Rename each label class to the smallest vertex id it contains."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n == 0:
        return labels.astype(VERTEX_DTYPE)
    # For each distinct label, the first occurrence index is the smallest
    # member (argsort is stable over increasing vertex ids).
    _, first, inverse = np.unique(
        labels, return_index=True, return_inverse=True
    )
    return first[inverse].astype(VERTEX_DTYPE)


def equivalent_labelings(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff ``a`` and ``b`` induce the same partition of the vertices."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return np.array_equal(canonical_labels(a), canonical_labels(b))


def assert_equivalent_labeling(
    a: np.ndarray, b: np.ndarray, context: str = ""
) -> None:
    """Raise :class:`InvariantViolationError` unless the labelings match."""
    if not equivalent_labelings(a, b):
        ca, cb = canonical_labels(a), canonical_labels(b)
        bad = np.nonzero(ca != cb)[0]
        v = int(bad[0]) if bad.size else -1
        raise InvariantViolationError(
            f"labelings differ{' (' + context + ')' if context else ''}: "
            f"{bad.size} vertices disagree, first at vertex {v} "
            f"({int(ca[v])} vs {int(cb[v])})"
        )


def is_valid_labeling(graph: CSRGraph, labels: np.ndarray) -> bool:
    """Exact validity check of ``labels`` against ``graph``.

    Validity = (i) every edge joins same-labeled endpoints (no
    under-merging) and (ii) the number of distinct labels equals the true
    component count (with (i), this rules out over-merging).
    """
    labels = np.asarray(labels)
    if labels.shape[0] != graph.num_vertices:
        return False
    if graph.num_vertices == 0:
        return True
    src, dst = graph.sources(), graph.indices
    if not np.array_equal(labels[src], labels[dst]):
        return False
    true_count = int(np.unique(scipy_components(graph)).shape[0])
    return int(np.unique(labels).shape[0]) == true_count
