"""Analysis machinery: labeling verification, convergence measures
(Linkage/Coverage), Table II work statistics, and Fig. 7 memory-access
reductions."""

from repro.analysis.efficiency import WorkRecord, work_efficiency_report, work_ratio
from repro.analysis.convergence import (
    ConvergenceCurve,
    convergence_curve,
    coverage,
    linkage,
)
from repro.analysis.memaccess import AccessSummary, reduce_trace
from repro.analysis.verify import (
    assert_equivalent_labeling,
    canonical_labels,
    equivalent_labelings,
    is_valid_labeling,
)
from repro.analysis.workstats import WorkStats, afforest_workstats, sv_workstats

__all__ = [
    "WorkRecord",
    "work_efficiency_report",
    "work_ratio",
    "ConvergenceCurve",
    "convergence_curve",
    "coverage",
    "linkage",
    "AccessSummary",
    "reduce_trace",
    "assert_equivalent_labeling",
    "canonical_labels",
    "equivalent_labelings",
    "is_valid_labeling",
    "WorkStats",
    "afforest_workstats",
    "sv_workstats",
]
