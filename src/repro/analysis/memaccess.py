"""Fig. 7 data reduction: π-array access density and per-thread structure.

The simulated machine's :class:`~repro.parallel.memtrace.MemoryTrace`
captures every shared access as ``(address, worker, phase, op)``.  This
module reduces the raw stream into the quantities Fig. 7 visualises:

- the **address histogram** per phase (the heat-map's marginal): how often
  each region of π was touched;
- **per-worker** event counts (the scatter plot's row densities);
- a **sequentiality score** per phase: the fraction of successive accesses
  by the same worker that move forward by at most a small stride —
  Afforest's neighbour rounds score near 1 (streaming through π), SV's
  hooks score near the random baseline;
- **low-address concentration**: fraction of accesses landing in the first
  ``root_region`` fraction of π, capturing "accesses with high locality
  near the beginning of π (corresponding to tree roots)".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.memtrace import TraceArrays


@dataclass(frozen=True)
class PhaseAccess:
    """Reduction of one phase's events."""

    label: str
    events: int
    address_histogram: np.ndarray
    per_worker: np.ndarray
    sequentiality: float
    low_address_fraction: float


@dataclass(frozen=True)
class AccessSummary:
    """Full Fig. 7 reduction of a trace."""

    num_vertices: int
    bins: int
    phases: list[PhaseAccess] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        return sum(p.events for p in self.phases)

    def phase(self, label: str) -> PhaseAccess:
        for p in self.phases:
            if p.label == label:
                return p
        raise KeyError(f"no phase labeled {label!r}")

    def combined_histogram(self) -> np.ndarray:
        """Address histogram over all phases (the full heat-map marginal)."""
        out = np.zeros(self.bins, dtype=np.int64)
        for p in self.phases:
            out += p.address_histogram
        return out


def _sequentiality(
    addresses: np.ndarray, workers: np.ndarray, max_stride: int
) -> float:
    """Fraction of consecutive access pairs *within each worker's own
    stream* that move forward by at most ``max_stride`` addresses.

    Each worker's events are extracted in order (the global trace preserves
    per-worker order), so the measure reflects what that worker's cache
    sees, independent of how workers interleave globally.
    """
    if addresses.shape[0] < 2:
        return 1.0
    ok = 0
    pairs = 0
    for w in np.unique(workers):
        a = addresses[workers == w]
        if a.shape[0] < 2:
            continue
        delta = a[1:] - a[:-1]
        ok += int(((delta >= 0) & (delta <= max_stride)).sum())
        pairs += a.shape[0] - 1
    return ok / pairs if pairs else 1.0


def reduce_trace(
    trace: TraceArrays,
    num_vertices: int,
    *,
    bins: int = 64,
    max_stride: int = 8,
    root_region: float = 0.1,
) -> AccessSummary:
    """Reduce a finalized memory trace into the Fig. 7 summary.

    Parameters
    ----------
    trace:
        Output of ``MemoryTrace.finalize()``.
    num_vertices:
        Length of the traced π array (address space).
    bins:
        Histogram buckets over the address space.
    max_stride:
        Forward-stride threshold of the sequentiality score.
    root_region:
        Fraction of the low address space counted as the "root region".
    """
    if num_vertices < 1:
        raise ConfigurationError("num_vertices must be >= 1")
    if not 0.0 < root_region <= 1.0:
        raise ConfigurationError("root_region must lie in (0, 1]")
    edges = np.linspace(0, num_vertices, bins + 1)
    low_cut = root_region * num_vertices
    num_workers = int(trace.worker.max()) + 1 if trace.num_events else 1

    phases: list[PhaseAccess] = []
    for idx, label in enumerate(trace.phase_labels):
        sel = trace.phase == idx
        addr = trace.address[sel]
        workers = trace.worker[sel]
        hist, _ = np.histogram(addr, bins=edges)
        per_worker = np.bincount(
            workers.astype(np.int64), minlength=num_workers
        )
        low_frac = (
            float(np.count_nonzero(addr < low_cut)) / addr.shape[0]
            if addr.shape[0]
            else 0.0
        )
        phases.append(
            PhaseAccess(
                label=label,
                events=int(addr.shape[0]),
                address_histogram=hist.astype(np.int64),
                per_worker=per_worker.astype(np.int64),
                sequentiality=_sequentiality(addr, workers, max_stride),
                low_address_fraction=low_frac,
            )
        )
    return AccessSummary(num_vertices=num_vertices, bins=bins, phases=phases)
