"""repro — Afforest: parallel graph connectivity via subgraph sampling.

A complete Python reproduction of Sutton, Ben-Nun & Barak, *Optimizing
Parallel Graph Connectivity Computation via Subgraph Sampling* (IPDPS
2018): the Afforest algorithm, the baselines it is evaluated against
(Shiloach–Vishkin, label propagation, BFS-CC, direction-optimizing
BFS-CC), the graph substrate, synthetic dataset proxies, a simulated
parallel machine for work/span and memory-trace analysis, and the full
benchmark harness for every table and figure of the paper's evaluation.

Quickstart::

    import repro

    g = repro.generators.kronecker_graph(scale=14)
    labels = repro.connected_components(g)            # Afforest
    result = repro.afforest(g, neighbor_rounds=2)     # detailed result
    print(result.num_components, result.skip_fraction)
"""

from __future__ import annotations

import numpy as np

from repro import (
    analysis,
    baselines,
    core,
    distributed,
    engine,
    generators,
    graph,
    parallel,
)
from repro.baselines import (
    bfs_cc,
    dobfs_cc,
    label_propagation,
    label_propagation_datadriven,
    shiloach_vishkin,
)
from repro.core import AfforestResult, afforest
from repro.engine import CCResult
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphFormatError,
    InvariantViolationError,
    ReproError,
)
from repro.graph import CSRGraph, GraphBuilder, from_edge_array, from_edge_list
from repro.unionfind import ParentArray, sequential_components

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "from_edge_array",
    "from_edge_list",
    "ParentArray",
    "CCResult",
    "AfforestResult",
    "afforest",
    "connected_components",
    "sequential_components",
    "bfs_cc",
    "dobfs_cc",
    "label_propagation",
    "label_propagation_datadriven",
    "shiloach_vishkin",
    "ReproError",
    "GraphFormatError",
    "InvariantViolationError",
    "ConfigurationError",
    "ConvergenceError",
    "analysis",
    "baselines",
    "core",
    "distributed",
    "engine",
    "generators",
    "graph",
    "parallel",
]


def connected_components(
    graph: CSRGraph,
    algorithm: str = "afforest",
    **kwargs,
) -> np.ndarray:
    """Component labels of ``graph`` using the named algorithm.

    Every algorithm returns an equivalent labeling (same partition of the
    vertex set); label *values* differ by algorithm.  Names are resolved
    through the engine's algorithm registry —
    ``repro.engine.available_algorithms()`` lists them, and unknown names
    raise :class:`~repro.errors.ConfigurationError`.  Keyword arguments
    override the algorithm's registered defaults; for the full result
    record (counters, phase times, provenance) call
    :func:`repro.engine.run` directly.
    """
    return engine.run(algorithm, graph, **kwargs).labels
