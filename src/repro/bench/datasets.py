"""Evaluation-suite wiring: cached generation of the benchmark graphs."""

from __future__ import annotations

from functools import lru_cache

from repro.generators.datasets import CPU_SUITE, load_dataset
from repro.graph.csr import CSRGraph


@lru_cache(maxsize=32)
def _cached(name: str, size: str, seed: int) -> CSRGraph:
    return load_dataset(name, size, seed=seed)


def evaluation_suite(
    size: str = "default",
    *,
    names: tuple[str, ...] = CPU_SUITE,
    seed: int = 42,
) -> dict[str, CSRGraph]:
    """The Fig. 8a dataset suite at the given size tier, cached per process
    so repeated benchmark modules don't regenerate graphs."""
    return {name: _cached(name, size, seed) for name in names}
