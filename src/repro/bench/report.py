"""Paper-style plain-text tables and series for benchmark output.

The benchmark harness prints its results in the same row/series structure
the paper's tables and figures use, so EXPERIMENTS.md can be assembled by
copying harness output next to the paper's numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule.

    Floats render with 4 significant digits; everything else via ``str``.
    """
    rendered = [[_cell(c) for c in row] for row in rows]
    header = [str(c) for c in columns]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rendered)) if rendered else len(header[i])
        for i in range(len(header))
    ]
    lines = [title, "=" * max(len(title), 8)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[object]],
) -> str:
    """A figure's data as one x column plus one column per series."""
    columns = [x_label, *series.keys()]
    rows = [
        [x, *(vals[i] for vals in series.values())]
        for i, x in enumerate(xs)
    ]
    return format_table(title, columns, rows)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
