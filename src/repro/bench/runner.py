"""Timed execution helpers used by the ``benchmarks/`` harness.

The paper reports "the median running time ... over 16 measurements if the
runtime is below 20 minutes, and the median of 3 measurements otherwise";
:func:`median_time` follows the same protocol scaled to this substrate
(median of ``repeats``, fewer when a single run is slow).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro import engine
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.obs import Trace
from repro.obs.ledger import RunLedger, record_from_result, resolve_ledger


@dataclass
class BenchmarkRecord:
    """One (dataset, algorithm) measurement.

    ``extra`` holds JSON-ready instrumentation from the profiled sample
    (counters, ``phase_seconds``, histogram summaries, worker skew);
    ``trace`` keeps the full span tree of that sample for exporters and
    is deliberately outside ``extra`` so JSON reports stay flat.
    """

    dataset: str
    algorithm: str
    median_seconds: float
    p25_seconds: float
    p75_seconds: float
    samples: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    trace: Trace | None = None
    #: execution substrate the samples ran on ("vectorized" / "simulated"
    #: / "process") and its worker count (None for single-substrate runs),
    #: so scaling reports can group records without re-parsing kwargs.
    backend: str = "vectorized"
    workers: int | None = None

    def speedup_over(self, other: "BenchmarkRecord") -> float:
        """How much faster this record is than ``other``."""
        if self.median_seconds <= 0:
            return float("inf")
        return other.median_seconds / self.median_seconds


def median_time(
    fn: Callable[[], object],
    *,
    repeats: int = 16,
    slow_threshold: float = 2.0,
    slow_repeats: int = 3,
) -> tuple[float, float, float, list[float]]:
    """Median / 25th / 75th percentile runtime of ``fn``.

    A first timing decides the protocol: below ``slow_threshold`` seconds
    run ``repeats`` samples, otherwise only ``slow_repeats`` (the paper's
    16-vs-3 rule scaled down).
    """
    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    n = repeats if first < slow_threshold else slow_repeats
    samples = [first]
    for _ in range(n - 1):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    arr = np.asarray(samples)
    return (
        float(np.median(arr)),
        float(np.percentile(arr, 25)),
        float(np.percentile(arr, 75)),
        samples,
    )


def run_algorithm(
    graph: CSRGraph,
    algorithm: str,
    dataset: str = "graph",
    *,
    repeats: int = 16,
    scaling_workers: Sequence[int] | None = None,
    ledger: RunLedger | str | None = None,
    **kwargs,
) -> BenchmarkRecord:
    """Benchmark one algorithm on one graph with the paper's protocol.

    Dispatches through the engine registry; the first sample runs with
    phase instrumentation enabled and its result populates
    ``BenchmarkRecord.extra`` (component count, edge-work counters, and
    ``phase_seconds`` — the per-phase wall-time breakdown printed by
    ``python -m repro compare --profile``).

    With ``ledger`` set (a :class:`~repro.obs.ledger.RunLedger` or a
    path), one ``kind="bench"`` run record is appended per call: the
    median wall time over all samples next to the profiled sample's
    phase breakdown, counters, gauges, and histogram summaries.  The
    record's run id lands in ``extra["run_id"]`` so reports can point
    back at the ledger entry.

    ``scaling_workers`` additionally measures the process backend at each
    given worker count (e.g. ``(1, 2, 4, 8)``) and records the strong-
    scaling curve into ``extra["worker_scaling"]`` — one median wall time
    per worker count, keyed by the (stringified) count — so a single
    invocation yields both the base measurement and the scaling series.
    """
    results: list[engine.CCResult] = []

    def _sample() -> None:
        # Only the first sample pays the (small) instrumentation cost; the
        # remaining timed runs execute the bare pipeline.
        results.append(
            engine.run(algorithm, graph, profile=not results, **kwargs)
        )

    med, p25, p75, samples = median_time(_sample, repeats=repeats)
    first = results[0]
    extra: dict = {"num_components": first.num_components}
    if first.plan:
        # Plan provenance: which sampling+finish composition actually ran
        # (for "auto", the plan the probes selected).
        extra["plan"] = first.plan
    if first.edges_touched:
        extra["edges_touched"] = first.edges_touched
        extra["edges_skipped"] = first.edges_skipped
    if first.edges_processed:
        extra["edges_processed"] = first.edges_processed
    if first.iterations:
        extra["iterations"] = first.iterations
    if first.counters:
        # Profiled-sample counters (rounds_skipped, bytes_allocated,
        # fused_passes, settle_passes, ...): the optimization observables
        # the perf gate and the smoke report's round/allocation columns
        # are built from.
        extra["counters"] = {k: int(v) for k, v in first.counters.items()}
    if first.phase_seconds:
        extra["phase_seconds"] = dict(first.phase_seconds)
    if first.trace is not None:
        if first.trace.histograms:
            extra["histograms"] = first.trace.histograms
        skew = first.trace.worker_skew()
        if skew:
            extra["worker_skew"] = skew
    if scaling_workers:
        extra["worker_scaling"] = worker_scaling_curve(
            graph, algorithm, scaling_workers, repeats=repeats, **kwargs
        )
    backend_obj = kwargs.get("backend")
    workers = getattr(backend_obj, "workers", None)
    if workers is None:
        workers = kwargs.get("workers")
    book = resolve_ledger(ledger) if ledger is not None else None
    if book is not None:
        run_record = record_from_result(
            first,
            graph=graph,
            kind="bench",
            seconds=med,
            meta={
                "dataset": dataset,
                "samples": len(samples),
                "repeats": repeats,
            },
        )
        if run_record.workers is None:
            run_record.workers = workers
        book.append(run_record)
        extra["run_id"] = run_record.run_id
    return BenchmarkRecord(
        dataset=dataset,
        algorithm=algorithm,
        median_seconds=med,
        p25_seconds=p25,
        p75_seconds=p75,
        samples=samples,
        extra=extra,
        trace=first.trace,
        backend=first.backend or "vectorized",
        workers=workers,
    )


def worker_scaling_curve(
    graph: CSRGraph,
    algorithm: str,
    worker_counts: Sequence[int],
    *,
    repeats: int = 16,
    **kwargs,
) -> dict[str, float]:
    """Median process-backend wall time per worker count.

    Each count gets its own persistent :class:`~repro.engine.backends.
    ProcessParallelBackend` (pool and shared segments reused across the
    timed samples, torn down afterwards), so the curve measures steady-
    state execution rather than pool start-up.  Keys are stringified
    worker counts for JSON friendliness.
    """
    spec = engine.get_algorithm(algorithm)
    if not spec.supports_backend("process"):
        raise ConfigurationError(
            f"algorithm {algorithm!r} does not support the process backend; "
            f"supported: {list(spec.backends)}"
        )
    kwargs.pop("backend", None)
    curve: dict[str, float] = {}
    for workers in worker_counts:
        with engine.ProcessParallelBackend(workers=workers) as backend:
            # Warm the pool and shared-memory mirrors outside the timer.
            engine.run(algorithm, graph, backend=backend, **kwargs)
            med, _, _, _ = median_time(
                lambda: engine.run(algorithm, graph, backend=backend, **kwargs),
                repeats=repeats,
            )
        curve[str(workers)] = med
    return curve
