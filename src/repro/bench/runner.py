"""Timed execution helpers used by the ``benchmarks/`` harness.

The paper reports "the median running time ... over 16 measurements if the
runtime is below 20 minutes, and the median of 3 measurements otherwise";
:func:`median_time` follows the same protocol scaled to this substrate
(median of ``repeats``, fewer when a single run is slow).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import engine
from repro.graph.csr import CSRGraph


@dataclass
class BenchmarkRecord:
    """One (dataset, algorithm) measurement."""

    dataset: str
    algorithm: str
    median_seconds: float
    p25_seconds: float
    p75_seconds: float
    samples: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def speedup_over(self, other: "BenchmarkRecord") -> float:
        """How much faster this record is than ``other``."""
        if self.median_seconds <= 0:
            return float("inf")
        return other.median_seconds / self.median_seconds


def median_time(
    fn: Callable[[], object],
    *,
    repeats: int = 16,
    slow_threshold: float = 2.0,
    slow_repeats: int = 3,
) -> tuple[float, float, float, list[float]]:
    """Median / 25th / 75th percentile runtime of ``fn``.

    A first timing decides the protocol: below ``slow_threshold`` seconds
    run ``repeats`` samples, otherwise only ``slow_repeats`` (the paper's
    16-vs-3 rule scaled down).
    """
    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    n = repeats if first < slow_threshold else slow_repeats
    samples = [first]
    for _ in range(n - 1):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    arr = np.asarray(samples)
    return (
        float(np.median(arr)),
        float(np.percentile(arr, 25)),
        float(np.percentile(arr, 75)),
        samples,
    )


def run_algorithm(
    graph: CSRGraph,
    algorithm: str,
    dataset: str = "graph",
    *,
    repeats: int = 16,
    **kwargs,
) -> BenchmarkRecord:
    """Benchmark one algorithm on one graph with the paper's protocol.

    Dispatches through the engine registry; the first sample runs with
    phase instrumentation enabled and its result populates
    ``BenchmarkRecord.extra`` (component count, edge-work counters, and
    ``phase_seconds`` — the per-phase wall-time breakdown printed by
    ``python -m repro compare --profile``).
    """
    results: list[engine.CCResult] = []

    def _sample() -> None:
        # Only the first sample pays the (small) instrumentation cost; the
        # remaining timed runs execute the bare pipeline.
        results.append(
            engine.run(algorithm, graph, profile=not results, **kwargs)
        )

    med, p25, p75, samples = median_time(_sample, repeats=repeats)
    first = results[0]
    extra: dict = {"num_components": first.num_components}
    if first.edges_touched:
        extra["edges_touched"] = first.edges_touched
        extra["edges_skipped"] = first.edges_skipped
    if first.edges_processed:
        extra["edges_processed"] = first.edges_processed
    if first.iterations:
        extra["iterations"] = first.iterations
    if first.phase_seconds:
        extra["phase_seconds"] = dict(first.phase_seconds)
    return BenchmarkRecord(
        dataset=dataset,
        algorithm=algorithm,
        median_seconds=med,
        p25_seconds=p25,
        p75_seconds=p75,
        samples=samples,
        extra=extra,
    )
