"""Oracle-checked smoke benchmark: ``python -m repro.bench.smoke``.

A deliberately small, fast benchmark meant for continuous integration:
it times the hooking finishes (Afforest, Shiloach–Vishkin, FastSV) and
two frontier pipelines (data-driven label propagation, BFS-CC) on a
power-law and a lattice graph, on the vectorized, process, and
distributed (delta-exchange supersteps, ranks=2) backends, and validates
every labeling against the sequential union-find oracle.  Any
disagreement with the oracle is a hard failure (non-zero exit), so the
job doubles as an end-to-end correctness gate for the process backend's
shared-memory path and the distributed backend's exchange protocol.  Records carry the optimization
observables (iteration counts, ``rounds_skipped``, ``bytes_allocated``,
``fused_passes``) next to the timings.

Against a committed baseline (``--baseline BENCH_smoke.json``) the run
always gates on *semantic* drift — vanished combinations, component-count
changes, plan-provenance changes.  With ``--fail-threshold`` it becomes a
hard **perf gate**: any record whose median slows down beyond the
threshold ratio fails the run, with a trace-diff attribution clause
(``+38% in HS3, rounds_skipped 4→0``) naming what moved.
``--gate-report`` re-gates a previously written report without
re-running the benchmarks (CI splits measure and gate into separate
steps), ``--summary-out`` appends a markdown comparison table plus the
regression-attribution table (pointed at ``$GITHUB_STEP_SUMMARY`` in
CI), and ``--ledger`` additionally appends one
:class:`~repro.obs.ledger.RunRecord` per measured combination to a
JSONL run ledger for ``repro obs diff``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Callable

import numpy as np

from repro.bench.runner import run_algorithm, worker_scaling_curve
from repro.engine import make_backend
from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph.csr import CSRGraph
from repro.obs import (
    TRACE_FORMATS,
    RunDiff,
    attribution_markdown,
    diff_runs,
    write_trace,
)
from repro.unionfind.sequential import sequential_components

#: (dataset name, builder) pairs — small enough for a sub-minute CI job
#: yet covering both degree regimes (skewed power-law, uniform lattice).
SMOKE_GRAPHS: tuple[tuple[str, Callable[[], CSRGraph]], ...] = (
    ("powerlaw-5k", lambda: barabasi_albert_graph(5000, edges_per_vertex=4, seed=7)),
    ("lattice-70x70", lambda: grid_graph(70, 70)),
)

#: Hooking algorithms (including the fused FastSV hot path the perf gate
#: tracks) plus one frontier pipeline of each flavour (label push, BFS
#: level sweep) so the process backend's frontier task bodies are
#: exercised end-to-end by CI, plus the plan layer: one composed plan
#: with no legacy alias and the ``auto`` meta-algorithm (whose selected
#: plan lands in the record's ``plan`` field).
SMOKE_ALGORITHMS = (
    "afforest", "sv", "fastsv", "lp-datadriven", "bfs", "kout+sv", "auto",
)
SMOKE_BACKENDS = ("vectorized", "process", "distributed")

#: world size for the distributed smoke rows (small on purpose: two
#: ranks already exercise the full exchange protocol).
SMOKE_RANKS = 2

#: Profiled-sample counters promoted to report columns (the allocation /
#: round-skip observables of the hot-path optimization pass).
COUNTER_COLUMNS = ("rounds_skipped", "bytes_allocated", "fused_passes")


def _canonical(labels: np.ndarray) -> np.ndarray:
    """Labels renumbered by first appearance, for convention-free compare."""
    _, canon = np.unique(labels, return_inverse=True)
    return canon


def check_against_oracle(graph: CSRGraph, labels: np.ndarray) -> bool:
    """True when ``labels`` induces the oracle's partition of vertices."""
    oracle = np.asarray(sequential_components(graph))
    return bool(np.array_equal(_canonical(labels), _canonical(oracle)))


def run_smoke(
    *,
    repeats: int = 5,
    workers: int = 2,
    ranks: int = SMOKE_RANKS,
    scaling: bool = False,
    ledger: str | None = None,
) -> tuple[dict, int]:
    """Execute the smoke matrix; returns ``(report, num_failures)``.

    With ``ledger`` set, every measured combination also appends a
    ``kind="bench"`` run record to that JSONL ledger (via
    :mod:`repro.obs.ledger`), and each report record carries the ledger
    entry's ``run_id`` — the handle ``repro obs diff`` uses to attribute
    a gate failure to the phases and counters that moved.
    """
    records: list[dict] = []
    failures = 0
    for dataset, build in SMOKE_GRAPHS:
        graph = build()
        oracle = np.asarray(sequential_components(graph))
        oracle_canon = _canonical(oracle)
        for algorithm in SMOKE_ALGORITHMS:
            for kind in SMOKE_BACKENDS:
                backend = make_backend(kind, workers=workers, ranks=ranks)
                try:
                    rec = run_algorithm(
                        graph,
                        algorithm,
                        dataset,
                        repeats=repeats,
                        backend=backend,
                        ledger=ledger,
                    )
                    labels = _last_labels(graph, algorithm, backend)
                finally:
                    backend.close()
                ok = bool(np.array_equal(_canonical(labels), oracle_canon))
                failures += not ok
                record = {
                    "dataset": dataset,
                    "algorithm": algorithm,
                    "backend": kind,
                    "median_seconds": rec.median_seconds,
                    "num_components": rec.extra["num_components"],
                    "matches_oracle": ok,
                }
                if "plan" in rec.extra:
                    record["plan"] = rec.extra["plan"]
                if "iterations" in rec.extra:
                    record["iterations"] = rec.extra["iterations"]
                if "run_id" in rec.extra:
                    record["run_id"] = rec.extra["run_id"]
                counters = rec.extra.get("counters", {})
                for name in COUNTER_COLUMNS:
                    if name in counters:
                        record[name] = counters[name]
                # The full profiled-sample observables ride along so the
                # gate can attribute a slowdown (diff_runs reads these)
                # without chasing the ledger entry.
                if counters:
                    record["counters"] = dict(counters)
                if "phase_seconds" in rec.extra:
                    record["phase_seconds"] = dict(rec.extra["phase_seconds"])
                records.append(record)
                status = "ok" if ok else "ORACLE MISMATCH"
                rounds = record.get("iterations", "-")
                skipped = record.get("rounds_skipped", "-")
                alloc = record.get("bytes_allocated", "-")
                print(
                    f"{dataset:>14} {algorithm:<14} {kind:<10} "
                    f"{rec.median_seconds * 1000:8.2f} ms  "
                    f"rounds={rounds:<4} skipped={skipped:<3} "
                    f"alloc={alloc:<9} {status}"
                )
        if scaling:
            curve = worker_scaling_curve(
                graph, "afforest", (1, 2, 4), repeats=max(repeats, 3)
            )
            records.append(
                {"dataset": dataset, "algorithm": "afforest", "worker_scaling": curve}
            )
            print(f"{dataset:>14} afforest   scaling    {curve}")
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "workers": workers,
        "ranks": ranks,
        "failures": failures,
        "records": records,
    }
    return report, failures


def compare_against_baseline(
    report: dict,
    baseline: dict,
    *,
    fail_threshold: float | None = None,
) -> tuple[list[str], list[str]]:
    """Compare a fresh smoke ``report`` against the committed baseline.

    Returns ``(failures, notes)``.  Failures always include *semantic*
    regressions — a (dataset, algorithm, backend) combination that
    vanished, a component-count change, or ``auto`` selecting a different
    plan than the one on record (probes are deterministic, so a drift
    means the decision rule changed without the baseline being
    regenerated).

    With ``fail_threshold`` set (e.g. ``1.25``), timing becomes a hard
    gate too: a record whose median exceeds ``fail_threshold`` times its
    baseline median is a failure, not a note.  A timing failure carries
    its attribution clause (:func:`repro.obs.diff.diff_runs` over the
    records' profiled phase/counter observables), so the CI log names
    the phase that slowed down, not just the ratio.  Without the
    threshold, timing movement stays informational (CI machines are
    noisy).
    """
    failures: list[str] = []
    notes: list[str] = []
    current = {
        (r["dataset"], r["algorithm"], r["backend"]): r
        for r in report.get("records", [])
        if "median_seconds" in r
    }
    for rec in baseline.get("records", []):
        if "median_seconds" not in rec:  # scaling-curve records have no key
            continue
        key = (rec["dataset"], rec["algorithm"], rec["backend"])
        label = "/".join(key)
        now = current.get(key)
        if now is None:
            failures.append(f"{label}: present in baseline, missing from this run")
            continue
        if now.get("num_components") != rec.get("num_components"):
            failures.append(
                f"{label}: num_components {rec.get('num_components')} -> "
                f"{now.get('num_components')}"
            )
        if now.get("plan") != rec.get("plan"):
            failures.append(
                f"{label}: plan {rec.get('plan')!r} -> {now.get('plan')!r}"
            )
        if rec["median_seconds"] > 0:
            ratio = now["median_seconds"] / rec["median_seconds"]
            if fail_threshold is not None and ratio > fail_threshold:
                diff = diff_runs(rec, now, label_a=label, label_b=label)
                failures.append(
                    f"{label}: median {ratio:.2f}x baseline "
                    f"(threshold {fail_threshold:.2f}x) — "
                    f"{diff.attribution()}"
                )
            else:
                notes.append(f"{label}: {ratio:.2f}x baseline median")
    new_keys = set(current) - {
        (r["dataset"], r["algorithm"], r["backend"])
        for r in baseline.get("records", [])
        if "median_seconds" in r
    }
    for key in sorted(new_keys):
        notes.append("/".join(key) + ": new combination (not in baseline)")
    return failures, notes


def gate_summary_markdown(
    report: dict,
    baseline: dict,
    failures: list[str],
    notes: list[str],
    *,
    fail_threshold: float | None = None,
) -> str:
    """Markdown perf-gate summary (for ``$GITHUB_STEP_SUMMARY``).

    One row per gated (dataset, algorithm, backend) combination with the
    baseline/current medians, the ratio, and the round/allocation
    counters, followed by a regression-attribution table
    (:func:`repro.obs.diff.attribution_markdown` over every comparable
    pair, slowest ratio first) and the verbatim failure and note lines.
    """
    baseline_by_key = {
        (r["dataset"], r["algorithm"], r["backend"]): r
        for r in baseline.get("records", [])
        if "median_seconds" in r
    }
    lines = ["## Smoke perf gate", ""]
    verdict = "FAILED" if failures else "passed"
    threshold = (
        f"hard threshold {fail_threshold:.2f}x baseline median"
        if fail_threshold is not None
        else "timings informational (no --fail-threshold)"
    )
    lines.append(f"**{verdict}** — {threshold}.")
    lines.append("")
    lines.append(
        "| dataset | algorithm | backend | baseline ms | current ms "
        "| ratio | rounds | skipped | alloc bytes |"
    )
    lines.append("|---|---|---|---:|---:|---:|---:|---:|---:|")
    for rec in report.get("records", []):
        if "median_seconds" not in rec:
            continue
        key = (rec["dataset"], rec["algorithm"], rec["backend"])
        base = baseline_by_key.get(key)
        base_ms = f"{base['median_seconds'] * 1000:.2f}" if base else "—"
        ratio = (
            f"{rec['median_seconds'] / base['median_seconds']:.2f}x"
            if base and base["median_seconds"] > 0
            else "—"
        )
        lines.append(
            f"| {key[0]} | {key[1]} | {key[2]} "
            f"| {base_ms} | {rec['median_seconds'] * 1000:.2f} | {ratio} "
            f"| {rec.get('iterations', '—')} "
            f"| {rec.get('rounds_skipped', '—')} "
            f"| {rec.get('bytes_allocated', '—')} |"
        )
    pairs: list[tuple[str, RunDiff]] = []
    for rec in report.get("records", []):
        if "median_seconds" not in rec:
            continue
        key = (rec["dataset"], rec["algorithm"], rec["backend"])
        base = baseline_by_key.get(key)
        if base is None:
            continue
        name = "/".join(key)
        pairs.append((name, diff_runs(base, rec, label_a=name, label_b=name)))
    lines.append("")
    lines.append(attribution_markdown(pairs))
    if failures:
        lines.append("")
        lines.append("### Regressions")
        lines.extend(f"- `{line}`" for line in failures)
    if notes:
        lines.append("")
        lines.append("### Notes")
        lines.extend(f"- {line}" for line in notes)
    lines.append("")
    return "\n".join(lines)


def export_smoke_trace(path: str, *, format: str = "chrome", workers: int = 2) -> None:
    """Write one profiled process-backend Afforest trace to ``path``.

    CI archives this next to the JSON report so a regression in worker
    telemetry (missing phase spans, empty worker tracks) is visible as a
    broken/empty artifact rather than only through unit tests.
    """
    import repro.engine as engine

    dataset, build = SMOKE_GRAPHS[0]
    graph = build()
    with engine.ProcessParallelBackend(workers=workers) as backend:
        result = engine.run("afforest", graph, backend=backend, profile=True)
    assert result.trace is not None
    write_trace(result.trace, path, format=format)
    spans = sum(1 for _ in result.trace.walk())
    tracks = len(result.trace.tracks())
    print(
        f"trace written to {path} ({format}; {dataset}, {spans} spans, "
        f"{tracks} worker tracks)"
    )


def _last_labels(graph: CSRGraph, algorithm: str, backend) -> np.ndarray:
    """One fresh labeling on ``backend`` for the oracle check.

    ``run_algorithm`` discards labels (it keeps only timings/counters), so
    the correctness check runs the algorithm once more on the same warm
    backend — cheap at smoke sizes and exercises exactly the timed path.
    """
    import repro.engine as engine

    return engine.run(algorithm, graph, backend=backend).labels


def _load_json(path: str, role: str) -> dict | None:
    """Load a report/baseline JSON file; ``None`` (plus a clear stderr
    message) when the file is missing or unparsable — the perf gate must
    fail with a diagnosis, never a traceback."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        print(f"error: {role} file not found: {path}", file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"error: {role} file {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"error: {role} file {path} is not a JSON report object",
              file=sys.stderr)
        return None
    return data


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code (non-zero on
    oracle disagreement or a failed baseline gate)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="oracle-checked CI smoke benchmark and perf gate",
    )
    parser.add_argument("--output", help="write the JSON report to this path")
    parser.add_argument(
        "--baseline",
        help="compare against this committed report (e.g. BENCH_smoke.json): "
        "component counts and auto's plan choice always gate; timings "
        "gate too when --fail-threshold is set",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail when a record's median exceeds RATIO times its baseline "
        "median (e.g. 1.25 = >25%% slowdown); omit to keep timings "
        "informational",
    )
    parser.add_argument(
        "--gate-report",
        metavar="PATH",
        help="gate a previously written report (skips re-running the "
        "benchmarks; requires --baseline)",
    )
    parser.add_argument(
        "--summary-out",
        metavar="PATH",
        help="append a markdown comparison summary to this file "
        "(point at $GITHUB_STEP_SUMMARY in CI)",
    )
    parser.add_argument(
        "--ledger",
        metavar="PATH",
        help="append one kind=\"bench\" run record per measured "
        "combination to this JSONL ledger (repro obs diff reads it)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--workers", type=int, default=2, help="process-backend worker count"
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=SMOKE_RANKS,
        help="distributed-backend world size (default: 2)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="also record a 1/2/4-worker scaling curve per graph",
    )
    parser.add_argument(
        "--trace-out",
        help="also export a profiled process-backend Afforest trace here",
    )
    parser.add_argument(
        "--trace-format",
        choices=TRACE_FORMATS,
        default="chrome",
        help="trace file format (default: chrome, Perfetto-loadable)",
    )
    args = parser.parse_args(argv)
    if args.gate_report:
        if not args.baseline:
            print("error: --gate-report requires --baseline", file=sys.stderr)
            return 2
        loaded = _load_json(args.gate_report, "report")
        if loaded is None:
            return 1
        report = loaded
        failures = int(report.get("failures", 0))
    else:
        report, failures = run_smoke(
            repeats=args.repeats,
            workers=args.workers,
            ranks=args.ranks,
            scaling=args.scaling,
            ledger=args.ledger,
        )
    if args.baseline:
        baseline = _load_json(args.baseline, "baseline")
        if baseline is None:
            return 1
        regressions, notes = compare_against_baseline(
            report, baseline, fail_threshold=args.fail_threshold
        )
        for note in notes:
            print(f"baseline: {note}")
        for line in regressions:
            print(f"error: baseline regression: {line}", file=sys.stderr)
        if args.summary_out:
            summary = gate_summary_markdown(
                report, baseline, regressions, notes,
                fail_threshold=args.fail_threshold,
            )
            with open(args.summary_out, "a", encoding="utf-8") as fh:
                fh.write(summary)
            print(f"markdown summary appended to {args.summary_out}")
        failures += len(regressions)
    if args.output and not args.gate_report:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    if args.trace_out and not args.gate_report:
        export_smoke_trace(
            args.trace_out, format=args.trace_format, workers=args.workers
        )
    if failures:
        print(f"error: {failures} configuration(s) disagree with the "
              "union-find oracle or the committed baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
