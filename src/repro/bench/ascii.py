"""ASCII renderings of the paper's figures for terminal reports.

No plotting stack exists in this environment, so the benchmark harness
and examples render their figure data as text: sparklines for single
series, multi-series line plots for the convergence curves (Fig. 6) and
scaling curves (Fig. 8b), and block-character heatmaps for the Fig. 7
access densities.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["sparkline", "heatmap", "line_plot"]

_SPARK = "▁▂▃▄▅▆▇█"
_SHADE = " ░▒▓█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar rendering of a numeric series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _SPARK[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK) - 1)
    return "".join(_SPARK[int(round(s))] for s in scaled)


def heatmap(matrix: np.ndarray, *, legend: bool = True) -> str:
    """Block-character heat map of a 2-D non-negative array.

    Rows render top to bottom; intensity is normalised over the whole
    matrix (log-scaled, since access densities span orders of magnitude).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError("heatmap expects a 2-D array")
    if matrix.size == 0:
        return ""
    if (matrix < 0).any():
        raise ConfigurationError("heatmap expects non-negative values")
    scaled = np.log1p(matrix)
    hi = scaled.max()
    if hi == 0:
        hi = 1.0
    levels = (scaled / hi * (len(_SHADE) - 1)).round().astype(int)
    lines = ["".join(_SHADE[v] for v in row) for row in levels]
    if legend:
        lines.append(f"[{_SHADE}] 0 .. {matrix.max():g} (log scale)")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker (its name's first letter, upper-cased in
    order of declaration; collisions fall back to digits).  Axes are
    annotated with the data ranges.
    """
    xs = np.asarray(list(xs), dtype=float)
    if xs.size == 0 or not series:
        return ""
    if width < 8 or height < 4:
        raise ConfigurationError("plot must be at least 8x4 characters")
    all_y = np.concatenate([np.asarray(list(v), dtype=float) for v in series.values()])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for i, name in enumerate(series):
        mark = name[0].upper()
        if mark in used:
            mark = str(i % 10)
        used.add(mark)
        markers[name] = mark

    for name, values in series.items():
        ys = np.asarray(list(values), dtype=float)
        if ys.shape[0] != xs.shape[0]:
            raise ConfigurationError(
                f"series {name!r} has {ys.shape[0]} points for {xs.shape[0]} xs"
            )
        cols = ((xs - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int)
        rows = ((ys - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = markers[name]

    lines = [f"{y_hi:>10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.3g}".ljust(width // 2)
        + f"{x_label} → {x_hi:.3g}".rjust(width // 2)
    )
    legend = "  ".join(f"{m}={n}" for n, m in markers.items())
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
