"""Distributed traffic benchmark: ``python -m repro.bench.dist_traffic``.

Measures the delta-exchange substrate's communication volume as a
function of world size: a ``fastsv`` solve of the powerlaw smoke graph
on :class:`~repro.engine.backends.DistributedBackend` at each requested
rank count, recording total and per-rank bytes, message and superstep
counts, and bytes per vertex.

Two gates make the job meaningful in CI:

- **analytic bound** (always on): the busiest rank must stay *strictly
  below* ``8n(R - 1)`` bytes — what the old ``dist_cc`` forest reduction
  paid when every rank shipped its whole int64 parent array to each
  peer.  A protocol change that regresses past whole-array shipping
  fails the job outright.
- **baseline compare** (``--baseline BENCH_dist_traffic.json``): the
  simulated communicator is deterministic, so recorded byte counts are
  exactly reproducible; drift against the committed baseline is
  reported, and with ``--fail-threshold`` a ratio above it fails the
  run.

Labels are checked bit-identical to a vectorized solve at every rank
count, so the traffic numbers can never come from a broken exchange.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

import numpy as np

from repro import engine
from repro.engine.backends import DistributedBackend
from repro.generators.powerlaw import barabasi_albert_graph

__all__ = ["run_traffic", "compare_against_baseline", "main"]

#: the powerlaw smoke graph (same build as ``bench.smoke``): skewed
#: degrees make the early dense rounds a worst case for delta shipping.
GRAPH_SPEC = {"vertices": 5000, "edges_per_vertex": 4, "seed": 7}

DEFAULT_RANKS = (2, 4, 8)

#: the solve whose traffic is recorded — FastSV is the plan the
#: delta-exchange protocol was designed around (PAPERS.md, Zhang et al.).
PLAN = "none+fastsv"


def _build_graph():
    return barabasi_albert_graph(
        GRAPH_SPEC["vertices"],
        edges_per_vertex=GRAPH_SPEC["edges_per_vertex"],
        seed=GRAPH_SPEC["seed"],
    )


def run_traffic(ranks_list: tuple[int, ...] = DEFAULT_RANKS) -> tuple[dict, int]:
    """Run the traffic curve; returns ``(report, num_failures)``."""
    graph = _build_graph()
    n = graph.num_vertices
    reference = engine.run(graph, plan=PLAN, backend="vectorized").labels

    records: list[dict] = []
    failures = 0
    for ranks in ranks_list:
        backend = DistributedBackend(ranks=ranks)
        result = engine.run(graph, plan=PLAN, backend=backend)
        stats = backend.comm.stats
        per_rank = stats.sent_by_rank(ranks)
        bound = 8 * n * (ranks - 1)
        max_rank_bytes = max(per_rank) if per_rank else 0
        identical = bool(np.array_equal(result.labels, reference))
        under_bound = ranks == 1 or max_rank_bytes < bound
        ok = identical and under_bound
        failures += not ok
        records.append(
            {
                "dataset": f"powerlaw-{n // 1000}k",
                "algorithm": PLAN,
                "backend": "distributed",
                "ranks": ranks,
                "bytes_sent": stats.bytes_sent,
                "bytes_per_rank": list(per_rank),
                "max_rank_bytes": max_rank_bytes,
                "reduction_baseline_bytes": bound,
                "bytes_per_vertex": stats.bytes_sent / n,
                "messages": stats.messages,
                "supersteps": stats.supersteps,
                "bit_identical": identical,
                "under_reduction_baseline": under_bound,
            }
        )
        status = "ok" if ok else (
            "LABEL MISMATCH" if not identical else "OVER BASELINE"
        )
        print(
            f"ranks={ranks:<2} max/rank {max_rank_bytes:>8} B "
            f"(bound {bound:>8} B)  total {stats.bytes_sent:>8} B  "
            f"msgs={stats.messages:<5} steps={stats.supersteps:<4} {status}"
        )
    report = {
        "kind": "dist_traffic",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "graph": dict(GRAPH_SPEC),
        "failures": failures,
        "records": records,
    }
    return report, failures


def compare_against_baseline(
    report: dict,
    baseline: dict,
    *,
    fail_threshold: float | None = None,
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` against a committed traffic report.

    Byte counts are deterministic, so any movement is protocol drift
    worth a note; a per-rank maximum above ``fail_threshold`` times its
    baseline value is a failure.
    """
    failures: list[str] = []
    notes: list[str] = []
    current = {r["ranks"]: r for r in report.get("records", [])}
    for rec in baseline.get("records", []):
        now = current.get(rec["ranks"])
        label = f"ranks={rec['ranks']}"
        if now is None:
            failures.append(f"{label}: present in baseline, missing here")
            continue
        base_max = rec.get("max_rank_bytes", 0)
        now_max = now.get("max_rank_bytes", 0)
        if base_max and now_max != base_max:
            ratio = now_max / base_max
            if fail_threshold is not None and ratio > fail_threshold:
                failures.append(
                    f"{label}: max per-rank bytes {base_max} -> {now_max} "
                    f"({ratio:.2f}x > {fail_threshold:.2f}x threshold)"
                )
            else:
                notes.append(
                    f"{label}: max per-rank bytes {base_max} -> {now_max} "
                    f"({ratio:.2f}x)"
                )
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (non-zero on gate failure)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.dist_traffic",
        description="delta-exchange traffic-vs-ranks benchmark and gate",
    )
    parser.add_argument(
        "--ranks",
        default=",".join(str(r) for r in DEFAULT_RANKS),
        help="comma-separated world sizes (default: 2,4,8)",
    )
    parser.add_argument("--output", help="write the JSON report to this path")
    parser.add_argument(
        "--baseline",
        help="compare against this committed report "
        "(e.g. BENCH_dist_traffic.json)",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        metavar="RATIO",
        help="fail when a rank count's max per-rank bytes exceed RATIO "
        "times the baseline value",
    )
    args = parser.parse_args(argv)
    ranks_list = tuple(int(tok) for tok in args.ranks.split(",") if tok)
    report, failures = run_traffic(ranks_list)
    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 1
        regressions, notes = compare_against_baseline(
            report, baseline, fail_threshold=args.fail_threshold
        )
        for note in notes:
            print(f"baseline: {note}")
        for line in regressions:
            print(f"error: baseline regression: {line}", file=sys.stderr)
        failures += len(regressions)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    if failures:
        print(
            f"error: {failures} rank configuration(s) failed the traffic "
            "or identity gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
