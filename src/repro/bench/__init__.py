"""Benchmark harness: timed runners, the evaluation suite, and paper-style
reporting."""

from repro.bench.runner import BenchmarkRecord, median_time, run_algorithm
from repro.bench.report import format_series, format_table
from repro.bench.datasets import evaluation_suite

__all__ = [
    "BenchmarkRecord",
    "median_time",
    "run_algorithm",
    "format_series",
    "format_table",
    "evaluation_suite",
]
