"""Serving benchmark: ``python -m repro.bench.serving``.

Where :mod:`repro.bench.smoke` measures one-shot batch solves, this
benchmark measures the *serving layer* (:mod:`repro.serve`): it stands
up a :class:`~repro.serve.ConnectivityService` +
:class:`~repro.serve.ConnectivityServer` per graph, drives a seeded
mixed stream of pair queries, size queries, and edge-insertion bursts
through the request queue, and reports **throughput** (requests/s) and
**client-observed latency** (p50/p95/p99, measured from submission to
future completion, so queueing and coalescing are included).

Correctness is gated by the epoch oracle: every published epoch's label
array must be **bit-identical** to a from-scratch batch re-solve of the
base graph plus the stream prefix absorbed at that epoch
(``ConnectivityService.batch_resolve``).  Any mismatch is a hard
failure (non-zero exit), so the CI ``serve-smoke`` job doubles as an
end-to-end consistency gate for the incremental link/compress path.

The JSON report mirrors the smoke report's shape — a ``records`` list
keyed by (dataset, algorithm, backend) with ``median_seconds`` and the
session counters — so two serving reports diff cleanly through
``repro obs diff``.  ``--ledger`` additionally appends one
``kind="serve"`` :class:`~repro.obs.ledger.RunRecord` per session.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable

import numpy as np

from repro.generators.lattice import grid_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph.csr import CSRGraph
from repro.serve import ConnectivityServer, ConnectivityService

#: (dataset name, builder) pairs — one skewed, one uniform degree
#: regime, sized for a sub-minute CI job.
SERVING_GRAPHS: tuple[tuple[str, Callable[[], CSRGraph]], ...] = (
    ("powerlaw-3k", lambda: barabasi_albert_graph(3000, edges_per_vertex=4, seed=11)),
    ("lattice-50x50", lambda: grid_graph(50, 50)),
)


def _skewed_vertices(
    rng: np.random.Generator, n: int, size: int, *, skew: float = 2.0
) -> np.ndarray:
    """Popularity-skewed vertex sample (hot keys get queried more).

    ``u**skew`` concentrates mass near 0 — low-id vertices act as the
    hot set, the realistic shape for a serving workload — while staying
    cheap and bounded (unlike e.g. an unbounded Zipf draw).
    """
    return np.minimum(
        (n * rng.random(size) ** skew).astype(np.int64), n - 1
    )


def build_workload(
    rng: np.random.Generator,
    num_vertices: int,
    requests: int,
    *,
    query_frac: float = 0.8,
    size_frac: float = 0.1,
    pair_batch: int = 32,
    update_edges: int = 32,
) -> list[tuple]:
    """A seeded mixed request stream: ``(kind, *arrays)`` tuples.

    ``query_frac`` of requests are same-component pair batches,
    ``size_frac`` are component-size batches, and the remainder are
    edge-insertion bursts of ``update_edges`` random edges.
    """
    ops: list[tuple] = []
    for _ in range(requests):
        r = rng.random()
        if r < query_frac:
            us = _skewed_vertices(rng, num_vertices, pair_batch)
            vs = rng.integers(0, num_vertices, size=pair_batch)
            ops.append(("same", us, vs))
        elif r < query_frac + size_frac:
            ops.append(("sizes", _skewed_vertices(rng, num_vertices, pair_batch)))
        else:
            src = rng.integers(0, num_vertices, size=update_edges)
            dst = rng.integers(0, num_vertices, size=update_edges)
            ops.append(("update", src, dst))
    return ops


def verify_epochs(
    service: ConnectivityService,
    epochs: list[tuple[int, int, np.ndarray]],
) -> tuple[bool, int]:
    """Check each captured epoch against a from-scratch batch re-solve.

    ``epochs`` holds ``(epoch, edges_applied, labels)`` triples captured
    by the service's ``on_epoch`` hook (plus the epoch-0 baseline).  The
    invariant is exact equality — both paths label every component by
    its minimum vertex id — so ``np.array_equal`` with no
    canonicalisation.  Returns ``(all_matched, epochs_checked)``.
    """
    ok = True
    for _epoch, applied, labels in epochs:
        resolved = service.batch_resolve(applied)
        ok = ok and bool(np.array_equal(labels, resolved))
    return ok, len(epochs)


def drive_session(
    graph: CSRGraph,
    dataset: str,
    *,
    algorithm: str = "afforest",
    backend: str | None = None,
    workers: int | None = None,
    requests: int = 400,
    query_frac: float = 0.8,
    size_frac: float = 0.1,
    pair_batch: int = 32,
    update_edges: int = 32,
    recompress_every: int = 1024,
    max_batch: int = 128,
    max_queue: int = 8192,
    seed: int = 17,
    oracle: bool = True,
    ledger: str | None = None,
    trace: bool = False,
) -> tuple[dict, ConnectivityService]:
    """One full serving session on ``graph``; returns (record, service).

    Solves the graph, starts the server, pushes the whole seeded
    workload through the queue (letting the worker loop batch and
    coalesce), closes with an explicit refresh so the final epoch
    captures every absorbed edge, then gathers latency percentiles,
    throughput, counters, and — with ``oracle`` — the per-epoch
    bit-identity verdict.
    """
    rng = np.random.default_rng(seed)
    epochs: list[tuple[int, int, np.ndarray]] = []
    service = ConnectivityService(
        graph,
        algorithm=algorithm,
        backend=backend,
        workers=workers,
        recompress_every=recompress_every,
        dataset=dataset,
        on_epoch=lambda s: epochs.append((s.epoch, s.edges_applied, s.labels)),
    )
    # The epoch-0 baseline participates in the oracle check too.
    base = service.snapshot
    epochs.append((base.epoch, base.edges_applied, base.labels))
    ops = build_workload(
        rng,
        service.num_vertices,
        requests,
        query_frac=query_frac,
        size_frac=size_frac,
        pair_batch=pair_batch,
        update_edges=update_edges,
    )
    latencies: list[float] = []

    def _measure(fut, t0: float) -> None:
        # Runs in the worker thread right as the future resolves;
        # list.append is atomic under the GIL.
        latencies.append(time.perf_counter() - t0)

    server = ConnectivityServer(
        service,
        max_batch=max_batch,
        max_queue=max_queue,
        trace=trace,
        record=ledger if ledger else False,
    )
    t_start = time.perf_counter()
    with server:
        for op in ops:
            t0 = time.perf_counter()
            if op[0] == "same":
                fut = server.submit_same(op[1], op[2])
            elif op[0] == "sizes":
                fut = server.submit_sizes(op[1])
            else:
                fut = server.submit_update(op[1], op[2])
            fut.add_done_callback(lambda f, t0=t0: _measure(f, t0))
        # Publish whatever is pending so the last epoch covers the full
        # stream (and lands in the oracle set).
        server.submit_refresh()
    t_wall = time.perf_counter() - t_start
    submitted = len(ops) + 1
    lat = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = (
        np.percentile(lat, [50.0, 95.0, 99.0]) if lat.size else (0.0, 0.0, 0.0)
    )
    counters = service.metrics.counters_snapshot()
    record: dict = {
        "dataset": dataset,
        "algorithm": algorithm,
        "backend": service.backend_kind,
        "plan": service.plan,
        "requests": submitted,
        "median_seconds": float(p50),
        "p50_ms": float(p50 * 1e3),
        "p95_ms": float(p95 * 1e3),
        "p99_ms": float(p99 * 1e3),
        "throughput_rps": submitted / t_wall if t_wall > 0 else 0.0,
        "session_seconds": t_wall,
        "epochs": service.epoch,
        "num_components": service.num_components,
        "edges_inserted": counters.get("serve_edges_inserted", 0),
        "coalesced": counters.get("serve_coalesced", 0),
        "batches": counters.get("serve_batches", 0),
        "counters": dict(counters),
    }
    if server.run_id is not None:
        record["run_id"] = server.run_id
    if oracle:
        ok, checked = verify_epochs(service, epochs)
        record["matches_oracle"] = ok
        record["oracle_epochs"] = checked
    return record, service


def run_serving(
    *,
    requests: int = 400,
    query_frac: float = 0.8,
    size_frac: float = 0.1,
    pair_batch: int = 32,
    update_edges: int = 32,
    recompress_every: int = 1024,
    max_batch: int = 128,
    seed: int = 17,
    oracle: bool = True,
    algorithm: str = "afforest",
    backend: str | None = None,
    workers: int | None = None,
    ledger: str | None = None,
) -> tuple[dict, int]:
    """Execute the serving matrix; returns ``(report, num_failures)``."""
    records: list[dict] = []
    failures = 0
    for dataset, build in SERVING_GRAPHS:
        record, _service = drive_session(
            build(),
            dataset,
            algorithm=algorithm,
            backend=backend,
            workers=workers,
            requests=requests,
            query_frac=query_frac,
            size_frac=size_frac,
            pair_batch=pair_batch,
            update_edges=update_edges,
            recompress_every=recompress_every,
            max_batch=max_batch,
            seed=seed,
            oracle=oracle,
            ledger=ledger,
        )
        if oracle and not record["matches_oracle"]:
            failures += 1
        status = (
            "ok"
            if record.get("matches_oracle", True)
            else "ORACLE MISMATCH"
        )
        print(
            f"{dataset:>14} {record['algorithm']:<10} "
            f"{record['backend']:<10} "
            f"{record['throughput_rps']:>9.0f} req/s  "
            f"p50={record['p50_ms']:.3f}ms "
            f"p95={record['p95_ms']:.3f}ms "
            f"p99={record['p99_ms']:.3f}ms  "
            f"epochs={record['epochs']} {status}"
        )
        records.append(record)
    report = {
        "kind": "serving",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "requests": requests,
        "query_frac": query_frac,
        "size_frac": size_frac,
        "pair_batch": pair_batch,
        "update_edges": update_edges,
        "recompress_every": recompress_every,
        "max_batch": max_batch,
        "seed": seed,
        "failures": failures,
        "records": records,
    }
    return report, failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; non-zero when any epoch disagrees with the
    batch re-solve oracle."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.serving",
        description="serving-layer throughput/latency benchmark with an "
        "epoch bit-identity oracle gate",
    )
    parser.add_argument("--output", help="write the JSON report to this path")
    parser.add_argument(
        "--requests", type=int, default=400,
        help="requests per serving session (default 400)",
    )
    parser.add_argument(
        "--query-frac", type=float, default=0.8,
        help="fraction of requests that are pair-query batches",
    )
    parser.add_argument(
        "--size-frac", type=float, default=0.1,
        help="fraction of requests that are size-query batches "
        "(the remainder are update bursts)",
    )
    parser.add_argument(
        "--pair-batch", type=int, default=32,
        help="vertex pairs per query request",
    )
    parser.add_argument(
        "--update-edges", type=int, default=32,
        help="edges per insertion burst",
    )
    parser.add_argument(
        "--recompress-every", type=int, default=1024,
        help="stream edges between re-compression epochs",
    )
    parser.add_argument(
        "--max-batch", type=int, default=128,
        help="requests coalesced per worker-loop wakeup",
    )
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--algorithm", default="afforest",
        help="algorithm/plan for the initial solve and the oracle",
    )
    parser.add_argument(
        "--backend", default=None,
        help="backend kind for the initial solve (default: engine default)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--no-oracle", action="store_true",
        help="skip the per-epoch batch re-solve verification",
    )
    parser.add_argument(
        "--ledger", metavar="PATH",
        help='append one kind="serve" run record per session to this '
        "JSONL ledger (repro obs diff reads it)",
    )
    args = parser.parse_args(argv)
    report, failures = run_serving(
        requests=args.requests,
        query_frac=args.query_frac,
        size_frac=args.size_frac,
        pair_batch=args.pair_batch,
        update_edges=args.update_edges,
        recompress_every=args.recompress_every,
        max_batch=args.max_batch,
        seed=args.seed,
        oracle=not args.no_oracle,
        algorithm=args.algorithm,
        backend=args.backend,
        workers=args.workers,
        ledger=args.ledger,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    if failures:
        print(
            f"error: {failures} serving session(s) published an epoch "
            "that disagrees with the batch re-solve oracle",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
