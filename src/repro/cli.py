"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``  write a synthetic dataset proxy to a graph file
``info``      print Table III-style statistics for a graph
``solve``     compute connected components and optionally save the labels
``compare``   run several algorithms on one graph and print a timing table
``plans``     list the sampling × finish plan space (``--check`` validates it)
``convert``   translate between the supported graph file formats
``serve``     stand up the connectivity serving layer on one graph and
              drive a mixed query/update stream through it (throughput,
              p50/p95/p99 latency, epoch bit-identity oracle)
``trace``     render a saved execution trace as an ASCII timeline
``obs``       run-ledger tools: ``runs`` lists recent recorded runs,
              ``show`` prints one (``--prom`` for Prometheus text),
              ``diff`` attributes a slowdown between two runs, reports,
              or ledgers, and ``watch`` streams live per-round progress

Algorithm arguments accept registered names (``afforest``, ``auto``, …)
and composed plan names (``<sampling>+<finish>``, e.g. ``kout+sv``);
``solve --plan`` makes the composition explicit.

``solve`` and ``compare`` accept ``--trace-out PATH`` (with
``--trace-format {jsonl,chrome}``) to export the telemetry trace of the
profiled run; chrome-format files load directly into Perfetto /
``chrome://tracing``, and either format round-trips through
``repro trace PATH``.

Graphs are referenced either by a file path (``.el``/``.txt``/``.graph``/
``.metis``/``.npz``) or by a dataset spec ``dataset:<name>[:<size>]``
(e.g. ``dataset:kron:small``) resolved through the generator registry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

import numpy as np

import repro
from repro.constants import LABEL_DTYPE_POLICIES
from repro.engine import (
    CANONICAL_PLANS,
    available_algorithms,
    backend_kinds,
    get_algorithm,
    make_backend,
)
from repro.errors import ConfigurationError, ReproError
from repro.generators.datasets import DATASETS, SIZE_TIERS, load_dataset
from repro.graph.csr import CSRGraph
from repro.graph.io import load_graph, save_graph
from repro.graph.properties import summarize
from repro.obs import (
    TRACE_FORMATS,
    HeartbeatEvent,
    HeartbeatMonitor,
    RunDiff,
    RunLedger,
    attribution_markdown,
    diff_runs,
    format_diff,
    format_event,
    load_trace,
    render_prometheus,
    render_trace,
    skew_lines,
    write_trace,
)


def _resolve_graph(spec: str, seed: int) -> CSRGraph:
    """Load a graph from a file path or a ``dataset:`` spec."""
    if spec.startswith("dataset:"):
        parts = spec.split(":")
        name = parts[1] if len(parts) > 1 else ""
        size = parts[2] if len(parts) > 2 else "default"
        return load_dataset(name, size, seed=seed)
    return load_graph(spec)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, args.size, seed=args.seed)
    save_graph(graph, args.output)
    print(
        f"wrote {args.dataset}/{args.size} "
        f"({graph.num_vertices} vertices, {graph.num_edges} edges) "
        f"to {args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args.graph, args.seed)
    p = summarize(graph, args.graph)
    print(f"graph:       {args.graph}")
    print(f"vertices:    {p.num_vertices}")
    print(f"edges:       {p.num_edges}")
    print(
        f"degree:      mean {p.degree.mean:.2f}, median {p.degree.median:.0f}, "
        f"max {p.degree.max}, isolated {p.degree.num_isolated}"
    )
    print(
        f"components:  {p.components.num_components} "
        f"(largest {p.components.largest}, "
        f"{p.components.largest_fraction:.1%} of vertices)"
    )
    print(f"diameter:    >= {p.pseudo_diameter} (double-sweep bound)")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.plan:
        if args.algorithm is not None:
            raise ConfigurationError(
                "pass either --algorithm or --plan, not both"
            )
        args.algorithm = args.plan
    elif args.algorithm is None:
        args.algorithm = "afforest"
    # Validate the name and the algorithm×backend combination against the
    # registry up front — a typo or unsupported substrate should fail
    # before the (possibly expensive) graph load, not deep in dispatch.
    spec = get_algorithm(args.algorithm)
    if not spec.supports_backend(args.backend):
        raise ConfigurationError(
            f"algorithm {args.algorithm!r} does not support the "
            f"{args.backend!r} backend; supported: {list(spec.backends)}"
        )
    graph = _resolve_graph(args.graph, args.seed)
    backend = make_backend(
        args.backend, workers=args.workers,
        ranks=getattr(args, "ranks", None),
        label_dtype=getattr(args, "label_dtype", "auto"),
    )
    try:
        t0 = time.perf_counter()
        result = repro.engine.run(
            args.algorithm, graph, backend=backend,
            trace=bool(args.trace_out),
        )
        elapsed = time.perf_counter() - t0
    finally:
        backend.close()
    labels = result.labels
    tag = "" if args.backend == "vectorized" else f" [{args.backend}]"
    # Plan provenance: shown only when the name does not already determine
    # the composition — i.e. `auto`, whose choice is made at runtime.
    implied = CANONICAL_PLANS.get(args.algorithm, args.algorithm)
    if result.plan and result.plan != implied:
        tag += f" (plan {result.plan})"
    print(
        f"{args.algorithm}{tag}: {result.num_components} components in "
        f"{elapsed * 1000:.1f} ms "
        f"({graph.num_vertices} vertices, {graph.num_edges} edges)"
    )
    if args.output:
        np.savez_compressed(args.output, labels=labels)
        print(f"labels written to {args.output}")
    if args.trace_out and result.trace is not None:
        write_trace(result.trace, args.trace_out, format=args.trace_format)
        print(f"trace written to {args.trace_out} ({args.trace_format})")
    return 0


def _cmd_plans(args: argparse.Namespace) -> int:
    from repro.engine import PlanRegistry, describe_plans

    if args.check:
        return _check_plans(args)
    registry = PlanRegistry()
    samplings = registry.samplings
    finishes = registry.finishes
    print("sampling phases:")
    for name in sorted(samplings):
        print(f"  {name:<10} {samplings[name].description}")
    print("\nfinish phases:")
    for name in sorted(finishes):
        spec = finishes[name]
        notes = []
        if spec.supports_skip:
            notes.append("skip-capable")
        if spec.whole_graph:
            notes.append("whole-graph: composes with 'none' only")
        suffix = f"  [{', '.join(notes)}]" if notes else ""
        print(f"  {name:<14} {spec.description}{suffix}")
    plans = describe_plans()
    print(f"\ncomposed plans ({len(plans)}):")
    for name, _ in plans:
        print(f"  {name}")
    print("\nrun one with: repro solve <graph> --plan <sampling>+<finish>")
    return 0


def _check_plans(args: argparse.Namespace) -> int:
    """Validate that every registered plan runs on every declared backend.

    Runs each composition on a small multi-component graph per backend
    kind and compares the labels against the scipy oracle's
    component-minimum labeling; exits non-zero on any mismatch (the CI
    gate behind ``repro plans --check``).
    """
    from repro.engine import available_plans
    from repro.engine.plan import PLAN_BACKENDS
    from repro.generators.components import component_fraction_graph
    from repro.graph.properties import scipy_components

    graph = component_fraction_graph(150, 0.3, seed=3)
    comp = scipy_components(graph)
    n = graph.num_vertices
    mins = np.full(int(comp.max()) + 1, n, dtype=np.int64)
    np.minimum.at(mins, comp, np.arange(n, dtype=np.int64))
    expected = mins[comp]

    kinds = PLAN_BACKENDS
    if getattr(args, "backend", None):
        kinds = tuple(k for k in kinds if k == args.backend)

    failures = []
    checked = 0
    for kind in kinds:
        backend = make_backend(
            kind, workers=args.workers, ranks=getattr(args, "ranks", None)
        )
        try:
            for plan_name in available_plans():
                checked += 1
                try:
                    result = repro.engine.run(plan_name, graph, backend=backend)
                    ok = np.array_equal(result.labels, expected)
                except ReproError as exc:
                    failures.append(f"{plan_name} [{kind}]: {exc}")
                    continue
                if not ok:
                    failures.append(
                        f"{plan_name} [{kind}]: labels diverge from oracle"
                    )
        finally:
            backend.close()
    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        print(
            f"plans check: {len(failures)}/{checked} plan×backend "
            "combinations failed",
            file=sys.stderr,
        )
        return 1
    print(f"plans check: {checked} plan×backend combinations OK")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.report import format_table
    from repro.bench.runner import run_algorithm

    algorithms = [algo.strip() for algo in args.algorithms.split(",")]
    if args.plans is not None:
        from repro.engine import available_plans

        # --plans alone appends the full composed matrix; --plans a,b
        # appends just those compositions.
        extra = (
            available_plans()
            if args.plans == ""
            else [p.strip() for p in args.plans.split(",")]
        )
        algorithms.extend(p for p in extra if p not in algorithms)
    # Validate every name against the registry up front — a typo should
    # fail before the (possibly expensive) graph load and timing runs.
    specs = {algo: get_algorithm(algo) for algo in algorithms}
    # Algorithms that cannot run on the requested substrate are skipped
    # with a notice rather than aborting the whole comparison.
    unsupported = [
        algo
        for algo, spec in specs.items()
        if not spec.supports_backend(args.backend)
    ]
    for algo in unsupported:
        print(f"note: {algo} does not support the {args.backend} backend; skipped")
    algorithms = [algo for algo in algorithms if algo not in unsupported]
    if not algorithms:
        print("error: no requested algorithm supports the backend", file=sys.stderr)
        return 1
    graph = _resolve_graph(args.graph, args.seed)
    backend = make_backend(
        args.backend, workers=args.workers,
        ranks=getattr(args, "ranks", None),
        label_dtype=getattr(args, "label_dtype", "auto"),
    )
    try:
        records = [
            run_algorithm(
                graph, algo, args.graph, repeats=args.repeats, backend=backend
            )
            for algo in algorithms
        ]
    finally:
        backend.close()
    baseline = records[0]
    rows = [
        [
            rec.algorithm,
            round(rec.median_seconds * 1000, 3),
            round(rec.p25_seconds * 1000, 3),
            round(rec.p75_seconds * 1000, 3),
            round(rec.speedup_over(baseline), 2),
        ]
        for rec in records
    ]
    print(
        format_table(
            f"algorithm comparison on {args.graph}",
            ["algorithm", "median_ms", "p25_ms", "p75_ms", f"speedup_vs_{baseline.algorithm}"],
            rows,
        )
    )
    if args.profile:
        for rec in records:
            _print_profile(rec)
    if args.trace_out:
        _write_compare_traces(records, args.trace_out, args.trace_format)
    return 0


def _write_compare_traces(records, path: str, format: str) -> None:
    """Export each record's profiled-sample trace.

    One algorithm writes exactly ``path``; several write ``stem-algo.ext``
    siblings so each algorithm's trace stays a self-contained file.
    """
    from pathlib import Path

    traced = [rec for rec in records if rec.trace is not None]
    base = Path(path)
    for rec in traced:
        dest = (
            base
            if len(traced) == 1
            else base.with_name(f"{base.stem}-{rec.algorithm}{base.suffix}")
        )
        write_trace(rec.trace, dest, format=format)
        print(f"trace written to {dest} ({format}, {rec.algorithm})")


def _print_profile(rec) -> None:
    """Print one record's per-phase wall-time breakdown, if it has one."""
    phases = dict(rec.extra.get("phase_seconds") or {})
    if not phases:
        print(f"\n{rec.algorithm}: no phase breakdown recorded")
        return
    # "total" is the whole-run wall time, not a phase — report it as the
    # denominator rather than a band of itself.
    wall = phases.pop("total", None)
    total = wall if wall else (sum(phases.values()) or 1.0)
    print(f"\n{rec.algorithm} phase breakdown (first sample):")
    for label, secs in phases.items():
        print(f"  {label:<10} {secs * 1000:10.3f} ms  {secs / total:6.1%}")
    if wall is not None:
        covered = sum(phases.values())
        print(
            f"  {'total':<10} {wall * 1000:10.3f} ms  "
            f"(phases cover {covered / total:.1%}, rest is dispatch)"
        )
    counters = {
        k: v
        for k, v in rec.extra.items()
        if k != "phase_seconds" and isinstance(v, (int, float))
    }
    if counters:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"  counters: {parts}")
    skew = rec.extra.get("worker_skew")
    if skew:
        print("  worker skew (max/mean block time per phase):")
        for line in skew_lines(skew):
            print(f"  {line}")


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = load_trace(args.path)
    print(render_trace(trace, width=args.width))
    return 0


def _cmd_obs_runs(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger)
    records = ledger.last(args.limit)
    if not records:
        print(f"no records in {ledger.path}")
        return 0
    print(
        f"{'run id':<22} {'kind':<10} {'run':<34} "
        f"{'backend':<11} {'ms':>10}"
    )
    for rec in records:
        print(
            f"{rec.run_id:<22} {rec.kind:<10} {rec.label():<34} "
            f"{rec.backend or '-':<11} {rec.seconds * 1000:>10.2f}"
        )
    print(f"\n{len(records)} record(s) from {ledger.path}")
    return 0


def _cmd_obs_show(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger)
    rec = ledger.resolve(args.run)
    if args.prom:
        sys.stdout.write(render_prometheus(rec))
        return 0
    print(f"run:        {rec.run_id}  ({rec.kind})")
    print(f"algorithm:  {rec.algorithm or '-'}  plan={rec.plan or '-'}")
    workers = "" if rec.workers is None else f", workers={rec.workers}"
    print(f"backend:    {rec.backend or '-'}{workers}")
    if rec.graph:
        print(
            f"graph:      {rec.graph.get('vertices', '?')} vertices, "
            f"{rec.graph.get('edges', '?')} edges "
            f"[{rec.graph.get('digest', '?')}]"
        )
    comps = "" if rec.num_components is None else f"  {rec.num_components} components"
    print(f"seconds:    {rec.seconds:.6f}{comps}")
    if rec.label_dtype_bits:
        print(f"labels:     int{rec.label_dtype_bits}")
    if rec.phase_seconds:
        print("phases:")
        for label, secs in rec.phase_seconds.items():
            print(f"  {label:<12} {secs * 1000:10.3f} ms")
    if rec.counters:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(rec.counters.items()))
        print(f"counters:   {parts}")
    if rec.gauges:
        parts = ", ".join(f"{k}={v:g}" for k, v in sorted(rec.gauges.items()))
        print(f"gauges:     {parts}")
    if rec.meta:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(rec.meta.items()))
        print(f"meta:       {parts}")
    return 0


def _obs_matrix_key(rec: dict) -> tuple[str, str, str]:
    return (
        str(rec.get("dataset", "?")),
        str(rec.get("algorithm", "?")),
        str(rec.get("backend", "?")),
    )


def _obs_source(
    arg: str, ledger_path: str | None
) -> tuple[str, Any]:
    """Resolve one ``obs diff`` operand.

    An existing file is sniffed by shape: a JSONL whose first record has
    a ``run_id`` is a run ledger (one entry per combination, latest
    wins); a JSON object with a ``records`` key is a smoke/benchmark
    report; anything else is a trace file.  A non-file argument is a
    run reference (``latest``, ``-N``, or a run-id prefix) resolved
    against ``--ledger``.  Returns ``("matrix", {key: run})`` or
    ``("run", source)``.
    """
    path = Path(arg)
    if path.exists():
        text = path.read_text(encoding="utf-8")
        first = next((ln for ln in text.splitlines() if ln.strip()), "")
        try:
            head = json.loads(first)
        except ValueError:
            head = None
        if isinstance(head, dict) and head.get("run_id"):
            matrix: dict[tuple[str, str, str], Any] = {}
            for rec in RunLedger(path).records():
                dataset = (
                    rec.meta.get("dataset") or rec.graph.get("digest") or "?"
                )
                key = (
                    str(dataset),
                    rec.algorithm or rec.plan or "?",
                    rec.backend or "?",
                )
                matrix[key] = rec
            return "matrix", matrix
        try:
            whole = json.loads(text)
        except ValueError:
            whole = None
        if isinstance(whole, dict) and "records" in whole:
            matrix = {}
            for rec in whole.get("records") or []:
                if isinstance(rec, dict) and "median_seconds" in rec:
                    matrix[_obs_matrix_key(rec)] = rec
            return "matrix", matrix
        return "run", load_trace(arg)
    return "run", RunLedger(ledger_path).resolve(arg)


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    kind_a, a = _obs_source(args.run_a, args.ledger)
    kind_b, b = _obs_source(args.run_b, args.ledger)
    if kind_a != kind_b:
        raise ConfigurationError(
            "cannot diff a report/ledger matrix against a single run; "
            "pass two reports/ledgers or two runs/traces"
        )
    if kind_a == "matrix":
        pairs: list[tuple[str, RunDiff]] = []
        for key in sorted(set(a) & set(b)):
            name = "/".join(key)
            pairs.append(
                (name, diff_runs(a[key], b[key], label_a=name, label_b=name))
            )
        if not pairs:
            print("no comparable (dataset, algorithm, backend) combinations")
        for name, diff in sorted(
            pairs, key=lambda item: item[1].ratio, reverse=True
        ):
            print(diff.summary())
        markdown = attribution_markdown(pairs)
    else:
        diff = diff_runs(a, b)
        print(format_diff(diff))
        name = diff.label_b or diff.label_a or "run"
        markdown = attribution_markdown([(name, diff)])
    if args.summary_out:
        with open(args.summary_out, "a", encoding="utf-8") as fh:
            fh.write(markdown + "\n")
        print(f"markdown attribution appended to {args.summary_out}")
    return 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    spec = get_algorithm(args.algorithm)
    if not spec.supports_backend(args.backend):
        raise ConfigurationError(
            f"algorithm {args.algorithm!r} does not support the "
            f"{args.backend!r} backend; supported: {list(spec.backends)}"
        )
    graph = _resolve_graph(args.graph, args.seed)
    counts = {"round": 0, "block": 0}

    def sink(event: HeartbeatEvent) -> None:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == "block" and not args.blocks:
            return
        print(format_event(event), flush=True)

    backend = make_backend(args.backend, workers=args.workers)
    try:
        t0 = time.perf_counter()
        result = repro.engine.run(
            args.algorithm,
            graph,
            backend=backend,
            heartbeat=HeartbeatMonitor(sink),
        )
        elapsed = time.perf_counter() - t0
    finally:
        backend.close()
    print(
        f"{args.algorithm}: {result.num_components} components in "
        f"{elapsed * 1000:.1f} ms ({counts['round']} rounds, "
        f"{counts['block']} worker blocks)"
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args.input, args.seed)
    save_graph(graph, args.output)
    print(f"converted {args.input} -> {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.bench.serving import drive_session

    graph = _resolve_graph(args.graph, args.seed)
    record, service = drive_session(
        graph,
        args.graph,
        algorithm=args.algorithm,
        backend=args.backend,
        workers=args.workers,
        requests=args.requests,
        query_frac=args.query_frac,
        size_frac=args.size_frac,
        pair_batch=args.pair_batch,
        update_edges=args.update_edges,
        recompress_every=args.recompress_every,
        max_batch=args.max_batch,
        seed=args.seed,
        oracle=not args.no_oracle,
        ledger=args.ledger,
    )
    counters = record["counters"]
    plan = f" (plan {record['plan']})" if record.get("plan") else ""
    print(
        f"served {args.graph}: {record['algorithm']} on "
        f"{record['backend']}{plan}"
    )
    print(
        f"  requests    {record['requests']} "
        f"({counters.get('serve_batch_queries', 0)} query batches, "
        f"{counters.get('serve_updates', 0)} update bursts, "
        f"{counters.get('serve_coalesced', 0)} coalesced)"
    )
    print(f"  throughput  {record['throughput_rps']:.0f} req/s")
    print(
        f"  latency     p50 {record['p50_ms']:.3f} ms   "
        f"p95 {record['p95_ms']:.3f} ms   p99 {record['p99_ms']:.3f} ms"
    )
    print(
        f"  state       {record['epochs']} epochs published, "
        f"{record['edges_inserted']} stream edges absorbed, "
        f"{record['num_components']} components"
    )
    ok = True
    if not args.no_oracle:
        ok = bool(record["matches_oracle"])
        verdict = (
            "bit-identical to batch re-solve"
            if ok
            else "MISMATCH against batch re-solve"
        )
        print(f"  oracle      {record['oracle_epochs']} epochs {verdict}")
    if args.output:
        report = {
            "kind": "serving",
            "failures": 0 if ok else 1,
            "records": [record],
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    if args.prom_out:
        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(service.prometheus())
        print(f"prometheus metrics written to {args.prom_out}")
    if not ok:
        print(
            "error: a published epoch disagrees with the batch re-solve "
            "oracle",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the ``repro`` command line."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Afforest connected components (IPDPS 2018 reproduction)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="seed for dataset: specs"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic dataset to a file")
    p.add_argument("dataset", choices=sorted(DATASETS))
    p.add_argument("output")
    p.add_argument("--size", choices=sorted(SIZE_TIERS), default="default")
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("info", help="print graph statistics")
    p.add_argument("graph")
    p.set_defaults(fn=_cmd_info)

    # Enumerated from the registry so `--help` always lists exactly the
    # algorithms that will resolve (including any registered extensions).
    algo_names = ", ".join(available_algorithms())

    def add_backend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=backend_kinds(),
            default="vectorized",
            help="execution substrate (default: vectorized)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for the simulated/process backends "
            "(default: one per core, capped at 8)",
        )
        p.add_argument(
            "--ranks",
            type=int,
            default=None,
            help="world size for the distributed backend (default: 4)",
        )
        p.add_argument(
            "--label-dtype",
            choices=LABEL_DTYPE_POLICIES,
            default="auto",
            help="parent-array width policy: auto narrows to int32 when "
            "the graph fits (results are identical; wide forces int64)",
        )

    def add_trace_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace-out",
            help="export the profiled run's telemetry trace to this path",
        )
        p.add_argument(
            "--trace-format",
            choices=TRACE_FORMATS,
            default="chrome",
            help="trace file format (default: chrome, Perfetto-loadable)",
        )

    p = sub.add_parser("solve", help="compute connected components")
    p.add_argument("graph")
    p.add_argument(
        "-a",
        "--algorithm",
        default=None,
        help=f"registered algorithm or plan name (default: afforest; "
        f"one of: {algo_names}; or '<sampling>+<finish>')",
    )
    p.add_argument(
        "--plan",
        default=None,
        metavar="SAMPLING+FINISH",
        help="composed plan to run (e.g. kout+sv); alternative to "
        "--algorithm",
    )
    p.add_argument("--output", help="write labels to an .npz file")
    add_backend_args(p)
    add_trace_args(p)
    p.set_defaults(fn=_cmd_solve)

    p = sub.add_parser("compare", help="time several algorithms on one graph")
    p.add_argument("graph")
    p.add_argument(
        "--algorithms", default="afforest,sv,lp,bfs,dobfs",
        help=f"comma-separated algorithm or plan names (from: {algo_names}; "
        "plans as '<sampling>+<finish>')",
    )
    p.add_argument(
        "--plans",
        nargs="?",
        const="",
        default=None,
        metavar="PLAN[,PLAN...]",
        help="also compare composed plans: a comma-separated list, or no "
        "value for every registered plan",
    )
    p.add_argument("--repeats", type=int, default=7)
    p.add_argument(
        "--profile",
        action="store_true",
        help="print each algorithm's per-phase wall-time breakdown",
    )
    add_backend_args(p)
    add_trace_args(p)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser(
        "plans",
        help="list the sampling x finish plan space "
        "(--check validates every plan on every backend)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="run every composed plan on every backend against the "
        "scipy oracle; non-zero exit on any failure",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the simulated/process backends during "
        "--check",
    )
    p.add_argument(
        "--backend",
        choices=backend_kinds(),
        default=None,
        help="restrict --check to one backend (default: all)",
    )
    p.add_argument(
        "--ranks",
        type=int,
        default=None,
        help="world size for the distributed backend during --check "
        "(default: 4)",
    )
    p.set_defaults(fn=_cmd_plans)

    p = sub.add_parser("convert", help="translate between graph file formats")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser(
        "serve",
        help="run the connectivity serving layer over one graph: solve "
        "once, drive a mixed query/update stream, report throughput and "
        "latency percentiles",
    )
    p.add_argument("graph")
    p.add_argument(
        "-a",
        "--algorithm",
        default="afforest",
        help=f"algorithm or plan for the initial solve (one of: "
        f"{algo_names}; or '<sampling>+<finish>')",
    )
    p.add_argument(
        "--backend",
        choices=backend_kinds(),
        default=None,
        help="backend for the initial solve (serving reads are "
        "vectorized NumPy regardless)",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--requests", type=int, default=400,
        help="requests in the driven stream (default 400)",
    )
    p.add_argument(
        "--query-frac", type=float, default=0.8,
        help="fraction of requests that are pair-query batches",
    )
    p.add_argument(
        "--size-frac", type=float, default=0.1,
        help="fraction that are size-query batches (rest are updates)",
    )
    p.add_argument(
        "--pair-batch", type=int, default=32,
        help="vertex pairs per query request",
    )
    p.add_argument(
        "--update-edges", type=int, default=32,
        help="edges per insertion burst",
    )
    p.add_argument(
        "--recompress-every", type=int, default=1024,
        help="stream edges absorbed between re-compression epochs",
    )
    p.add_argument(
        "--max-batch", type=int, default=128,
        help="requests coalesced per worker-loop wakeup",
    )
    p.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip verifying each epoch against a batch re-solve",
    )
    p.add_argument("--output", help="write a JSON serving report here")
    p.add_argument(
        "--prom-out",
        metavar="PATH",
        help="write the session's Prometheus text exposition here",
    )
    p.add_argument(
        "--ledger",
        metavar="PATH",
        help='append a kind="serve" session record to this JSONL ledger',
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "trace", help="render a saved trace (jsonl or chrome) as ASCII"
    )
    p.add_argument("path")
    p.add_argument(
        "--width", type=int, default=48, help="timeline column width"
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "obs",
        help="run-ledger tools: list, show, diff, and watch recorded runs",
    )
    obs = p.add_subparsers(dest="obs_command", required=True)

    def add_ledger_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger",
            default=None,
            metavar="PATH",
            help="ledger file (default: $REPRO_LEDGER or .repro/ledger.jsonl)",
        )

    q = obs.add_parser("runs", help="list the most recent recorded runs")
    add_ledger_arg(q)
    q.add_argument(
        "-n", "--limit", type=int, default=20, help="rows to show (newest last)"
    )
    q.set_defaults(fn=_cmd_obs_runs)

    q = obs.add_parser(
        "show", help="print one recorded run (--prom for Prometheus text)"
    )
    q.add_argument(
        "run", help="run reference: run-id prefix, 'latest', or -N"
    )
    add_ledger_arg(q)
    q.add_argument(
        "--prom",
        action="store_true",
        help="emit the run's metrics in Prometheus text exposition format",
    )
    q.set_defaults(fn=_cmd_obs_show)

    q = obs.add_parser(
        "diff",
        help="attribute the slowdown between two runs, reports, or ledgers",
    )
    q.add_argument(
        "run_a",
        help="baseline: a run reference, a trace file, a smoke/benchmark "
        "report (JSON with 'records'), or a ledger (JSONL)",
    )
    q.add_argument("run_b", help="candidate: same forms as the baseline")
    add_ledger_arg(q)
    q.add_argument(
        "--summary-out",
        metavar="PATH",
        help="append the markdown attribution table to this file "
        "(point at $GITHUB_STEP_SUMMARY in CI)",
    )
    q.set_defaults(fn=_cmd_obs_diff)

    q = obs.add_parser(
        "watch", help="run an algorithm and stream live per-round progress"
    )
    q.add_argument("graph")
    q.add_argument(
        "-a",
        "--algorithm",
        default="afforest",
        help=f"registered algorithm or plan name (one of: {algo_names})",
    )
    q.add_argument(
        "--backend",
        choices=backend_kinds(),
        default="vectorized",
        help="execution substrate (default: vectorized)",
    )
    q.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the simulated/process backends",
    )
    q.add_argument(
        "--blocks",
        action="store_true",
        help="also print per-worker block completions (process backend)",
    )
    q.set_defaults(fn=_cmd_obs_watch)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved Unix tools do.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
