"""Component-fraction graphs for the Fig. 8c experiment.

The paper (Sec. VI-C): "we generate uniformly random (urand) graphs with an
additional parameter — average component fraction f in (0, 1] — s.t. the
resulting graph has (in expectation) floor(1/f) components of size
floor(|V| * f) and a component with the remaining vertices."

Construction: partition the vertex set into ``floor(1/f)`` blocks of size
``floor(n * f)`` plus one remainder block; draw uniformly random edges
*within* each block, allocating the global edge budget proportionally to
block size so each block keeps the same expected average degree.  With the
GAP edge factor (16) every block is internally connected almost surely, so
block = component holds in practice; the property tests assert it.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng, require_positive
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph


def component_blocks(num_vertices: int, fraction: float) -> np.ndarray:
    """Block sizes for a component-fraction graph.

    Returns an array of block sizes summing to ``num_vertices``:
    ``floor(1 / fraction)`` blocks of ``floor(n * fraction)`` vertices,
    then one block holding the remainder (if any).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must lie in (0, 1], got {fraction}")
    block = int(num_vertices * fraction)
    if block < 1:
        raise ConfigurationError(
            f"fraction {fraction} yields empty blocks for n={num_vertices}"
        )
    count = int(1.0 / fraction)
    count = min(count, num_vertices // block)
    sizes = [block] * count
    rest = num_vertices - block * count
    if rest:
        sizes.append(rest)
    return np.asarray(sizes, dtype=VERTEX_DTYPE)


def component_fraction_graph(
    num_vertices: int,
    fraction: float,
    *,
    edge_factor: float = 16.0,
    seed: int | np.random.Generator | None = 0,
    shuffle_labels: bool = True,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """urand graph whose components each span ~``fraction`` of the vertices.

    Parameters
    ----------
    num_vertices:
        Total vertex count ``n``.
    fraction:
        Average component fraction ``f`` in ``(0, 1]``.
    edge_factor:
        Edge draws per vertex, allocated to blocks proportionally to size.
    shuffle_labels:
        Randomly permute vertex ids so block membership is not encoded in
        id ranges (matches how real multi-component graphs present).
    """
    require_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    sizes = component_blocks(num_vertices, fraction)
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for b, size in enumerate(sizes.tolist()):
        base = int(offsets[b])
        m_b = int(round(edge_factor * size))
        if size == 1 or m_b == 0:
            continue
        src_parts.append(
            base + rng.integers(0, size, size=m_b, dtype=VERTEX_DTYPE)
        )
        dst_parts.append(
            base + rng.integers(0, size, size=m_b, dtype=VERTEX_DTYPE)
        )
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        src = dst = np.empty(0, dtype=VERTEX_DTYPE)
    edges = EdgeList(num_vertices, src, dst)
    if shuffle_labels:
        perm = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
        edges = edges.relabeled(perm, num_vertices)
    return build_csr(edges, sort_neighbors=sort_neighbors)
