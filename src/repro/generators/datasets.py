"""The evaluation dataset registry: scaled proxies of Table III.

The paper evaluates on the GAP suite's datasets.  The originals range from
24M to 174M vertices; this library regenerates each *topology class* at a
configurable scale tier so the full benchmark matrix runs on one machine:

=============  =====================================  =========================
name           paper original                         proxy generator
=============  =====================================  =========================
``road``       USA road network (n=23.9M, d~2.4)      perturbed grid
``osm-eur``    OSM Europe (n=174M, d~2.1)             sparser perturbed grid
``twitter``    Twitter follower graph (n=61.6M)       Chung–Lu power law
``web``        sk-2005 crawl (n=50.6M)                ring locality + hubs
``kron``       Graph500 Kronecker (scale 27, ef 16)   R-MAT
``urand``      uniform random (scale 27, ef 16)       G(n, m)
``kron-gpu``   Kronecker (GPU-sized)                  R-MAT, smaller
``urand-gpu``  uniform random (GPU-sized)             G(n, m), smaller
=============  =====================================  =========================

Size tiers scale the vertex count; topology parameters (degrees, locality,
drop rates) stay fixed so the *shape* of every measured effect carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.generators.kronecker import kronecker_graph
from repro.generators.lattice import road_network_graph
from repro.generators.powerlaw import chung_lu_graph
from repro.generators.smallworld import web_graph
from repro.generators.uniform import uniform_random_graph
from repro.graph.csr import CSRGraph

#: log2 vertex-count budget per size tier.
SIZE_TIERS = {
    "tiny": 10,
    "small": 13,
    "default": 16,
    "large": 18,
}


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset class and its proxy generator."""

    name: str
    description: str
    #: generator(scale, seed) -> CSRGraph, where 2**scale ~ vertex budget.
    factory: Callable[[int, int], CSRGraph]


def _road(scale: int, seed: int) -> CSRGraph:
    side = int(round(2 ** (scale / 2)))
    return road_network_graph(side, side, drop=0.05, highway=0.0005, seed=seed)


def _osm_eur(scale: int, seed: int) -> CSRGraph:
    side = int(round(2 ** (scale / 2)))
    # Heavier edge dropping: sparser, higher-diameter, more fragmented.
    return road_network_graph(side, side, drop=0.12, highway=0.0, seed=seed)


def _twitter(scale: int, seed: int) -> CSRGraph:
    return chung_lu_graph(
        1 << scale, exponent=2.1, mean_degree=24.0, seed=seed
    )


def _web(scale: int, seed: int) -> CSRGraph:
    return web_graph(
        1 << scale, local_k=8, rewire=0.01, hub_edges_per_vertex=4, seed=seed
    )


def _kron(scale: int, seed: int) -> CSRGraph:
    return kronecker_graph(scale, edge_factor=16.0, seed=seed)


def _urand(scale: int, seed: int) -> CSRGraph:
    return uniform_random_graph(1 << scale, edge_factor=16.0, seed=seed)


def _kron_gpu(scale: int, seed: int) -> CSRGraph:
    return kronecker_graph(max(scale - 2, 1), edge_factor=16.0, seed=seed)


def _urand_gpu(scale: int, seed: int) -> CSRGraph:
    return uniform_random_graph(1 << max(scale - 2, 1), edge_factor=16.0, seed=seed)


DATASETS: dict[str, DatasetSpec] = {
    "road": DatasetSpec("road", "USA-road proxy: perturbed grid", _road),
    "osm-eur": DatasetSpec("osm-eur", "OSM-Europe proxy: sparse grid", _osm_eur),
    "twitter": DatasetSpec("twitter", "social-network proxy: Chung-Lu", _twitter),
    "web": DatasetSpec("web", "web-crawl proxy: locality + hubs", _web),
    "kron": DatasetSpec("kron", "Graph500 Kronecker", _kron),
    "urand": DatasetSpec("urand", "uniform random G(n,m)", _urand),
    "kron-gpu": DatasetSpec("kron-gpu", "Kronecker, GPU-sized", _kron_gpu),
    "urand-gpu": DatasetSpec("urand-gpu", "uniform random, GPU-sized", _urand_gpu),
}

#: The dataset names used by the CPU performance figures (Fig. 8a).
CPU_SUITE = ("road", "osm-eur", "twitter", "web", "kron", "urand")

#: The dataset names used by the GPU comparison.
GPU_SUITE = ("road", "osm-eur", "twitter", "web", "kron-gpu", "urand-gpu")


def load_dataset(
    name: str,
    size: str = "default",
    *,
    seed: int = 42,
) -> CSRGraph:
    """Generate the proxy graph for dataset ``name`` at a size tier.

    Parameters
    ----------
    name:
        One of :data:`DATASETS`.
    size:
        One of :data:`SIZE_TIERS` (``tiny``/``small``/``default``/``large``)
        — log2 vertex budgets 10/13/16/18.
    seed:
        Generation seed; the (name, size, seed) triple is deterministic.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    scale = SIZE_TIERS.get(size)
    if scale is None:
        raise ConfigurationError(
            f"unknown size tier {size!r}; available: {sorted(SIZE_TIERS)}"
        )
    return spec.factory(scale, seed)
