"""Random d-regular graphs via the configuration model.

Used by the uniform edge sampling theory of Sec. IV-B (Frieze et al.'s
threshold ``p >= (1 + eps) / d`` applies to d-regular graphs).  The
configuration model pairs ``n * d`` half-edge "stubs" uniformly at random;
self loops and duplicate pairings are re-shuffled a bounded number of times
and any stragglers dropped, yielding a graph that is d-regular up to a
vanishing defect — sufficient for every sampling experiment, which only
relies on near-uniform degree.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng, require_positive
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph

_MAX_RESHUFFLES = 32


def random_regular_graph(
    num_vertices: int,
    degree: int,
    *,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Near-d-regular simple graph on ``num_vertices`` vertices.

    ``num_vertices * degree`` must be even (half-edges must pair up).
    """
    require_positive("num_vertices", num_vertices)
    if degree < 0:
        raise ConfigurationError(f"degree must be >= 0, got {degree}")
    if degree >= num_vertices:
        raise ConfigurationError(
            f"degree ({degree}) must be < num_vertices ({num_vertices}) "
            "for a simple graph"
        )
    if (num_vertices * degree) % 2 != 0:
        raise ConfigurationError(
            f"num_vertices * degree must be even, got {num_vertices} * {degree}"
        )
    rng = make_rng(seed)
    stubs = np.repeat(
        np.arange(num_vertices, dtype=VERTEX_DTYPE), degree
    )
    rng.shuffle(stubs)
    src = stubs[0::2]
    dst = stubs[1::2]

    seen: set[tuple[int, int]] = set()
    good_src: list[np.ndarray] = []
    good_dst: list[np.ndarray] = []
    for _ in range(_MAX_RESHUFFLES):
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        bad = lo == hi  # self loops
        # Duplicate detection against the accumulated edge set.
        dup = np.zeros(lo.shape[0], dtype=bool)
        for i, (u, v) in enumerate(zip(lo.tolist(), hi.tolist())):
            if u != v:
                if (u, v) in seen:
                    dup[i] = True
                else:
                    seen.add((u, v))
        bad |= dup
        good_src.append(lo[~bad])
        good_dst.append(hi[~bad])
        if not bad.any() or bad.sum() < 2:
            break
        # Re-pair the stubs of the bad records.
        pool = np.concatenate([src[bad], dst[bad]])
        rng.shuffle(pool)
        src = pool[0::2]
        dst = pool[1::2]
    edges = EdgeList(
        num_vertices, np.concatenate(good_src), np.concatenate(good_dst)
    )
    return build_csr(edges, sort_neighbors=sort_neighbors)
