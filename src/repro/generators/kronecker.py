"""Kronecker (R-MAT) graphs with Graph500 parameters.

The paper's ``kron``/``kron-gpu`` datasets come from the GAP suite, which
uses the Graph500 generator: ``2**scale`` vertices, ``edge_factor``
undirected edges per vertex, and quadrant probabilities
``A = 0.57, B = 0.19, C = 0.19`` (``D = 0.05`` implied).

The sampler is fully vectorised: each of the ``scale`` recursion levels
draws one quadrant decision for *all* edges simultaneously, so generation is
``O(scale * m)`` NumPy work with no Python-level per-edge loop.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng, require_nonnegative, require_positive
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph

#: Graph500 / GAP quadrant probabilities.
GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19


def kronecker_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``num_edges`` R-MAT edge endpoints over ``2**scale`` vertices."""
    d = 1.0 - a - b - c
    if d < -1e-12 or min(a, b, c) < 0:
        raise ConfigurationError(
            f"R-MAT probabilities must be non-negative and sum <= 1 "
            f"(a={a}, b={b}, c={c})"
        )
    src = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    dst = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    for _ in range(scale):
        r = rng.random(num_edges)
        # Quadrant thresholds: [0,a) -> (0,0); [a,a+b) -> (0,1);
        # [a+b,a+b+c) -> (1,0); rest -> (1,1).
        right = r >= a  # column bit set in quadrants B and D
        lower = r >= a + b  # row bit set in quadrants C and D
        row_bit = lower
        col_bit = right & ~lower | (r >= a + b + c)
        src = (src << 1) | row_bit.astype(VERTEX_DTYPE)
        dst = (dst << 1) | col_bit.astype(VERTEX_DTYPE)
    return src, dst


def kronecker_graph(
    scale: int,
    *,
    edge_factor: float = 16.0,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    seed: int | np.random.Generator | None = 0,
    permute_labels: bool = True,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Undirected edge draws per vertex (GAP default 16).
    a, b, c:
        Quadrant probabilities (Graph500 defaults).
    permute_labels:
        Randomly permute vertex ids, as Graph500 mandates, so vertex id
        carries no degree information.
    """
    require_nonnegative("scale", scale)
    require_nonnegative("edge_factor", edge_factor)
    rng = make_rng(seed)
    n = 1 << scale
    require_positive("num_vertices", n)
    m = int(round(edge_factor * n))
    src, dst = kronecker_edges(scale, m, a=a, b=b, c=c, rng=rng)
    edges = EdgeList(n, src, dst)
    if permute_labels:
        perm = rng.permutation(n).astype(VERTEX_DTYPE)
        edges = edges.relabeled(perm, n)
    return build_csr(edges, sort_neighbors=sort_neighbors)
