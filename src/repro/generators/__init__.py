"""Synthetic graph generators: proxies for every dataset class in Table III.

Every generator routes randomness through an explicit seed, returns a
:class:`~repro.graph.csr.CSRGraph`, and is deterministic for a given
(parameters, seed) pair.
"""

from repro.generators.uniform import uniform_random_graph
from repro.generators.kronecker import kronecker_graph
from repro.generators.regular import random_regular_graph
from repro.generators.lattice import grid_graph, road_network_graph
from repro.generators.smallworld import watts_strogatz_graph, web_graph
from repro.generators.powerlaw import barabasi_albert_graph, chung_lu_graph
from repro.generators.components import component_fraction_graph
from repro.generators.datasets import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "uniform_random_graph",
    "kronecker_graph",
    "random_regular_graph",
    "grid_graph",
    "road_network_graph",
    "watts_strogatz_graph",
    "web_graph",
    "barabasi_albert_graph",
    "chung_lu_graph",
    "component_fraction_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
