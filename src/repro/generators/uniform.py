"""Uniformly random graphs (the paper's ``urand`` datasets).

The GAP benchmark's ``-u`` generator draws ``edge_factor * n`` undirected
edges with endpoints uniform over ``[0, n)``; duplicates and self loops are
dropped during CSR construction, exactly as the GAP loader does.  The paper
uses ``urand`` (scale 27) on CPUs and ``urand-gpu`` (scale 24) on the GPU;
our proxies default to the same structure at smaller scale.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.generators.rng import make_rng, require_nonnegative, require_positive
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph


def uniform_random_graph(
    num_vertices: int,
    *,
    edge_factor: float = 16.0,
    num_edges: int | None = None,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Erdős–Rényi-style ``G(n, m)`` graph with uniform random endpoints.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.
    edge_factor:
        Undirected edges drawn per vertex (GAP default 16).  Ignored when
        ``num_edges`` is given.
    num_edges:
        Exact number of edge draws (before dedup / self-loop removal).
    seed:
        RNG seed or generator.
    sort_neighbors:
        Forwarded to the CSR builder.
    """
    require_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    if num_edges is None:
        require_nonnegative("edge_factor", edge_factor)
        num_edges = int(round(edge_factor * num_vertices))
    require_nonnegative("num_edges", num_edges)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=VERTEX_DTYPE)
    return build_csr(
        EdgeList(num_vertices, src, dst), sort_neighbors=sort_neighbors
    )
