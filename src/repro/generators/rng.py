"""Seed plumbing shared by all generators."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise a seed argument into a :class:`numpy.random.Generator`.

    Passing an existing generator threads one RNG through composite
    generators; passing an int (or None) creates a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def require_positive(name: str, value: int) -> None:
    """Raise ConfigurationError unless ``value`` >= 1."""
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")


def require_nonnegative(name: str, value: int | float) -> None:
    """Raise ConfigurationError unless ``value`` >= 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


def require_probability(name: str, value: float, *, allow_zero: bool = True) -> None:
    """Raise ConfigurationError unless ``value`` is a probability."""
    lo_ok = value >= 0 if allow_zero else value > 0
    if not (lo_ok and value <= 1):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
