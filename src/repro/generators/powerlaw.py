"""Heavy-tailed-degree generators: preferential attachment and Chung–Lu.

Proxies for the paper's ``twitter`` social network: a giant component,
power-law degrees, low effective diameter.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng, require_positive
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph


def preferential_attachment_edges(
    num_vertices: int,
    edges_per_vertex: int,
    rng: np.random.Generator,
) -> EdgeList:
    """Barabási–Albert edge list: each arriving vertex attaches to
    ``edges_per_vertex`` targets drawn proportionally to current degree.

    Implemented with the classic repeated-endpoint trick: endpoint ids are
    appended to a flat array as edges form, so uniform sampling from the
    array is degree-proportional sampling.  The per-vertex Python loop is
    unavoidable for exact preferential attachment but touches each vertex
    once; at benchmark scales (<= 2**20) this remains comfortably fast.
    """
    require_positive("num_vertices", num_vertices)
    if edges_per_vertex < 1:
        raise ConfigurationError(
            f"edges_per_vertex must be >= 1, got {edges_per_vertex}"
        )
    m = edges_per_vertex
    n = num_vertices
    if n <= m:
        # Too small for attachment; fall back to a clique.
        src, dst = np.triu_indices(n, k=1)
        return EdgeList(
            n, src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE)
        )

    total_edges = (n - m - 1) * m + (m * (m + 1)) // 2
    src = np.empty(total_edges, dtype=VERTEX_DTYPE)
    dst = np.empty(total_edges, dtype=VERTEX_DTYPE)
    # Endpoint pool for degree-proportional draws (2 slots per edge).
    pool = np.empty(2 * total_edges, dtype=VERTEX_DTYPE)
    e = 0  # edges created
    # Seed structure: vertex i in [1, m] connects to all previous vertices.
    for v in range(1, m + 1):
        for u in range(v):
            src[e], dst[e] = v, u
            pool[2 * e], pool[2 * e + 1] = v, u
            e += 1
    for v in range(m + 1, n):
        # Draw m degree-proportional targets (with replacement; duplicate
        # targets collapse during CSR dedup, a standard BA variant).
        picks = rng.integers(0, 2 * e, size=m)
        targets = pool[picks]
        src[e : e + m] = v
        dst[e : e + m] = targets
        pool[2 * e : 2 * (e + m) : 2] = v
        pool[2 * e + 1 : 2 * (e + m) : 2] = targets
        e += m
    return EdgeList(n, src[:e], dst[:e])


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int = 8,
    *,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph (connected, power-law)."""
    rng = make_rng(seed)
    return build_csr(
        preferential_attachment_edges(num_vertices, edges_per_vertex, rng),
        sort_neighbors=sort_neighbors,
    )


def chung_lu_graph(
    num_vertices: int,
    *,
    exponent: float = 2.2,
    mean_degree: float = 16.0,
    max_degree: int | None = None,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Chung–Lu random graph with power-law expected degrees.

    Draws an expected-degree sequence ``w_v ~ Pareto(exponent)`` rescaled to
    ``mean_degree``, then samples ``m = n * mean_degree / 2`` edges with both
    endpoints degree-proportional — the standard fast Chung–Lu sampler.

    Unlike preferential attachment, Chung–Lu graphs contain many small
    components alongside the giant one, matching the component structure of
    crawled social networks (Table III's ``twitter`` has 9.6M components).
    """
    require_positive("num_vertices", num_vertices)
    if exponent <= 1.0:
        raise ConfigurationError(f"exponent must be > 1, got {exponent}")
    if mean_degree <= 0:
        raise ConfigurationError(f"mean_degree must be > 0, got {mean_degree}")
    rng = make_rng(seed)
    n = num_vertices
    # Power-law weights via inverse-CDF of a Pareto with shape exponent-1.
    u = rng.random(n)
    weights = (1.0 - u) ** (-1.0 / (exponent - 1.0))
    if max_degree is None:
        max_degree = int(np.sqrt(n * mean_degree)) + 1
    weights = np.minimum(weights, max_degree)
    weights *= mean_degree / weights.mean()
    prob = weights / weights.sum()

    m = int(round(n * mean_degree / 2.0))
    src = rng.choice(n, size=m, p=prob).astype(VERTEX_DTYPE)
    dst = rng.choice(n, size=m, p=prob).astype(VERTEX_DTYPE)
    return build_csr(EdgeList(n, src, dst), sort_neighbors=sort_neighbors)
