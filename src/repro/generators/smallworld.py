"""Locally connected graphs: Watts–Strogatz rings and a web-graph proxy.

The paper's ``web`` dataset (sk-2005) is a crawl graph: strongly locally
connected (consecutive crawl ids link to nearby pages) with a heavy-tailed
degree distribution from hub pages.  :func:`web_graph` reproduces both
features by superimposing

1. a Watts–Strogatz ring lattice (locality + high clustering), and
2. a preferential-attachment hub layer (heavy tail),

which together reproduce the slow neighbour-sampling convergence the paper
observes on ``web`` (Fig. 6) far better than either ingredient alone.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.errors import ConfigurationError
from repro.generators.rng import make_rng, require_positive, require_probability
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph
from repro.generators.powerlaw import preferential_attachment_edges


def watts_strogatz_edges(
    num_vertices: int,
    k: int,
    rewire: float,
    rng: np.random.Generator,
) -> EdgeList:
    """Watts–Strogatz edges: ring lattice with ``k`` nearest neighbours per
    vertex (k even), each edge rewired to a random endpoint with probability
    ``rewire``."""
    require_positive("num_vertices", num_vertices)
    if k < 0 or k % 2 != 0:
        raise ConfigurationError(f"k must be even and >= 0, got {k}")
    if k >= num_vertices:
        raise ConfigurationError(
            f"k ({k}) must be < num_vertices ({num_vertices})"
        )
    require_probability("rewire", rewire)
    n = num_vertices
    ids = np.arange(n, dtype=VERTEX_DTYPE)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for offset in range(1, k // 2 + 1):
        src_parts.append(ids)
        dst_parts.append((ids + offset) % n)
    src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=VERTEX_DTYPE)
    if rewire > 0 and src.size:
        flip = rng.random(src.shape[0]) < rewire
        dst = dst.copy()
        dst[flip] = rng.integers(0, n, size=int(flip.sum()), dtype=VERTEX_DTYPE)
    return EdgeList(n, src, dst)


def watts_strogatz_graph(
    num_vertices: int,
    k: int = 4,
    rewire: float = 0.05,
    *,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Watts–Strogatz small-world graph."""
    rng = make_rng(seed)
    return build_csr(
        watts_strogatz_edges(num_vertices, k, rewire, rng),
        sort_neighbors=sort_neighbors,
    )


def web_graph(
    num_vertices: int,
    *,
    local_k: int = 8,
    rewire: float = 0.01,
    hub_edges_per_vertex: int = 4,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Web-crawl proxy: ring locality plus preferential-attachment hubs.

    Parameters
    ----------
    num_vertices:
        Number of pages.
    local_k:
        Ring-lattice neighbours per page (crawl locality); must be even.
    rewire:
        Rewiring probability of the local layer.
    hub_edges_per_vertex:
        Preferential-attachment edges per page (hub layer).
    """
    rng = make_rng(seed)
    local = watts_strogatz_edges(num_vertices, local_k, rewire, rng)
    if hub_edges_per_vertex > 0 and num_vertices > 1:
        hubs = preferential_attachment_edges(
            num_vertices, hub_edges_per_vertex, rng
        )
        local = local.concatenated(hubs)
    return build_csr(local, sort_neighbors=sort_neighbors)
