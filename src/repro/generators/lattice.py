"""Lattice-based road-network proxies.

The paper's ``road`` (USA road network) and ``osm-eur`` (OpenStreetMap
Europe) datasets are planar, low-degree (mean ~2.2–2.4), huge-diameter
graphs.  A 2-D grid captures all three properties; two perturbations tune it
toward realism:

- ``drop`` removes a fraction of grid edges (dead ends, irregular blocks —
  raises the diameter further and can split off small components, matching
  OSM extracts);
- ``highway`` adds a sparse set of longer-range shortcut edges (motorways),
  lowering the diameter slightly.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.generators.rng import (
    make_rng,
    require_nonnegative,
    require_positive,
    require_probability,
)
from repro.graph.builder import build_csr
from repro.graph.coo import EdgeList
from repro.graph.csr import CSRGraph


def grid_edges(rows: int, cols: int, *, periodic: bool = False) -> EdgeList:
    """Edge list of the ``rows x cols`` 4-neighbour grid.

    Vertex ``(r, c)`` has id ``r * cols + c``.  ``periodic`` wraps both
    dimensions (torus).
    """
    require_positive("rows", rows)
    require_positive("cols", cols)
    n = rows * cols
    ids = np.arange(n, dtype=VERTEX_DTYPE).reshape(rows, cols)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    # Horizontal edges.
    src_parts.append(ids[:, :-1].ravel())
    dst_parts.append(ids[:, 1:].ravel())
    # Vertical edges.
    src_parts.append(ids[:-1, :].ravel())
    dst_parts.append(ids[1:, :].ravel())
    if periodic:
        if cols > 2:
            src_parts.append(ids[:, -1].ravel())
            dst_parts.append(ids[:, 0].ravel())
        if rows > 2:
            src_parts.append(ids[-1, :].ravel())
            dst_parts.append(ids[0, :].ravel())
    return EdgeList(
        n, np.concatenate(src_parts), np.concatenate(dst_parts)
    )


def grid_graph(
    rows: int,
    cols: int,
    *,
    periodic: bool = False,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """The plain ``rows x cols`` grid graph."""
    return build_csr(grid_edges(rows, cols, periodic=periodic), sort_neighbors=sort_neighbors)


def road_network_graph(
    rows: int,
    cols: int,
    *,
    drop: float = 0.05,
    highway: float = 0.001,
    seed: int | np.random.Generator | None = 0,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Road-network proxy: perturbed grid.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; ``n = rows * cols``.
    drop:
        Fraction of grid edges removed uniformly at random.
    highway:
        Number of random long-range shortcut edges, as a fraction of ``n``.
    """
    require_probability("drop", drop)
    require_nonnegative("highway", highway)
    rng = make_rng(seed)
    base = grid_edges(rows, cols)
    n = base.num_vertices

    keep = rng.random(base.num_edges) >= drop
    src = base.src[keep]
    dst = base.dst[keep]

    extra = int(round(highway * n))
    if extra:
        hw_src = rng.integers(0, n, size=extra, dtype=VERTEX_DTYPE)
        hw_dst = rng.integers(0, n, size=extra, dtype=VERTEX_DTYPE)
        src = np.concatenate([src, hw_src])
        dst = np.concatenate([dst, hw_dst])
    return build_csr(EdgeList(n, src, dst), sort_neighbors=sort_neighbors)
