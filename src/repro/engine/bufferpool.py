"""Reusable scratch buffers for the hot-path kernels.

The vectorized finish loops (``propagate_pass`` / ``shortcut_step`` /
``hook_pass`` and the fused FastSV round) gather edge-sized candidate
arrays and vertex-sized jump scratch every round; on a profile those
allocations dominate the non-compute time of small- and medium-graph
runs.  A :class:`BufferPool` keeps one named buffer per kernel slot and
hands out prefix views, so a converged run allocates each buffer exactly
once and every later round reuses it.

The pool reports every *fresh* allocation (in bytes) through an
``on_alloc`` callback — the backends wire it to the ``bytes_allocated``
counter, so a profiled run shows exactly how much scratch the round
structure demanded (a warm pool reports zero).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """Named, growable scratch arrays handed out as prefix views.

    ``get(name, size, dtype)`` returns a contiguous array of exactly
    ``size`` elements, reusing the buffer registered under ``name`` when
    its capacity and dtype still fit, and reallocating (and reporting the
    fresh bytes) otherwise.  Contents are unspecified: callers must
    overwrite the view before reading it (all pool users fill it with
    ``np.take(..., out=...)`` / ufunc ``out=`` writes).
    """

    __slots__ = ("_buffers", "_on_alloc")

    def __init__(
        self, on_alloc: Callable[[int], None] | None = None
    ) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._on_alloc = on_alloc

    def get(self, name: str, size: int, dtype) -> np.ndarray:
        """A ``size``-element scratch view under ``name`` (uninitialised)."""
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape[0] < size or buf.dtype != dtype:
            buf = np.empty(max(int(size), 1), dtype=dtype)
            self._buffers[name] = buf
            if self._on_alloc is not None:
                self._on_alloc(buf.nbytes)
        return buf[:size]

    def take(self, arr: np.ndarray, idx: np.ndarray, name: str) -> np.ndarray:
        """Pooled gather: ``arr[idx]`` materialised into buffer ``name``."""
        out = self.get(name, int(idx.shape[0]), arr.dtype)
        np.take(arr, idx, out=out)
        return out

    def clear(self) -> None:
        """Drop every buffer (subsequent gets allocate fresh)."""
        self._buffers.clear()
