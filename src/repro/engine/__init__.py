"""The unified connectivity engine: one dispatch path for every algorithm.

The engine ties four pieces together:

- the **algorithm registry** (:mod:`~repro.engine.registry`) — every CC
  algorithm is registered once with metadata (description, default
  parameters, supported backends) and resolved by name here, by
  ``repro.connected_components``, by the CLI, and by the benchmark
  harness;
- the unified **result record** (:class:`~repro.engine.result.CCResult`)
  that every algorithm returns;
- pluggable **execution backends**
  (:class:`~repro.engine.backends.VectorizedBackend` for NumPy batch
  kernels, :class:`~repro.engine.backends.SimulatedBackend` for the
  simulated parallel machine,
  :class:`~repro.engine.backends.ProcessParallelBackend` for real OS
  processes over shared-memory π) against which the Afforest,
  Shiloach–Vishkin, label-propagation, and BFS/DOBFS pipelines are
  written exactly once;
- uniform **instrumentation**
  (:class:`~repro.engine.instrumentation.Instrumentation`) so any
  profiled run yields a per-phase wall-time breakdown.

Usage::

    from repro import engine

    result = engine.run("afforest", g, neighbor_rounds=2)
    result = engine.run("sv", g, backend=engine.SimulatedBackend(machine))
    result = engine.run("afforest", g, backend="process")   # 4-core run
    engine.available_algorithms()   # ['afforest', 'afforest-noskip', ...]

Adding an algorithm::

    from repro.engine import CCResult, register

    @register("mycc", description="my algorithm")
    def _run_mycc(graph, backend, **params):
        return CCResult(labels=my_labels(graph, **params))
"""

from __future__ import annotations

import time
from typing import Callable

from repro.constants import VERTEX_DTYPE
from repro.engine.backends import (
    DistributedBackend,
    ExecutionBackend,
    ProcessParallelBackend,
    SimulatedBackend,
    VectorizedBackend,
    backend_kinds,
    make_backend,
    resolve_label_dtype,
)
from repro.engine.instrumentation import Instrumentation
from repro.engine.partition import EdgeBlock, partition_csr_blocks
from repro.engine.pipelines import (
    afforest_pipeline,
    bfs_pipeline,
    dobfs_pipeline,
    lp_datadriven_pipeline,
    lp_pipeline,
    sv_pipeline,
    sv_pipeline_edges,
)
from repro.engine.plan import (
    CANONICAL_PLANS,
    Plan,
    PlanRegistry,
    available_plans,
    describe_plans,
    get_plan,
    run_plan,
)
from repro.engine.registry import (
    AlgorithmSpec,
    available_algorithms,
    describe_algorithms,
    get_algorithm,
    register,
    support_matrix_markdown,
    supported_backends,
)
from repro.engine.result import CCResult
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.obs import Trace, Tracer
from repro.obs.heartbeat import HeartbeatEvent, HeartbeatMonitor
from repro.obs.ledger import RunLedger, record_from_result, resolve_ledger

__all__ = [
    "run",
    "register",
    "get_algorithm",
    "available_algorithms",
    "describe_algorithms",
    "supported_backends",
    "Plan",
    "PlanRegistry",
    "CANONICAL_PLANS",
    "available_plans",
    "describe_plans",
    "get_plan",
    "run_plan",
    "AlgorithmSpec",
    "CCResult",
    "Instrumentation",
    "Trace",
    "Tracer",
    "ExecutionBackend",
    "VectorizedBackend",
    "SimulatedBackend",
    "ProcessParallelBackend",
    "DistributedBackend",
    "backend_kinds",
    "make_backend",
    "resolve_label_dtype",
    "EdgeBlock",
    "partition_csr_blocks",
    "support_matrix_markdown",
    "afforest_pipeline",
    "bfs_pipeline",
    "dobfs_pipeline",
    "lp_datadriven_pipeline",
    "lp_pipeline",
    "sv_pipeline",
    "sv_pipeline_edges",
]


def run(
    name: str | CSRGraph | None = None,
    graph: CSRGraph | None = None,
    *,
    plan: str | Plan | None = None,
    backend: ExecutionBackend | str | None = None,
    workers: int | None = None,
    ranks: int | None = None,
    profile: bool = False,
    trace: Tracer | bool | None = None,
    record: bool | str | RunLedger | None = None,
    heartbeat: HeartbeatMonitor
    | Callable[[HeartbeatEvent], object]
    | list[HeartbeatEvent]
    | None = None,
    **params,
) -> CCResult:
    """Run registered algorithm ``name`` on ``graph`` and return its result.

    ``name`` accepts registered algorithms and composed plan names
    (``"kout+sv"``); ``plan=`` is explicit sugar for the latter —
    ``engine.run(g, plan="kout+sv")`` and
    ``engine.run(plan=engine.get_plan("kout+sv"), graph=g)`` both
    dispatch the composition through the same path.

    ``backend`` selects the execution substrate: an
    :class:`~repro.engine.backends.ExecutionBackend` instance, a kind
    string (``"vectorized"`` / ``"simulated"`` / ``"process"`` /
    ``"distributed"``, built via
    :func:`~repro.engine.backends.make_backend` with ``workers`` /
    ``ranks`` and torn down after the run), or ``None`` for a fresh
    :class:`~repro.engine.backends.VectorizedBackend`.  The algorithm must
    list the backend's kind in its registry metadata.

    ``profile=True`` (or ``trace=True``, or passing a pre-built
    :class:`~repro.obs.Tracer`) turns on the telemetry layer: every
    pipeline phase is recorded as an attributed span (plus per-worker
    spans on the process backend), and the finished
    :class:`~repro.obs.Trace` lands in ``result.trace``.
    ``result.phase_seconds`` is derived from that trace and always
    includes a whole-run ``total`` phase so per-phase overhead (worker
    dispatch, shared-memory setup) is visible; algorithms without native
    phase instrumentation report only ``total``.  With telemetry off,
    ``result.trace`` stays ``None`` and ``phase_seconds`` stays empty.

    ``record`` appends a durable :class:`~repro.obs.ledger.RunRecord` to
    the run ledger: ``True`` for the default ledger, a path or a ready
    :class:`~repro.obs.ledger.RunLedger` for an explicit one, ``False``
    to force recording off.  The default (``None``) records only when
    the ``REPRO_LEDGER`` environment variable names a ledger file.  The
    appended record's id lands on ``result.run_id``.

    ``heartbeat`` attaches live telemetry: pass a
    :class:`~repro.obs.heartbeat.HeartbeatMonitor`, a callable sink, or
    a list to append events to, and iterative pipelines emit one
    progress event per round (with the process backend adding per-block
    events as workers finish).  Remaining keyword arguments override the
    algorithm's registered defaults and are forwarded to its pipeline.
    """
    if plan is not None:
        plan_name = plan.name if isinstance(plan, Plan) else str(plan)
        if graph is None and isinstance(name, CSRGraph):
            name, graph = plan_name, name
        elif name is None:
            name = plan_name
        else:
            raise ConfigurationError(
                "pass either an algorithm name or plan=, not both"
            )
    if not isinstance(name, str) or graph is None:
        raise ConfigurationError(
            "run() needs an algorithm/plan name and a graph"
        )
    spec = get_algorithm(name)
    owned = False
    if backend is None:
        backend = VectorizedBackend()
    elif isinstance(backend, str):
        backend = make_backend(backend, workers=workers, ranks=ranks)
        owned = True
    if not spec.supports_backend(backend.kind):
        raise ConfigurationError(
            f"algorithm {name!r} does not support the {backend.kind!r} "
            f"backend; supported: {list(spec.backends)}"
        )
    merged = {**spec.defaults, **params}
    tracer = trace if isinstance(trace, Tracer) else Tracer(
        bool(profile) or bool(trace)
    )
    ledger = resolve_ledger(record)
    monitor: HeartbeatMonitor | None
    if heartbeat is None or isinstance(heartbeat, HeartbeatMonitor):
        monitor = heartbeat
    else:
        monitor = HeartbeatMonitor(heartbeat)
    instr = Instrumentation(tracer=tracer, heartbeat=monitor)
    backend.bind(instr)
    t_start = time.perf_counter()
    try:
        try:
            if tracer.enabled:
                with tracer.span("total"):
                    result = spec.fn(graph, backend, **merged)
            else:
                result = spec.fn(graph, backend, **merged)
        finally:
            # Leave shared/reused backends with a clean disabled recorder.
            backend.bind(Instrumentation(False))
        # Shared-memory labels must outlive the backend's segments.
        result.labels = backend.detach_labels(result.labels)
        if result.labels.dtype != VERTEX_DTYPE:
            # Backends may run on narrowed labels (label_dtype policy);
            # results always leave the engine at the canonical width, so
            # the visible labeling is bit-identical either way.
            result.labels = result.labels.astype(VERTEX_DTYPE)
    finally:
        if owned:
            backend.close()
    elapsed = time.perf_counter() - t_start
    result.algorithm = name
    result.backend = backend.kind
    result.params = dict(merged)
    if tracer.enabled:
        trace_obj = tracer.finish(
            algorithm=name,
            backend=backend.kind,
            workers=getattr(backend, "workers", None),
            ranks=getattr(backend, "ranks", None),
        )
        result.trace = trace_obj
        result.phase_seconds = trace_obj.phase_seconds()
        if trace_obj.counters:
            result.counters.update(trace_obj.counters)
    if ledger is not None:
        ledger_record = record_from_result(
            result,
            graph=graph,
            seconds=elapsed,
            meta={
                "workers": getattr(backend, "workers", None),
                "ranks": getattr(backend, "ranks", None),
            },
        )
        ledger.append(ledger_record)
        # Not a CCResult field: run identity only exists when recorded.
        result.run_id = ledger_record.run_id  # type: ignore[attr-defined]
    return result
