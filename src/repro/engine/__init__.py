"""The unified connectivity engine: one dispatch path for every algorithm.

The engine ties four pieces together:

- the **algorithm registry** (:mod:`~repro.engine.registry`) — every CC
  algorithm is registered once with metadata (description, default
  parameters, supported backends) and resolved by name here, by
  ``repro.connected_components``, by the CLI, and by the benchmark
  harness;
- the unified **result record** (:class:`~repro.engine.result.CCResult`)
  that every algorithm returns;
- pluggable **execution backends**
  (:class:`~repro.engine.backends.VectorizedBackend` for NumPy batch
  kernels, :class:`~repro.engine.backends.SimulatedBackend` for the
  simulated parallel machine) against which the Afforest and
  Shiloach–Vishkin pipelines are written exactly once;
- uniform **instrumentation**
  (:class:`~repro.engine.instrumentation.Instrumentation`) so any
  profiled run yields a per-phase wall-time breakdown.

Usage::

    from repro import engine

    result = engine.run("afforest", g, neighbor_rounds=2)
    result = engine.run("sv", g, backend=engine.SimulatedBackend(machine))
    engine.available_algorithms()   # ['afforest', 'afforest-noskip', ...]

Adding an algorithm::

    from repro.engine import CCResult, register

    @register("mycc", description="my algorithm")
    def _run_mycc(graph, backend, **params):
        return CCResult(labels=my_labels(graph, **params))
"""

from __future__ import annotations

from repro.engine.backends import (
    ExecutionBackend,
    SimulatedBackend,
    VectorizedBackend,
)
from repro.engine.instrumentation import Instrumentation
from repro.engine.pipelines import afforest_pipeline, sv_pipeline, sv_pipeline_edges
from repro.engine.registry import (
    AlgorithmSpec,
    available_algorithms,
    describe_algorithms,
    get_algorithm,
    register,
)
from repro.engine.result import CCResult
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

__all__ = [
    "run",
    "register",
    "get_algorithm",
    "available_algorithms",
    "describe_algorithms",
    "AlgorithmSpec",
    "CCResult",
    "Instrumentation",
    "ExecutionBackend",
    "VectorizedBackend",
    "SimulatedBackend",
    "afforest_pipeline",
    "sv_pipeline",
    "sv_pipeline_edges",
]


def run(
    name: str,
    graph: CSRGraph,
    *,
    backend: ExecutionBackend | None = None,
    profile: bool = False,
    **params,
) -> CCResult:
    """Run registered algorithm ``name`` on ``graph`` and return its result.

    ``backend`` selects the execution substrate (default: a fresh
    :class:`~repro.engine.backends.VectorizedBackend`); the algorithm must
    list the backend's kind in its registry metadata.  ``profile=True``
    records per-phase wall seconds into ``result.phase_seconds`` —
    algorithms without native phase instrumentation report a single
    ``total`` phase.  Remaining keyword arguments override the
    algorithm's registered defaults and are forwarded to its pipeline.
    """
    spec = get_algorithm(name)
    if backend is None:
        backend = VectorizedBackend()
    if not spec.supports_backend(backend.kind):
        raise ConfigurationError(
            f"algorithm {name!r} does not support the {backend.kind!r} "
            f"backend; supported: {list(spec.backends)}"
        )
    merged = {**spec.defaults, **params}
    instr = Instrumentation(enabled=profile)
    backend.bind(instr)
    try:
        if profile and not spec.instrumented:
            with instr.timer("total"):
                result = spec.fn(graph, backend, **merged)
        else:
            result = spec.fn(graph, backend, **merged)
    finally:
        # Leave shared/reused backends with a clean disabled recorder.
        backend.bind(Instrumentation(False))
    result.algorithm = name
    result.backend = backend.kind
    result.params = dict(merged)
    if profile:
        result.phase_seconds = instr.seconds
        if instr.counters:
            result.counters.update(instr.counters)
    return result
