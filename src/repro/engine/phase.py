"""Shared vocabulary of the composable pipeline phases.

A connectivity *plan* (:mod:`repro.engine.plan`) is a sampling phase
followed by a finish phase, with the probabilistic giant-component
identification (paper Sec. IV-E) as optional glue in between.  Both phase
families are expressed against the same
:class:`~repro.engine.backends.ExecutionBackend` primitives the monolithic
pipelines used, so every composition runs unchanged on the vectorized,
simulated, and process substrates.

This module defines what a phase *is*:

- :class:`PlanContext` — the mutable state a plan run threads through its
  phases: the graph, the backend, the parent/label array ``π``, the
  result record being populated, the run's RNG, and the two pieces of
  glue state (``largest``, the skipped component's label, and
  ``final_start``, the first unconsumed edge slot per vertex);
- :class:`SamplingSpec` / :class:`FinishSpec` — metadata records binding
  a phase name to its implementation, its accepted parameters (used to
  route plan-level keyword arguments), and its composition constraints.

Phase implementations live in :mod:`repro.engine.sampling` and
:mod:`repro.engine.finish`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

__all__ = ["PlanContext", "SamplingSpec", "FinishSpec"]


@dataclass
class PlanContext:
    """Mutable state threaded through one plan execution.

    ``pi`` is the live parent/label array owned by the backend; phases
    mutate it in place through backend primitives only.  ``final_start``
    is set by sampling phases that consume trackable edge slots (first-k
    neighbour rounds) so the settle finish can resume after them;
    ``largest`` is set by the skip glue when the plan identifies a giant
    component to avoid.
    """

    graph: CSRGraph
    backend: ExecutionBackend
    pi: np.ndarray
    result: CCResult
    rng: np.random.Generator
    #: giant-component label identified by the skip glue (None = no skip).
    largest: int | None = None
    #: first edge slot per vertex the finish phase still has to process.
    final_start: int = 0


@dataclass(frozen=True)
class SamplingSpec:
    """One registered sampling phase.

    ``fn(ctx, **params)`` mutates ``ctx.pi`` (and the counters on
    ``ctx.result``) through backend primitives; ``params`` names the
    keyword arguments the phase accepts, used by the plan executor to
    route plan-level parameters.  ``validate`` (optional) checks the
    phase's parameters before any work — including on empty graphs, which
    short-circuit before ``fn`` runs.
    """

    name: str
    fn: Callable
    description: str
    params: tuple[str, ...] = ()
    validate: Callable | None = field(default=None, compare=False)


@dataclass(frozen=True)
class FinishSpec:
    """One registered finish phase.

    ``supports_skip`` marks finishes that can honour ``ctx.largest`` by
    skipping giant-component edges (edge-list algorithms: the union-find
    settle and Shiloach–Vishkin); graph-sweep finishes ignore the glue,
    so the executor never pays for ``find_largest`` on their behalf.
    ``whole_graph`` marks self-contained traversal pipelines (BFS/DOBFS)
    that own their initialisation (sentinel fill) and therefore only
    compose with the ``none`` sampling phase; their ``fn`` has the
    classic pipeline signature ``fn(graph, backend, **params)``.
    """

    name: str
    fn: Callable
    description: str
    params: tuple[str, ...] = ()
    supports_skip: bool = False
    whole_graph: bool = False
    validate: Callable | None = field(default=None, compare=False)
