"""The unified connectivity result record.

Every algorithm dispatched through :mod:`repro.engine` returns a
:class:`CCResult`: the exact component labeling plus the union of all
instrumentation the individual algorithms collect — edge counters,
per-phase wall times, iteration statistics, and provenance (which
algorithm ran, with which parameters, on which backend).

Historically each algorithm had its own result dataclass
(``AfforestResult``, ``SVResult``, ``LPResult``, ``BFSCCResult``,
``DOBFSResult``); those names survive as thin aliases of
:class:`CCResult`, so existing code keeps working while new code can
treat every run uniformly.  Fields an algorithm does not populate keep
their zero defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import Trace
from repro.parallel.metrics import RunStats

__all__ = ["CCResult"]


@dataclass
class CCResult:
    """Outcome of a connected-components run, any algorithm, any backend.

    ``labels`` is the exact component labeling (root ids).  The remaining
    fields are instrumentation; which ones are populated depends on the
    algorithm:

    - **provenance** (all engine runs): ``algorithm``, ``backend``,
      ``params``;
    - **Afforest counters**: ``neighbor_rounds``, ``largest_label``,
      ``edges_sampled`` (processed in neighbour rounds), ``edges_final``
      (processed in the final phase), ``edges_skipped`` (avoided by
      component skipping), ``link_rounds``, ``compress_passes``;
    - **iterative counters** (SV, label propagation): ``iterations``,
      ``edges_processed``, ``max_tree_depth``, ``depth_per_iteration``;
    - **traversal counters** (BFS-CC, DOBFS-CC): ``bfs_steps``,
      ``top_down_steps``, ``bottom_up_steps``, ``edges_gathered``,
      ``step_edges``;
    - **uniform instrumentation**: ``trace`` (the structured span tree
      recorded when telemetry is on), ``phase_seconds`` (phase label ->
      wall seconds, derived from the trace when ``profile=True``),
      ``counters`` (miscellaneous named counters), ``run_stats``
      (work/span statistics when executed on a simulated machine).
    """

    labels: np.ndarray
    #: registry name of the algorithm that produced this result.
    algorithm: str = ""
    #: composed plan name ("<sampling>+<finish>") when the run went
    #: through the plan layer — for ``auto``, the plan it selected.
    plan: str = ""
    #: ``kind`` of the execution backend ("vectorized" / "simulated").
    backend: str = ""
    #: resolved parameters the run used (registry defaults + overrides).
    params: dict = field(default_factory=dict)

    # -- Afforest counters ------------------------------------------------ #
    neighbor_rounds: int = 0
    largest_label: int | None = None
    edges_sampled: int = 0
    edges_final: int = 0
    edges_skipped: int = 0
    link_rounds: list[int] = field(default_factory=list)
    compress_passes: list[int] = field(default_factory=list)

    # -- iterative counters (SV / label propagation) ---------------------- #
    iterations: int = 0
    edges_processed: int = 0  # directed edge examinations summed over iterations
    max_tree_depth: int = 0  # deepest tree observed before any shortcut
    depth_per_iteration: list[int] = field(default_factory=list)

    # -- traversal counters (BFS-CC / DOBFS-CC) --------------------------- #
    bfs_steps: int = 0  # total frontier expansions (serial rounds)
    top_down_steps: int = 0
    bottom_up_steps: int = 0
    edges_gathered: int = 0  # actual vectorized gather volume (DOBFS)
    #: edges examined per frontier expansion, in execution order.
    step_edges: list[int] | None = None

    # -- uniform instrumentation ------------------------------------------ #
    #: miscellaneous named counters (algorithm-specific extras).
    counters: dict[str, int] = field(default_factory=dict)
    #: phase label -> wall seconds, derived from ``trace`` when profiling.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: structured span tree of the run (None with telemetry disabled).
    trace: Trace | None = None
    run_stats: RunStats | None = None

    @property
    def num_components(self) -> int:
        """Number of distinct components in the labeling."""
        labels = self.labels
        n = labels.shape[0]
        if n == 0:
            return 0
        # Representative labelings (label[v] is a component root, so
        # label[label] == label) admit a sort-free count: the distinct
        # labels are exactly the fixed points.  Every finish in this
        # repo produces such a labeling, so the np.unique fallback only
        # runs for exotic hand-built results.
        if int(labels.min()) >= 0 and int(labels.max()) < n:
            if np.array_equal(labels[labels], labels):
                idx = np.arange(n, dtype=labels.dtype)
                return int(np.count_nonzero(labels == idx))
        return int(np.unique(labels).shape[0])

    @property
    def edges_touched(self) -> int:
        """Directed edge slots examined by link phases."""
        return self.edges_sampled + self.edges_final

    @property
    def skip_fraction(self) -> float:
        """Fraction of final-phase edge slots avoided by skipping."""
        denom = self.edges_final + self.edges_skipped
        return self.edges_skipped / denom if denom else 0.0
