"""Plans: composed sampling × finish connectivity pipelines.

A :class:`Plan` pairs one sampling phase (:mod:`repro.engine.sampling`)
with one finish phase (:mod:`repro.engine.finish`); the
:class:`PlanRegistry` enumerates every valid pair, and :func:`run_plan`
executes one — the ConnectIt-style compositional space generalising the
paper's single sampling+finish point.  A plan run is:

1. ``init_labels`` (phase ``I``): π self-pointing;
2. the sampling phase links a cheap subset of edges into π;
3. *skip glue* (phase ``F``): when skipping is on and the finish can
   honour it, the giant intermediate component's label is identified by
   sampling π (:func:`repro.core.sampling.most_frequent_element` through
   ``backend.find_largest``);
4. the finish phase drives π to the exact component labeling, skipping
   the identified component's edges where supported.

Plan names are ``"<sampling>+<finish>"`` (``kout+settle``, ``ldd+sv``,
``none+lp``); the six classical registry algorithms are canonical plans
(:data:`CANONICAL_PLANS`) whose composed execution is bit-identical to
the pre-refactor monoliths.  Whole-graph finishes (BFS/DOBFS) own their
initialisation and only compose with ``none``.

Every phase speaks the :class:`~repro.engine.backends.ExecutionBackend`
primitive vocabulary, so every plan runs on all three substrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
    VERTEX_DTYPE,
)
from repro.engine.backends import ExecutionBackend
from repro.engine.finish import FINISHES
from repro.engine.phase import FinishSpec, PlanContext, SamplingSpec
from repro.engine.result import CCResult
from repro.engine.sampling import SAMPLINGS
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph

__all__ = [
    "Plan",
    "PlanRegistry",
    "CANONICAL_PLANS",
    "PLAN_BACKENDS",
    "available_plans",
    "describe_plans",
    "get_plan",
    "run_plan",
    "plan_algorithm_spec",
]

#: substrates every plan runs on (each phase speaks backend primitives).
PLAN_BACKENDS = ("vectorized", "simulated", "process", "distributed")

#: plan-level parameters routed to the executor rather than a phase.
PLAN_PARAMS = ("seed", "skip_largest", "sample_size")

#: legacy registry name -> composed plan name (identical semantics; the
#: ``afforest-noskip`` alias differs only in its registered defaults).
CANONICAL_PLANS = {
    "afforest": "kout+settle",
    "afforest-noskip": "kout+settle",
    "sv": "none+sv",
    "fastsv": "none+fastsv",
    "lp": "none+lp",
    "lp-datadriven": "none+lp-datadriven",
    "bfs": "none+bfs",
    "dobfs": "none+dobfs",
}


@dataclass(frozen=True)
class Plan:
    """One composed pipeline: a sampling phase and a finish phase."""

    sampling: SamplingSpec
    finish: FinishSpec

    @property
    def name(self) -> str:
        return f"{self.sampling.name}+{self.finish.name}"

    @property
    def description(self) -> str:
        return (
            f"{self.sampling.name} sampling + {self.finish.name} finish "
            f"({self.finish.description})"
        )

    def accepted_params(self) -> tuple[str, ...]:
        """Every keyword argument this plan routes somewhere."""
        keys = list(self.sampling.params) + list(self.finish.params)
        if not self.finish.whole_graph:
            keys += list(PLAN_PARAMS)
        return tuple(dict.fromkeys(keys))


class PlanRegistry:
    """Enumerates and resolves every valid sampling × finish pair.

    Whole-graph finishes only pair with the ``none`` sampling phase;
    every other finish pairs with every sampling phase.
    """

    def __init__(
        self,
        samplings: dict[str, SamplingSpec] | None = None,
        finishes: dict[str, FinishSpec] | None = None,
    ) -> None:
        self._samplings = dict(samplings if samplings is not None else SAMPLINGS)
        self._finishes = dict(finishes if finishes is not None else FINISHES)

    @property
    def samplings(self) -> dict[str, SamplingSpec]:
        return dict(self._samplings)

    @property
    def finishes(self) -> dict[str, FinishSpec]:
        return dict(self._finishes)

    def compose(self, sampling: str, finish: str) -> Plan:
        """The plan pairing ``sampling`` with ``finish`` (validated)."""
        s_spec = self._samplings.get(sampling)
        if s_spec is None:
            raise ConfigurationError(
                f"unknown sampling phase {sampling!r}; "
                f"available: {sorted(self._samplings)}"
            )
        f_spec = self._finishes.get(finish)
        if f_spec is None:
            raise ConfigurationError(
                f"unknown finish phase {finish!r}; "
                f"available: {sorted(self._finishes)}"
            )
        if f_spec.whole_graph and s_spec.name != "none":
            raise ConfigurationError(
                f"finish {finish!r} is a whole-graph pipeline and only "
                f"composes with the 'none' sampling phase, not {sampling!r}"
            )
        return Plan(sampling=s_spec, finish=f_spec)

    def get(self, name: str) -> Plan:
        """Resolve ``"<sampling>+<finish>"`` (or a canonical alias)."""
        alias = CANONICAL_PLANS.get(name)
        if alias is not None:
            name = alias
        parts = name.split("+")
        if len(parts) != 2:
            raise ConfigurationError(
                f"invalid plan name {name!r}; expected "
                "'<sampling>+<finish>', e.g. 'kout+sv'"
            )
        return self.compose(parts[0], parts[1])

    def plans(self) -> list[Plan]:
        """Every valid composition, sorted by name."""
        out = []
        for s_name, s_spec in self._samplings.items():
            for f_name, f_spec in self._finishes.items():
                if f_spec.whole_graph and s_name != "none":
                    continue
                out.append(Plan(sampling=s_spec, finish=f_spec))
        return sorted(out, key=lambda p: p.name)

    def names(self) -> list[str]:
        """Sorted names of every valid composition."""
        return [p.name for p in self.plans()]


#: the process-wide default registry (all built-in phases).
_DEFAULT_REGISTRY = PlanRegistry()


def get_plan(name: str) -> Plan:
    """Resolve a plan name against the default registry."""
    return _DEFAULT_REGISTRY.get(name)


def available_plans() -> list[str]:
    """Sorted names of every valid composed plan."""
    return _DEFAULT_REGISTRY.names()


def describe_plans() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for every valid composed plan."""
    return [(p.name, p.description) for p in _DEFAULT_REGISTRY.plans()]


def _split_params(plan: Plan, params: dict) -> tuple[dict, dict, dict]:
    """Route plan keyword arguments to (sampling, finish, executor)."""
    s_keys = set(plan.sampling.params)
    f_keys = set(plan.finish.params)
    plan_keys = set() if plan.finish.whole_graph else set(PLAN_PARAMS)
    s_params: dict = {}
    f_params: dict = {}
    top: dict = {}
    for key, value in params.items():
        if key in s_keys:
            s_params[key] = value
        elif key in f_keys:
            f_params[key] = value
        elif key in plan_keys:
            top[key] = value
        else:
            raise ConfigurationError(
                f"plan {plan.name!r} does not accept parameter {key!r}; "
                f"accepted: {sorted(s_keys | f_keys | plan_keys)}"
            )
    return s_params, f_params, top


def run_plan(
    plan: Plan | str,
    graph: CSRGraph,
    backend: ExecutionBackend,
    **params,
) -> CCResult:
    """Execute ``plan`` on ``graph`` over ``backend``; exact labeling.

    Plan-level parameters: ``seed`` (RNG for random sampling phases and
    the skip glue's π probes), ``skip_largest`` (defaulting to True
    exactly when the plan samples *and* its finish can skip — the
    classical finish-only plans stay skip-free like their monolithic
    ancestors), ``sample_size`` (number of π probes).  Remaining keywords
    are routed to the phase that declares them; unknown keys raise.
    """
    if isinstance(plan, str):
        plan = get_plan(plan)
    s_params, f_params, top = _split_params(plan, params)
    if plan.sampling.validate is not None:
        plan.sampling.validate(**s_params)
    if plan.finish.validate is not None:
        plan.finish.validate(**f_params)

    if plan.finish.whole_graph:
        result = plan.finish.fn(graph, backend, **f_params)
        result.plan = plan.name
        return result

    seed = top.get("seed", 0)
    sample_size = top.get("sample_size", DEFAULT_SKIP_SAMPLE_SIZE)
    skip_default = plan.sampling.name != "none" and plan.finish.supports_skip
    skip = bool(top.get("skip_largest", skip_default))
    skip = skip and plan.finish.supports_skip

    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        if plan.sampling.name == "kout":
            result.neighbor_rounds = s_params.get(
                "neighbor_rounds", DEFAULT_NEIGHBOR_ROUNDS
            )
        result.run_stats = backend.run_stats()
        result.plan = plan.name
        return result

    rng = np.random.default_rng(seed)
    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    result.plan = plan.name
    ctx = PlanContext(
        graph=graph, backend=backend, pi=pi, result=result, rng=rng
    )
    plan.sampling.fn(ctx, **s_params)
    if skip:
        ctx.largest = backend.find_largest(pi, sample_size, rng, phase="F")
        result.largest_label = ctx.largest
    plan.finish.fn(ctx, **f_params)
    result.labels = ctx.pi
    result.run_stats = backend.run_stats()
    return result


def plan_algorithm_spec(name: str):
    """An :class:`~repro.engine.registry.AlgorithmSpec` for a composed
    plan name, letting ``engine.run("kout+sv", g)`` and every other
    registry consumer resolve plans exactly like registered algorithms.
    """
    from repro.engine.registry import AlgorithmSpec

    plan = get_plan(name)

    def _run(graph: CSRGraph, backend: ExecutionBackend, **params) -> CCResult:
        return run_plan(plan, graph, backend, **params)

    return AlgorithmSpec(
        name=plan.name,
        fn=_run,
        description=plan.description,
        backends=PLAN_BACKENDS,
        instrumented=True,
    )
