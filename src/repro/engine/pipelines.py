"""Backend-agnostic connectivity pipelines (written once, run anywhere).

Each pipeline is the *single* implementation of its algorithm's phase
structure, expressed against :class:`~repro.engine.backends.ExecutionBackend`
primitives.  Running it under :class:`~repro.engine.backends.VectorizedBackend`
gives the wall-clock batch implementation; running it under
:class:`~repro.engine.backends.SimulatedBackend` gives the concurrent
instrumented one — same control flow, same counters, same phase labels
(Fig. 7's legend: ``I`` init, ``L<r>`` link rounds, ``C<r>`` compress,
``F`` find-largest, ``H`` final link/"hook", ``C*`` final compress for
Afforest; ``I`` then ``H<i>``/``S<i>`` per iteration for SV; ``P<i>``
propagate rounds (``P*`` the settle sweep) for label propagation;
``T<i>``/``B<i>`` top-down/bottom-up frontier levels for BFS/DOBFS).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    VERTEX_DTYPE,
)
from repro.engine.backends import ExecutionBackend
from repro.engine.result import CCResult
from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.obs import phase_label
from repro.unionfind.parent import ParentArray

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "afforest_pipeline",
    "bfs_pipeline",
    "dobfs_pipeline",
    "lp_datadriven_pipeline",
    "lp_pipeline",
    "sv_pipeline",
    "sv_pipeline_edges",
]

#: GAP's direction-switch parameters (DOBFS).
DEFAULT_ALPHA = 15.0
DEFAULT_BETA = 18.0


def _check_rounds(neighbor_rounds: int) -> None:
    if neighbor_rounds < 0:
        raise ConfigurationError(
            f"neighbor_rounds must be >= 0, got {neighbor_rounds}"
        )


def _random_round_edges(
    graph: CSRGraph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One *random* neighbour per vertex (with replacement across rounds).

    The alternative sampling the paper weighs in Sec. VI-A before choosing
    first-``k``: statistically equivalent coverage, but the sampled slots
    cannot be tracked, so the final phase must reprocess every slot.
    """
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > 0)[0].astype(VERTEX_DTYPE)
    offsets = rng.integers(0, deg[verts])
    nbrs = graph.indices[graph.indptr[verts] + offsets]
    return verts, nbrs


# --------------------------------------------------------------------- #
# Afforest (paper Fig. 5)
# --------------------------------------------------------------------- #


def afforest_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
    sampling: str = "first",
) -> CCResult:
    """Run Afforest on any execution backend; returns the exact labeling.

    Pipeline (identical on every backend):

    1. initialise π self-pointing;
    2. ``neighbor_rounds`` rounds of neighbour sampling, each a link over
       ``(v, N(v)[r])`` followed by a compress — O(|V|) work per round;
    3. probabilistic identification of the largest intermediate component
       by sampling π (``skip_largest``);
    4. final link phase over the remaining edge slots, skipping giant-
       component vertices wholesale (safe by Theorem 3);
    5. final compress: π becomes the component labeling.

    ``sampling`` selects ``first`` (the first stored neighbours, whose
    slots the final phase can skip) or ``random`` (a random neighbour per
    vertex per round; untrackable, so the final phase reprocesses every
    slot — the trade-off Sec. VI-A cites for choosing ``first``).
    """
    _check_rounds(neighbor_rounds)
    if sampling not in ("first", "random"):
        raise ConfigurationError(
            f"sampling must be 'first' or 'random', got {sampling!r}"
        )
    n = graph.num_vertices
    if n == 0:
        result = CCResult(
            labels=np.arange(0, dtype=VERTEX_DTYPE),
            neighbor_rounds=neighbor_rounds,
        )
        result.run_stats = backend.run_stats()
        return result

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi, neighbor_rounds=neighbor_rounds)
    deg = np.asarray(graph.degree())
    rng = np.random.default_rng(seed)

    # Phase labels carry the round as a structured attribute (the flat
    # strings "L0"/"C0"/... are unchanged for phase_seconds consumers).
    for r in range(neighbor_rounds):
        link_phase = phase_label("L", round=r)
        if sampling == "first":
            result.edges_sampled += int(np.count_nonzero(deg > r))
            rounds = backend.link_neighbor_round(pi, graph, r, phase=link_phase)
        else:
            src, dst = _random_round_edges(graph, rng)
            result.edges_sampled += int(src.shape[0])
            rounds = backend.link_edges(pi, src, dst, phase=link_phase)
        if rounds is not None:
            result.link_rounds.append(rounds)
        passes = backend.compress(pi, phase=phase_label("C", round=r))
        if passes is not None:
            result.compress_passes.append(passes)

    # Random sampling cannot mark which slots were consumed, so the final
    # phase starts from slot 0 (reprocessing); first-k sampling resumes at
    # slot neighbor_rounds.
    final_start = neighbor_rounds if sampling == "first" else 0

    largest: int | None = None
    if skip_largest:
        largest = backend.find_largest(pi, sample_size, rng, phase="F")
        result.largest_label = largest

    final, skipped, rounds = backend.link_remaining(
        pi, graph, final_start, largest, phase="H"
    )
    result.edges_final = final
    result.edges_skipped = skipped
    if rounds is not None:
        result.link_rounds.append(rounds)
    passes = backend.compress(pi, phase=phase_label("C", final=True))
    if passes is not None:
        result.compress_passes.append(passes)
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


# --------------------------------------------------------------------- #
# Shiloach–Vishkin (paper Fig. 1, GAP formulation)
# --------------------------------------------------------------------- #


def sv_pipeline_edges(
    backend: ExecutionBackend,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a flat directed edge list, any backend.

    Each outer iteration performs a *hook* pass over every edge — ``(u, v)``
    hooks ``π(v)`` under ``π(u)`` when ``π(u) < π(v)`` and ``π(v)`` is a
    root — followed by a *shortcut* pass.  Converges when a full iteration
    changes nothing; unlike Afforest, every edge is reprocessed in every
    iteration, which is exactly the work-inefficiency the paper targets.

    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's formulation,
    the default) or the original algorithm's single ``pi <- pi[pi]`` step.
    """
    if shortcut not in ("full", "single"):
        raise ConfigurationError(
            f"shortcut must be 'full' or 'single', got {shortcut!r}"
        )
    n = num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"SV exceeded {cap} iterations")
        changed = backend.hook_pass(
            pi, src, dst, phase=phase_label("H", round=iterations)
        )
        result.edges_processed += int(src.shape[0])
        if track_depth:
            d = ParentArray(pi).max_depth()
            result.depth_per_iteration.append(d)
            result.max_tree_depth = max(result.max_tree_depth, d)
        shortcut_phase = phase_label("S", round=iterations)
        if shortcut == "full":
            backend.compress(pi, phase=shortcut_phase)
        else:
            # The original formulation's single shortcut step per
            # iteration: pi <- pi[pi] once.  Trees shrink gradually and
            # convergence takes more iterations than GAP's full compress.
            backend.shortcut_step(pi, phase=shortcut_phase)
        if not changed:
            # With single-step shortcutting the trees may still be deep;
            # converged means no more hooks, so finish compressing now.
            if shortcut == "single":
                backend.compress(pi, phase=phase_label("S", final=True))
            break
    result.iterations = iterations
    result.run_stats = backend.run_stats()
    return result


def sv_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a CSR graph (expands to the edge array)."""
    n = graph.num_vertices
    if n == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return sv_pipeline_edges(
            backend, 0, empty, empty, track_depth=track_depth,
            shortcut=shortcut,
        )
    src, dst = graph.edge_array()
    return sv_pipeline_edges(
        backend, n, src, dst, track_depth=track_depth, shortcut=shortcut
    )


# --------------------------------------------------------------------- #
# Label propagation (paper Sec. II-B)
# --------------------------------------------------------------------- #


def lp_pipeline(graph: CSRGraph, backend: ExecutionBackend) -> CCResult:
    """Synchronous min-label propagation, any backend.

    Each round (phase ``P<i>``) is one full-edge min-label sweep
    (:meth:`~repro.engine.backends.ExecutionBackend.propagate_pass`);
    convergence when a sweep reports no change — sound on every substrate
    because a pass reporting zero changes performed no writes.  Work is
    ``O(D · |E|)``, the diameter dependence the paper contrasts against.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    m = graph.num_directed_edges
    if m == 0:
        result.labels = pi
        result.run_stats = backend.run_stats()
        return result
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(
                f"label propagation exceeded {cap} iterations"
            )
        changed = backend.propagate_pass(
            pi, graph, phase=phase_label("P", round=iterations)
        )
        result.edges_processed += m
        if not changed:
            break
    result.iterations = iterations
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


def lp_datadriven_pipeline(
    graph: CSRGraph, backend: ExecutionBackend
) -> CCResult:
    """Data-driven (frontier) min-label propagation, any backend.

    Each round (phase ``P<i>``) pushes labels from the frontier of
    vertices whose label changed last round
    (:meth:`~repro.engine.backends.ExecutionBackend.frontier_expand`),
    so total work shrinks from ``O(D·|E|)`` toward the sum of active-edge
    counts.  Once the frontier drains, a settle phase (``P*``) lets the
    substrate certify/repair the fixpoint — zero passes everywhere except
    the process backend, whose non-atomic cross-block min-writes can lose
    an update.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    if graph.num_directed_edges == 0:
        result.labels = pi
        result.run_stats = backend.run_stats()
        return result
    indptr = graph.indptr
    frontier = np.arange(n, dtype=VERTEX_DTYPE)
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    while frontier.size:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(
                f"data-driven label propagation exceeded {cap} iterations"
            )
        total = int((indptr[frontier + 1] - indptr[frontier]).sum())
        if total == 0:
            break
        phase = phase_label(
            "P", round=iterations, frontier=int(frontier.shape[0])
        )
        backend.record_frontier(int(frontier.shape[0]), phase=phase)
        result.edges_processed += total
        frontier = backend.frontier_expand(pi, graph, frontier, phase=phase)
    backend.propagate_settle(pi, graph, phase=phase_label("P", final=True))
    result.iterations = iterations
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


# --------------------------------------------------------------------- #
# BFS connected components (paper Sec. II-B; DOBFS after Beamer et al.)
# --------------------------------------------------------------------- #


def bfs_pipeline(graph: CSRGraph, backend: ExecutionBackend) -> CCResult:
    """Connected components via repeated frontier-parallel BFS, any backend.

    Components are found one at a time: an ascending cursor scan picks
    the smallest unvisited vertex as seed (so labels are component
    minima, bit-identical to the hooking algorithms), then phase ``T<i>``
    frontier expansions label everything reached.  Unvisited vertices
    carry the sentinel ``n`` — compatible with the backends' min-label
    push, since every real label is smaller.  Each edge is touched once
    (linear work), but components are processed serially — the weakness
    Fig. 8c exposes.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    sentinel = n
    pi = backend.init_labels(n, phase="I", fill=sentinel)
    result = CCResult(labels=pi)
    indptr = graph.indptr
    edges = 0
    steps = 0
    step_edges: list[int] = []
    # Seeds are scanned in id order; the cursor never revisits labelled
    # prefix entries, so the scan is O(n) total.
    cursor = 0
    while cursor < n:
        if int(pi[cursor]) != sentinel:
            cursor += 1
            continue
        label = cursor
        pi[cursor] = label
        frontier = np.asarray([cursor], dtype=VERTEX_DTYPE)
        while frontier.size:
            steps += 1
            total = int((indptr[frontier + 1] - indptr[frontier]).sum())
            if total == 0:
                break
            edges += total
            step_edges.append(total)
            phase = phase_label(
                "T", round=steps, frontier=int(frontier.shape[0])
            )
            backend.record_frontier(int(frontier.shape[0]), phase=phase)
            frontier = backend.frontier_expand(
                pi, graph, frontier, phase=phase
            )
        cursor += 1
    # step_edges: edges examined per frontier expansion, in execution
    # order — the per-parallel-phase work profile used by the scaling
    # model (Fig. 8b).
    result.edges_processed = edges
    result.bfs_steps = steps
    result.step_edges = step_edges
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


def dobfs_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
) -> CCResult:
    """Connected components via direction-optimizing BFS, any backend.

    Like :func:`bfs_pipeline` but each step chooses between a top-down
    frontier expansion (phase ``T<i>``) and a bottom-up pull over the
    unvisited vertices (phase ``B<i>``), following GAP's heuristic: go
    bottom-up when the frontier's out-degree exceeds
    ``remaining_edges / alpha``; return to top-down once the frontier
    both shrinks and drops below ``n / beta`` (do-while hysteresis).

    ``edges_processed`` is the early-exit work model (a bottom-up scan
    stops at its first frontier hit — what real hardware touches);
    ``edges_gathered`` whatever the substrate actually examined.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    sentinel = n
    pi = backend.init_labels(n, phase="I", fill=sentinel)
    result = CCResult(labels=pi)
    deg = np.asarray(graph.degree())

    edges_modeled = 0
    edges_gathered = 0
    td_steps = 0
    bu_steps = 0
    step_edges: list[int] = []

    # GAP's heuristic state: edges_to_check counts unexplored out-degree
    # and only ever decreases; scout is the current frontier's out-degree.
    edges_to_check = graph.num_directed_edges
    cursor = 0
    while cursor < n:
        if int(pi[cursor]) != sentinel:
            cursor += 1
            continue
        label = cursor
        pi[cursor] = label
        frontier = np.asarray([cursor], dtype=VERTEX_DTYPE)
        while frontier.size:
            scout = int(deg[frontier].sum())
            if scout > edges_to_check / alpha:
                # Bottom-up regime: sweep until the frontier both shrinks
                # and drops below n / beta (GAP's do-while hysteresis).
                awake = frontier.shape[0]
                while True:
                    in_frontier = np.zeros(n, dtype=bool)
                    in_frontier[frontier] = True
                    bu_steps += 1
                    phase = phase_label(
                        "B", round=bu_steps, frontier=int(awake)
                    )
                    backend.record_frontier(int(awake), phase=phase)
                    frontier, modeled, gathered = backend.bottom_up_pass(
                        pi, graph, in_frontier, label, sentinel, phase=phase
                    )
                    edges_modeled += modeled
                    edges_gathered += gathered
                    step_edges.append(modeled)
                    prev_awake, awake = awake, frontier.shape[0]
                    if awake == 0 or (
                        awake < prev_awake and awake <= n / beta
                    ):
                        break
                edges_to_check = max(
                    edges_to_check - int(deg[frontier].sum()), 0
                )
            else:
                edges_to_check = max(edges_to_check - scout, 0)
                td_steps += 1
                step_edges.append(scout)
                edges_modeled += scout
                edges_gathered += scout
                if scout == 0:
                    frontier = np.empty(0, dtype=VERTEX_DTYPE)
                else:
                    phase = phase_label(
                        "T", round=td_steps, frontier=int(frontier.shape[0])
                    )
                    backend.record_frontier(
                        int(frontier.shape[0]), phase=phase
                    )
                    frontier = backend.frontier_expand(
                        pi, graph, frontier, phase=phase
                    )
        cursor += 1
    # step_edges: modeled edges examined per step, in execution order
    # (Fig. 8b input).
    result.edges_processed = edges_modeled
    result.edges_gathered = edges_gathered
    result.top_down_steps = td_steps
    result.bottom_up_steps = bu_steps
    result.bfs_steps = td_steps + bu_steps
    result.step_edges = step_edges
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result
