"""Compatibility facade over the composed plan layer.

The monolithic pipelines that used to live here were split into the
sampling phase family (:mod:`repro.engine.sampling`) and the finish
phase family (:mod:`repro.engine.finish`), composed by the plan layer
(:mod:`repro.engine.plan`).  The historical ``*_pipeline`` entry points
survive as thin wrappers over their canonical plans — same signatures,
same defaults, bit-identical labels, counters, and phase labels
(Fig. 7's legend: ``I`` init, ``L<r>`` link rounds, ``C<r>`` compress,
``F`` find-largest, ``H`` final link/"hook", ``C*`` final compress for
Afforest; ``I`` then ``H<i>``/``S<i>`` per iteration for SV; ``P<i>``
propagate rounds (``P*`` the settle sweep) for label propagation;
``T<i>``/``B<i>`` top-down/bottom-up frontier levels for BFS/DOBFS).
New code should address plans directly (``engine.run("kout+sv", g)`` or
``run_plan``).
"""

from __future__ import annotations

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
)
from repro.engine.backends import ExecutionBackend
from repro.engine.finish import (
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    bfs_pipeline,
    dobfs_pipeline,
    sv_pipeline_edges,
)
from repro.engine.plan import run_plan
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "afforest_pipeline",
    "bfs_pipeline",
    "dobfs_pipeline",
    "lp_datadriven_pipeline",
    "lp_pipeline",
    "sv_pipeline",
    "sv_pipeline_edges",
]


def afforest_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
    sampling: str = "first",
) -> CCResult:
    """Afforest on any backend: the canonical ``kout+settle`` plan."""
    return run_plan(
        "kout+settle",
        graph,
        backend,
        neighbor_rounds=neighbor_rounds,
        skip_largest=skip_largest,
        sample_size=sample_size,
        seed=seed,
        sampling=sampling,
    )


def sv_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a CSR graph: the canonical ``none+sv`` plan."""
    return run_plan(
        "none+sv", graph, backend, track_depth=track_depth, shortcut=shortcut
    )


def lp_pipeline(graph: CSRGraph, backend: ExecutionBackend) -> CCResult:
    """Synchronous min-label propagation: the canonical ``none+lp`` plan."""
    return run_plan("none+lp", graph, backend)


def lp_datadriven_pipeline(
    graph: CSRGraph, backend: ExecutionBackend
) -> CCResult:
    """Frontier min-label propagation: the ``none+lp-datadriven`` plan."""
    return run_plan("none+lp-datadriven", graph, backend)
