"""Backend-agnostic connectivity pipelines (written once, run anywhere).

Each pipeline is the *single* implementation of its algorithm's phase
structure, expressed against :class:`~repro.engine.backends.ExecutionBackend`
primitives.  Running it under :class:`~repro.engine.backends.VectorizedBackend`
gives the wall-clock batch implementation; running it under
:class:`~repro.engine.backends.SimulatedBackend` gives the concurrent
instrumented one — same control flow, same counters, same phase labels
(Fig. 7's legend: ``I`` init, ``L<r>`` link rounds, ``C<r>`` compress,
``F`` find-largest, ``H`` final link/"hook", ``C*`` final compress for
Afforest; ``I`` then ``H<i>``/``S<i>`` per iteration for SV).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    DEFAULT_NEIGHBOR_ROUNDS,
    DEFAULT_SKIP_SAMPLE_SIZE,
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    VERTEX_DTYPE,
)
from repro.engine.backends import ExecutionBackend
from repro.engine.result import CCResult
from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.obs import phase_label
from repro.unionfind.parent import ParentArray

__all__ = ["afforest_pipeline", "sv_pipeline", "sv_pipeline_edges"]


def _check_rounds(neighbor_rounds: int) -> None:
    if neighbor_rounds < 0:
        raise ConfigurationError(
            f"neighbor_rounds must be >= 0, got {neighbor_rounds}"
        )


def _random_round_edges(
    graph: CSRGraph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One *random* neighbour per vertex (with replacement across rounds).

    The alternative sampling the paper weighs in Sec. VI-A before choosing
    first-``k``: statistically equivalent coverage, but the sampled slots
    cannot be tracked, so the final phase must reprocess every slot.
    """
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > 0)[0].astype(VERTEX_DTYPE)
    offsets = rng.integers(0, deg[verts])
    nbrs = graph.indices[graph.indptr[verts] + offsets]
    return verts, nbrs


# --------------------------------------------------------------------- #
# Afforest (paper Fig. 5)
# --------------------------------------------------------------------- #


def afforest_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    skip_largest: bool = True,
    sample_size: int = DEFAULT_SKIP_SAMPLE_SIZE,
    seed: int = 0,
    sampling: str = "first",
) -> CCResult:
    """Run Afforest on any execution backend; returns the exact labeling.

    Pipeline (identical on every backend):

    1. initialise π self-pointing;
    2. ``neighbor_rounds`` rounds of neighbour sampling, each a link over
       ``(v, N(v)[r])`` followed by a compress — O(|V|) work per round;
    3. probabilistic identification of the largest intermediate component
       by sampling π (``skip_largest``);
    4. final link phase over the remaining edge slots, skipping giant-
       component vertices wholesale (safe by Theorem 3);
    5. final compress: π becomes the component labeling.

    ``sampling`` selects ``first`` (the first stored neighbours, whose
    slots the final phase can skip) or ``random`` (a random neighbour per
    vertex per round; untrackable, so the final phase reprocesses every
    slot — the trade-off Sec. VI-A cites for choosing ``first``).
    """
    _check_rounds(neighbor_rounds)
    if sampling not in ("first", "random"):
        raise ConfigurationError(
            f"sampling must be 'first' or 'random', got {sampling!r}"
        )
    n = graph.num_vertices
    if n == 0:
        result = CCResult(
            labels=np.arange(0, dtype=VERTEX_DTYPE),
            neighbor_rounds=neighbor_rounds,
        )
        result.run_stats = backend.run_stats()
        return result

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi, neighbor_rounds=neighbor_rounds)
    deg = np.asarray(graph.degree())
    rng = np.random.default_rng(seed)

    # Phase labels carry the round as a structured attribute (the flat
    # strings "L0"/"C0"/... are unchanged for phase_seconds consumers).
    for r in range(neighbor_rounds):
        link_phase = phase_label("L", round=r)
        if sampling == "first":
            result.edges_sampled += int(np.count_nonzero(deg > r))
            rounds = backend.link_neighbor_round(pi, graph, r, phase=link_phase)
        else:
            src, dst = _random_round_edges(graph, rng)
            result.edges_sampled += int(src.shape[0])
            rounds = backend.link_edges(pi, src, dst, phase=link_phase)
        if rounds is not None:
            result.link_rounds.append(rounds)
        passes = backend.compress(pi, phase=phase_label("C", round=r))
        if passes is not None:
            result.compress_passes.append(passes)

    # Random sampling cannot mark which slots were consumed, so the final
    # phase starts from slot 0 (reprocessing); first-k sampling resumes at
    # slot neighbor_rounds.
    final_start = neighbor_rounds if sampling == "first" else 0

    largest: int | None = None
    if skip_largest:
        largest = backend.find_largest(pi, sample_size, rng, phase="F")
        result.largest_label = largest

    final, skipped, rounds = backend.link_remaining(
        pi, graph, final_start, largest, phase="H"
    )
    result.edges_final = final
    result.edges_skipped = skipped
    if rounds is not None:
        result.link_rounds.append(rounds)
    passes = backend.compress(pi, phase=phase_label("C", final=True))
    if passes is not None:
        result.compress_passes.append(passes)
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


# --------------------------------------------------------------------- #
# Shiloach–Vishkin (paper Fig. 1, GAP formulation)
# --------------------------------------------------------------------- #


def sv_pipeline_edges(
    backend: ExecutionBackend,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a flat directed edge list, any backend.

    Each outer iteration performs a *hook* pass over every edge — ``(u, v)``
    hooks ``π(v)`` under ``π(u)`` when ``π(u) < π(v)`` and ``π(v)`` is a
    root — followed by a *shortcut* pass.  Converges when a full iteration
    changes nothing; unlike Afforest, every edge is reprocessed in every
    iteration, which is exactly the work-inefficiency the paper targets.

    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's formulation,
    the default) or the original algorithm's single ``pi <- pi[pi]`` step.
    """
    if shortcut not in ("full", "single"):
        raise ConfigurationError(
            f"shortcut must be 'full' or 'single', got {shortcut!r}"
        )
    n = num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"SV exceeded {cap} iterations")
        changed = backend.hook_pass(
            pi, src, dst, phase=phase_label("H", round=iterations)
        )
        result.edges_processed += int(src.shape[0])
        if track_depth:
            d = ParentArray(pi).max_depth()
            result.depth_per_iteration.append(d)
            result.max_tree_depth = max(result.max_tree_depth, d)
        shortcut_phase = phase_label("S", round=iterations)
        if shortcut == "full":
            backend.compress(pi, phase=shortcut_phase)
        else:
            # The original formulation's single shortcut step per
            # iteration: pi <- pi[pi] once.  Trees shrink gradually and
            # convergence takes more iterations than GAP's full compress.
            backend.shortcut_step(pi, phase=shortcut_phase)
        if not changed:
            # With single-step shortcutting the trees may still be deep;
            # converged means no more hooks, so finish compressing now.
            if shortcut == "single":
                backend.compress(pi, phase=phase_label("S", final=True))
            break
    result.iterations = iterations
    result.run_stats = backend.run_stats()
    return result


def sv_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a CSR graph (expands to the edge array)."""
    n = graph.num_vertices
    if n == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return sv_pipeline_edges(
            backend, 0, empty, empty, track_depth=track_depth,
            shortcut=shortcut,
        )
    src, dst = graph.edge_array()
    return sv_pipeline_edges(
        backend, n, src, dst, track_depth=track_depth, shortcut=shortcut
    )
