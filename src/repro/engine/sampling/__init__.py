"""The sampling phase family.

A sampling phase cheaply links *some* of the graph's edges into the
parent/label array π — neighbour rounds, bounded traversals, cluster
growing, or strategy batches — so the finish phase starts from a partial
forest instead of singletons.  With a giant component, the plan executor
can then identify its label probabilistically
(:func:`repro.core.sampling.most_frequent_element` through
``backend.find_largest``) and let skip-capable finishes avoid its edges
entirely — the paper's central optimisation, generalised over every
sampling × finish pair.

``SAMPLINGS`` is the registry the plan layer composes from; ``none`` is
the identity phase (finish-only plans, the classical monoliths).
"""

from __future__ import annotations

from repro.engine.phase import PlanContext, SamplingSpec
from repro.engine.sampling.kout import KOUT, kout_sampling
from repro.engine.sampling.subgraph import SUBGRAPH, subgraph_sampling
from repro.engine.sampling.traversal import (
    BFS_SAMPLING,
    LDD,
    bfs_sampling,
    ldd_sampling,
)

__all__ = [
    "SAMPLINGS",
    "NONE",
    "KOUT",
    "BFS_SAMPLING",
    "LDD",
    "SUBGRAPH",
    "kout_sampling",
    "bfs_sampling",
    "ldd_sampling",
    "subgraph_sampling",
]


def _none_sampling(ctx: PlanContext) -> None:
    """Identity sampling: the finish phase sees pristine singletons."""


NONE = SamplingSpec(
    name="none",
    fn=_none_sampling,
    description="no sampling: the finish phase processes the whole graph",
)

#: name -> spec of every registered sampling phase.
SAMPLINGS: dict[str, SamplingSpec] = {
    spec.name: spec
    for spec in (NONE, KOUT, BFS_SAMPLING, LDD, SUBGRAPH)
}
