"""Traversal-flavoured sampling phases: BFS from sampled roots and
LDD-style simultaneous ball growing.

Both phases push min-labels out of a seed set through the backends'
``frontier_expand`` primitive for a bounded number of rounds, then
compress.  Every push is a monotone min-write over component-internal
vertex ids, so the resulting π is a valid decreasing-pointer forest any
finish phase can take over — the ConnectIt recipe of pairing a partial
traversal with an arbitrary finish.

- **BFS sampling** seeds from the highest-degree vertex plus a handful of
  random roots: a few rounds collapse the dense core of a power-law
  graph, leaving the periphery for the finish phase.
- **LDD sampling** seeds ``β·n`` random centers growing simultaneously —
  the low-diameter-decomposition idiom: overlapping balls resolve by
  min-label, fragmenting the graph into clusters whose stitching is left
  to the finish phase.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.engine.phase import PlanContext, SamplingSpec
from repro.errors import ConfigurationError
from repro.obs import phase_label

__all__ = ["BFS_SAMPLING", "LDD", "bfs_sampling", "ldd_sampling"]


def _expand_rounds(
    ctx: PlanContext, frontier: np.ndarray, rounds: int, base: str
) -> None:
    """Run up to ``rounds`` frontier expansions, then one compress (SC)."""
    backend, pi, graph = ctx.backend, ctx.pi, ctx.graph
    indptr = graph.indptr
    for i in range(1, rounds + 1):
        if frontier.size == 0:
            break
        total = int((indptr[frontier + 1] - indptr[frontier]).sum())
        if total == 0:
            break
        ctx.result.edges_sampled += total
        phase = phase_label(base, round=i, frontier=int(frontier.shape[0]))
        backend.record_frontier(int(frontier.shape[0]), phase=phase)
        frontier = backend.frontier_expand(pi, graph, frontier, phase=phase)
        backend.instr.beat(phase, frontier=int(frontier.shape[0]))
    passes = backend.compress(pi, phase=phase_label("SC"))
    if passes is not None:
        ctx.result.compress_passes.append(passes)


def _validate_bfs(*, rounds: int = 3, roots: int = 32) -> None:
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
    if roots < 1:
        raise ConfigurationError(f"roots must be >= 1, got {roots}")


def bfs_sampling(ctx: PlanContext, *, rounds: int = 3, roots: int = 32) -> None:
    """Bounded BFS label push from sampled roots (phases ``SB<i>``).

    The seed set is the maximum-degree vertex (the giant component's core
    with overwhelming probability on skewed graphs) plus ``roots - 1``
    uniform random vertices, so small components also get coverage.
    """
    _validate_bfs(rounds=rounds, roots=roots)
    n = ctx.graph.num_vertices
    deg = np.asarray(ctx.graph.degree())
    k = min(roots, n)
    seeds = ctx.rng.choice(n, size=k, replace=False)
    seeds[0] = int(np.argmax(deg))
    frontier = np.unique(seeds).astype(VERTEX_DTYPE)
    _expand_rounds(ctx, frontier, rounds, "SB")


def _validate_ldd(*, beta: float = 0.2, rounds: int = 2) -> None:
    if not 0.0 < beta <= 1.0:
        raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
    if rounds < 0:
        raise ConfigurationError(f"rounds must be >= 0, got {rounds}")


def ldd_sampling(
    ctx: PlanContext, *, beta: float = 0.2, rounds: int = 2
) -> None:
    """LDD-style cluster sampling (phases ``SL<i>``): grow balls of radius
    ``rounds`` around ``β·n`` random centers simultaneously."""
    _validate_ldd(beta=beta, rounds=rounds)
    n = ctx.graph.num_vertices
    centers = max(1, int(beta * n))
    frontier = np.sort(
        ctx.rng.choice(n, size=min(centers, n), replace=False)
    ).astype(VERTEX_DTYPE)
    _expand_rounds(ctx, frontier, rounds, "SL")


BFS_SAMPLING = SamplingSpec(
    name="bfs",
    fn=bfs_sampling,
    description="bounded BFS min-label push from sampled roots "
    "(max-degree vertex + random roots)",
    params=("rounds", "roots"),
    validate=_validate_bfs,
)

LDD = SamplingSpec(
    name="ldd",
    fn=ldd_sampling,
    description="LDD-style cluster sampling: simultaneous ball growing "
    "from beta*n random centers",
    params=("beta", "rounds"),
    validate=_validate_ldd,
)
