"""Subgraph-batch sampling: the paper's partitioning strategies as a
sampling phase.

Reuses :mod:`repro.core.strategies` (Fig. 6) to build edge batches, then
links a *prefix* of them — the sampled subgraph — leaving the remaining
edges to the finish phase.  Because Afforest's subgraph-processing
property (Sec. III-B) makes any link order correct, processing only the
first batches and handing π to an arbitrary finish is sound; the choice
of strategy controls how quickly linkage converges per edge processed.
"""

from __future__ import annotations

from repro.core.strategies import STRATEGIES, SubgraphBatch
from repro.engine.phase import PlanContext, SamplingSpec
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.obs import phase_label

__all__ = ["SUBGRAPH", "subgraph_sampling"]


def _validate(
    *,
    strategy: str = "uniform",
    num_batches: int = 8,
    batches: int = 2,
) -> None:
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
        )
    if num_batches < 1:
        raise ConfigurationError(
            f"num_batches must be >= 1, got {num_batches}"
        )
    if batches < 1:
        raise ConfigurationError(f"batches must be >= 1, got {batches}")


def _build_batches(
    ctx: PlanContext, graph: CSRGraph, strategy: str, num_batches: int
) -> list[SubgraphBatch]:
    if strategy == "uniform":
        return STRATEGIES["uniform"](graph, num_batches, seed=ctx.rng)
    if strategy == "neighbor":
        # rounds=num_batches yields num_batches round batches plus the
        # remainder; the prefix below never reaches the remainder.
        return STRATEGIES["neighbor"](graph, rounds=num_batches)
    if strategy == "optimal":
        return STRATEGIES["optimal"](graph)
    return STRATEGIES["row"](graph, num_batches)


def subgraph_sampling(
    ctx: PlanContext,
    *,
    strategy: str = "uniform",
    num_batches: int = 8,
    batches: int = 2,
) -> None:
    """Link the first ``batches`` of ``num_batches`` strategy batches
    (phases ``SG<i>``), then compress (``SC``)."""
    _validate(strategy=strategy, num_batches=num_batches, batches=batches)
    backend, pi, result = ctx.backend, ctx.pi, ctx.result
    prefix = _build_batches(ctx, ctx.graph, strategy, num_batches)[:batches]
    for i, batch in enumerate(prefix, 1):
        if batch.num_edges == 0:
            continue
        phase = phase_label("SG", round=i, batch=batch.name)
        result.edges_sampled += batch.num_edges
        rounds = backend.link_edges(pi, batch.src, batch.dst, phase=phase)
        if rounds is not None:
            result.link_rounds.append(rounds)
        backend.instr.beat(phase)
    passes = backend.compress(pi, phase=phase_label("SC"))
    if passes is not None:
        result.compress_passes.append(passes)


SUBGRAPH = SamplingSpec(
    name="subgraph",
    fn=subgraph_sampling,
    description="paper-style subgraph batches (core.strategies): link a "
    "prefix of row/uniform/neighbor/optimal batches",
    params=("strategy", "num_batches", "batches"),
    validate=_validate,
)
