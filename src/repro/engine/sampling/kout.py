"""k-out neighbour-round sampling (Afforest, paper Sec. IV-C).

Each round links ``(v, N(v)[r])`` for every vertex of degree > ``r`` and
compresses — O(|V|) work per round, spreading the edge budget evenly over
vertices and components.  ``sampling="first"`` consumes the first stored
neighbour slots (trackable, so the settle finish resumes after them);
``sampling="random"`` draws a random neighbour per vertex per round
(untrackable — the finish reprocesses every slot, the trade-off Sec. VI-A
cites for choosing first-k).
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_NEIGHBOR_ROUNDS, VERTEX_DTYPE
from repro.engine.phase import PlanContext, SamplingSpec
from repro.errors import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.obs import phase_label

__all__ = ["KOUT", "kout_sampling"]


def _validate(
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    sampling: str = "first",
) -> None:
    if neighbor_rounds < 0:
        raise ConfigurationError(
            f"neighbor_rounds must be >= 0, got {neighbor_rounds}"
        )
    if sampling not in ("first", "random"):
        raise ConfigurationError(
            f"sampling must be 'first' or 'random', got {sampling!r}"
        )


def _random_round_edges(
    graph: CSRGraph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One *random* neighbour per vertex (with replacement across rounds)."""
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > 0)[0].astype(VERTEX_DTYPE)
    offsets = rng.integers(0, deg[verts])
    nbrs = graph.indices[graph.indptr[verts] + offsets]
    return verts, nbrs


def kout_sampling(
    ctx: PlanContext,
    *,
    neighbor_rounds: int = DEFAULT_NEIGHBOR_ROUNDS,
    sampling: str = "first",
) -> None:
    """``neighbor_rounds`` rounds of neighbour linking, each compressed.

    Phase labels are the Afforest legend's ``L<r>`` / ``C<r>``; the flat
    strings and the structured ``round`` attribute are identical to the
    pre-refactor monolith, keeping canonical traces bit-compatible.
    """
    _validate(neighbor_rounds=neighbor_rounds, sampling=sampling)
    backend, pi, result = ctx.backend, ctx.pi, ctx.result
    deg = np.asarray(ctx.graph.degree())
    for r in range(neighbor_rounds):
        link_phase = phase_label("L", round=r)
        if sampling == "first":
            result.edges_sampled += int(np.count_nonzero(deg > r))
            rounds = backend.link_neighbor_round(
                pi, ctx.graph, r, phase=link_phase
            )
        else:
            src, dst = _random_round_edges(ctx.graph, ctx.rng)
            result.edges_sampled += int(src.shape[0])
            rounds = backend.link_edges(pi, src, dst, phase=link_phase)
        if rounds is not None:
            result.link_rounds.append(rounds)
        passes = backend.compress(pi, phase=phase_label("C", round=r))
        if passes is not None:
            result.compress_passes.append(passes)
        backend.instr.beat(link_phase)
    result.neighbor_rounds = neighbor_rounds
    # Random sampling cannot mark which slots were consumed, so the settle
    # finish starts from slot 0 (reprocessing); first-k resumes after the
    # consumed prefix.
    ctx.final_start = neighbor_rounds if sampling == "first" else 0


KOUT = SamplingSpec(
    name="kout",
    fn=kout_sampling,
    description="k-out neighbour rounds (Afforest Sec. IV-C): link "
    "(v, N(v)[r]) per round, compress between rounds",
    params=("neighbor_rounds", "sampling"),
    validate=_validate,
)
