"""Compatibility shim over the telemetry layer (:mod:`repro.obs`).

:class:`Instrumentation` was the engine's original recording substrate
(flat ``phase label -> wall seconds`` dict plus named counters).  It now
delegates to a :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`: ``timer`` opens a span,
``count`` bumps a counter, and the historical ``seconds`` / ``counters``
views are derived from the trace, so existing backends and callers keep
working unchanged while every profiled run produces a full span tree.
Backends that need richer telemetry (worker spans, histograms) reach the
substrate directly through ``instr.tracer`` / ``instr.metrics``.

Live telemetry rides the same shim: when ``engine.run`` attaches a
:class:`~repro.obs.heartbeat.HeartbeatMonitor`, pipelines report round
completions through :meth:`Instrumentation.beat`; without one the call
is a single ``None`` check.
"""

from __future__ import annotations

from typing import Any

from repro.obs.heartbeat import HeartbeatMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Instrumentation"]


class Instrumentation:
    """Phase timers and named counters for a single engine run.

    ``seconds`` maps phase label -> accumulated wall seconds (repeated
    labels accumulate, matching iterative algorithms that revisit a
    phase).  ``counters`` maps counter name -> accumulated integer.
    Both stay empty while ``enabled`` is False.
    """

    __slots__ = ("tracer", "metrics", "heartbeat")

    def __init__(
        self,
        enabled: bool = False,
        *,
        tracer: Tracer | None = None,
        heartbeat: HeartbeatMonitor | None = None,
    ) -> None:
        if tracer is None:
            tracer = Tracer(enabled)
        self.tracer = tracer
        self.metrics: MetricsRegistry = tracer.metrics
        self.heartbeat = heartbeat

    @property
    def enabled(self) -> bool:
        """Whether this run records telemetry."""
        return self.tracer.enabled

    def timer(self, label: str):
        """Context manager accumulating wall time under ``label``."""
        return self.tracer.span(label)

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` under counter ``name`` (when enabled)."""
        self.metrics.counter(name).inc(amount)

    def beat(
        self,
        phase: str = "",
        *,
        frontier: int | None = None,
        changed: int | None = None,
        **extra: Any,
    ) -> None:
        """Report a finished pipeline round to the live heartbeat, if any."""
        if self.heartbeat is not None:
            self.heartbeat.beat(
                phase, frontier=frontier, changed=changed, **extra
            )

    @property
    def seconds(self) -> dict[str, float]:
        """Flat phase label -> wall seconds view of the spans so far."""
        return self.tracer.phase_seconds()

    @property
    def counters(self) -> dict[str, int]:
        """Counter name -> value snapshot."""
        return self.metrics.counters_snapshot()
