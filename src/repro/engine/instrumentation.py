"""Compatibility shim over the telemetry layer (:mod:`repro.obs`).

:class:`Instrumentation` was the engine's original recording substrate
(flat ``phase label -> wall seconds`` dict plus named counters).  It now
delegates to a :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`: ``timer`` opens a span,
``count`` bumps a counter, and the historical ``seconds`` / ``counters``
views are derived from the trace, so existing backends and callers keep
working unchanged while every profiled run produces a full span tree.
Backends that need richer telemetry (worker spans, histograms) reach the
substrate directly through ``instr.tracer`` / ``instr.metrics``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Instrumentation"]


class Instrumentation:
    """Phase timers and named counters for a single engine run.

    ``seconds`` maps phase label -> accumulated wall seconds (repeated
    labels accumulate, matching iterative algorithms that revisit a
    phase).  ``counters`` maps counter name -> accumulated integer.
    Both stay empty while ``enabled`` is False.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(
        self, enabled: bool = False, *, tracer: Tracer | None = None
    ) -> None:
        if tracer is None:
            tracer = Tracer(enabled)
        self.tracer = tracer
        self.metrics: MetricsRegistry = tracer.metrics

    @property
    def enabled(self) -> bool:
        """Whether this run records telemetry."""
        return self.tracer.enabled

    def timer(self, label: str):
        """Context manager accumulating wall time under ``label``."""
        return self.tracer.span(label)

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` under counter ``name`` (when enabled)."""
        self.metrics.counter(name).inc(amount)

    @property
    def seconds(self) -> dict[str, float]:
        """Flat phase label -> wall seconds view of the spans so far."""
        return self.tracer.phase_seconds()

    @property
    def counters(self) -> dict[str, int]:
        """Counter name -> value snapshot."""
        return self.metrics.counters_snapshot()
