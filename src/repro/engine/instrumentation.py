"""Uniform run instrumentation: phase wall-clock timers and counters.

One :class:`Instrumentation` object is threaded through each engine run.
Backends (and pipelines) wrap their phases in :meth:`Instrumentation.timer`
so every algorithm — not just Afforest — gets a per-phase wall-time
breakdown when profiling is requested.  When disabled (the default) every
helper is a near-no-op, so un-profiled runs pay nothing measurable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Instrumentation"]


class Instrumentation:
    """Phase timers and named counters for a single engine run.

    ``seconds`` maps phase label -> accumulated wall seconds (repeated
    labels accumulate, matching iterative algorithms that revisit a
    phase).  ``counters`` maps counter name -> accumulated integer.
    Both stay empty while ``enabled`` is False.
    """

    __slots__ = ("enabled", "seconds", "counters")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.seconds: dict[str, float] = {}
        self.counters: dict[str, int] = {}

    @contextmanager
    def timer(self, label: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``label``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[label] = (
                self.seconds.get(label, 0.0) + time.perf_counter() - t0
            )

    def count(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` under counter ``name`` (when enabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + amount
