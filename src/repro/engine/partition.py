"""Edge-block partitioning and shared-memory plumbing for the process backend.

The paper's central observation — link/compress apply to *arbitrary* edge
subsets independently (Theorem 1) — is exactly what makes Afforest
partitionable across real OS processes.  This module provides the two
ingredients :class:`~repro.engine.backends.ProcessParallelBackend` builds
on:

- **contiguous CSR edge blocks** (:func:`partition_csr_blocks`): the
  vertex range ``[v_lo, v_hi)`` whose neighbour slots form the contiguous
  span ``indices[e_lo:e_hi]``, cut so every block carries roughly the same
  number of edge slots regardless of degree skew;
- **shared-memory vectors** (:class:`SharedVector`) holding π, the CSR
  arrays, and flat edge batches in ``multiprocessing.shared_memory``
  segments, so a persistent worker pool operates on the *same* physical
  parent array with zero per-task copying.

The ``_task_*`` functions at the bottom are the worker-side phase bodies:
each receives segment *specs* (name/length/dtype tuples), attaches the
segments once per process (cached in :data:`_ATTACHED`), and runs the
existing vectorized kernels (:func:`~repro.core.link.link_batch`,
pointer-jumping compression) restricted to its block.  When the backend
is tracing, each task additionally receives a ``(stats spec, slot)``
handle into a shared float64 *stats segment* and records its start/end
``perf_counter`` timestamps, pid, and work counters into its row
(:data:`STATS_FIELDS` per task); the parent merges the rows into the
run's trace as per-worker spans after every barrier.  Cross-process hooks are plain
scatter-min writes — lock-free, monotone toward smaller labels — so a
racing write can *lose an update* but never corrupt the forest: every
value written into ``pi[h]`` is a label drawn from ``h``'s own component
and smaller than ``h``, preserving Invariant 1 (``pi[x] <= x``) under any
interleaving.  Lost merges are repaired by the backend's settle loop
(:func:`_task_check_fix`) between global compress barriers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.core.link import link_batch
from repro.errors import ConfigurationError
from repro.nputil import segment_ranges

__all__ = [
    "EdgeBlock",
    "STATS_FIELDS",
    "SharedVector",
    "bottom_up_block",
    "partition_csr_blocks",
    "partition_ranges",
    "partition_weighted_ranges",
    "preferred_start_method",
]

_DTYPE = np.dtype(VERTEX_DTYPE)

#: segment spec shipped to workers: (shm name, element count, dtype str).
SegSpec = tuple[str, int, str]

# ------------------------------------------------------------------ #
# per-task telemetry rows (see the module docstring)
# ------------------------------------------------------------------ #

#: float64 slots per task row in a stats segment.
STATS_FIELDS = 5
_SF_T0, _SF_T1, _SF_PID, _SF_ITEMS, _SF_AUX = range(STATS_FIELDS)

#: optional per-task telemetry handle: (stats segment spec, row slot).
StatsSlot = "tuple[SegSpec, int] | None"


def _record_stats(
    stats, t0: float, items: int = 0, aux: int = 0
) -> None:
    """Write a task's telemetry row (no-op when tracing is off).

    ``t0`` is the task-entry ``perf_counter`` stamp; ``items`` counts the
    task's work units (edge slots linked, π slots compressed); ``aux``
    carries a phase-specific extra (e.g. skipped slots).  The end stamp
    is taken here, so call this last.
    """
    if stats is None:
        return
    spec, slot = stats
    row = _attach_view(spec)[slot * STATS_FIELDS : (slot + 1) * STATS_FIELDS]
    row[_SF_T0] = t0
    row[_SF_T1] = time.perf_counter()
    row[_SF_PID] = os.getpid()
    row[_SF_ITEMS] = items
    row[_SF_AUX] = aux


# --------------------------------------------------------------------- #
# partitioning
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class EdgeBlock:
    """A contiguous CSR edge block.

    Covers the vertex range ``[v_lo, v_hi)``; because CSR stores each
    vertex's neighbours contiguously, the block's edge slots are the
    contiguous span ``[e_lo, e_hi)`` of ``indices``.
    """

    v_lo: int
    v_hi: int
    e_lo: int
    e_hi: int

    @property
    def num_vertices(self) -> int:
        """Vertices covered by the block."""
        return self.v_hi - self.v_lo

    @property
    def num_edges(self) -> int:
        """Directed edge slots covered by the block."""
        return self.e_hi - self.e_lo


def partition_csr_blocks(indptr: np.ndarray, num_blocks: int) -> list[EdgeBlock]:
    """Cut the CSR structure into ``num_blocks`` contiguous edge blocks.

    Block boundaries fall on vertex boundaries (a vertex's neighbour list
    is never split) and are chosen by binary-searching ``indptr`` at even
    edge-count targets, so blocks are edge-balanced even under power-law
    degree skew.  Together the blocks cover every vertex exactly once;
    trailing isolated vertices land in the last block.
    """
    if num_blocks < 1:
        raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
    n = int(indptr.shape[0] - 1)
    m = int(indptr[-1]) if n else 0
    targets = np.linspace(0, m, num_blocks + 1)
    cuts = np.searchsorted(indptr, targets, side="left").astype(np.int64)
    cuts[0] = 0
    cuts[-1] = n
    cuts = np.maximum.accumulate(np.clip(cuts, 0, n))
    return [
        EdgeBlock(
            int(cuts[b]),
            int(cuts[b + 1]),
            int(indptr[cuts[b]]),
            int(indptr[cuts[b + 1]]),
        )
        for b in range(num_blocks)
    ]


def partition_ranges(total: int, num_blocks: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``num_blocks`` near-equal ``(lo, hi)``
    ranges (for flat edge arrays and per-vertex π sweeps)."""
    if num_blocks < 1:
        raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
    bounds = np.linspace(0, total, num_blocks + 1).astype(np.int64)
    return [(int(bounds[b]), int(bounds[b + 1])) for b in range(num_blocks)]


def partition_weighted_ranges(
    weights: np.ndarray, num_blocks: int
) -> list[tuple[int, int]]:
    """Split ``[0, len(weights))`` into ``num_blocks`` contiguous ``(lo, hi)``
    ranges of roughly equal total weight.

    Used to cut a frontier into degree-balanced slices: the weights are the
    frontier vertices' degrees, so each worker expands a similar number of
    edge slots even when a few high-degree hubs dominate the frontier.
    Falls back to even item counts when every weight is zero.
    """
    if num_blocks < 1:
        raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
    n = int(weights.shape[0])
    total = int(weights.sum()) if n else 0
    if total == 0:
        return partition_ranges(n, num_blocks)
    cum = np.cumsum(weights)
    targets = np.linspace(0, total, num_blocks + 1)
    cuts = np.searchsorted(cum, targets, side="left").astype(np.int64)
    cuts[0] = 0
    cuts[-1] = n
    cuts = np.maximum.accumulate(np.clip(cuts, 0, n))
    return [(int(cuts[b]), int(cuts[b + 1])) for b in range(num_blocks)]


def preferred_start_method() -> str:
    """``fork`` where available (fast pool start), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# --------------------------------------------------------------------- #
# shared-memory vectors
# --------------------------------------------------------------------- #


class SharedVector:
    """A typed vector living in a shared-memory segment.

    Created by the parent (``SharedVector(length)``); workers attach by
    name through :func:`_attach_view`.  ``array`` is the parent's live
    view; ``spec`` is what gets pickled into worker tasks.  The default
    dtype is ``VERTEX_DTYPE`` (π, CSR mirrors, edge batches); the process
    backend's telemetry rows use ``float64`` segments.
    """

    __slots__ = ("shm", "length", "dtype", "array")

    def __init__(self, length: int, dtype=VERTEX_DTYPE) -> None:
        self.dtype = np.dtype(dtype)
        nbytes = max(int(length) * self.dtype.itemsize, 1)
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.length = int(length)
        self.array = np.frombuffer(
            self.shm.buf, dtype=self.dtype, count=self.length
        )

    @property
    def spec(self) -> SegSpec:
        """Pickle-friendly handle workers attach with."""
        return (self.shm.name, self.length, self.dtype.str)

    def release(self) -> None:
        """Unmap and unlink the segment.

        If views of the buffer escaped (e.g. labels returned by a direct
        pipeline call that were never detached), ``close`` raises
        ``BufferError``; the name is still unlinked so the memory is
        reclaimed once the last view dies.
        """
        self.array = None  # type: ignore[assignment]
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - external views alive
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


# --------------------------------------------------------------------- #
# worker-side attachment cache
# --------------------------------------------------------------------- #

#: per-process cache: segment name -> attached SharedMemory.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

#: per-process cache: (segment name, dtype str) -> full-buffer view.
_VIEWS: dict[tuple[str, str], np.ndarray] = {}


def _attach_view(spec: SegSpec) -> np.ndarray:
    """The first ``length`` elements of segment ``name``, attached once.

    Works identically in workers and in the parent (the parent's own
    mapping is simply re-attached by name), so every ``_task_*`` body can
    also run inline for debugging.  Legacy two-element specs default to
    ``VERTEX_DTYPE``.
    """
    name, length = spec[0], spec[1]
    dtype = np.dtype(spec[2]) if len(spec) > 2 else _DTYPE
    key = (name, dtype.str)
    view = _VIEWS.get(key)
    if view is None:
        shm = _ATTACHED.get(name)
        if shm is None:
            # Attaching re-registers the name with the resource tracker,
            # but pool workers inherit the parent's tracker (fork and
            # spawn both pass the fd), so the registration set simply
            # dedupes; cleanup stays with the parent's release()/unlink().
            shm = shared_memory.SharedMemory(name=name)
            _ATTACHED[name] = shm
        view = np.frombuffer(shm.buf, dtype=dtype)
        _VIEWS[key] = view
    return view[:length]


def _evict_attached(name: str) -> None:
    """Drop a cached attachment (parent-side, after releasing a segment)."""
    shm = _ATTACHED.pop(name, None)
    for key in [k for k in _VIEWS if k[0] == name]:
        del _VIEWS[key]
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover
            pass


# --------------------------------------------------------------------- #
# worker task bodies (one call = one block of one phase)
# --------------------------------------------------------------------- #


def _task_link_round(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    v_lo: int,
    v_hi: int,
    r: int,
    stats=None,
) -> None:
    """Neighbour round ``r`` over one block: link ``(v, N(v)[r])`` for
    every block vertex with degree > r."""
    t0 = time.perf_counter()
    if v_hi <= v_lo:
        _record_stats(stats, t0)
        return
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    ip = indptr[v_lo : v_hi + 1]
    deg = np.diff(ip)
    sel = np.nonzero(deg > r)[0]
    if sel.size == 0:
        _record_stats(stats, t0)
        return
    verts = (v_lo + sel).astype(VERTEX_DTYPE)
    nbrs = indices[ip[sel] + r]
    link_batch(pi, verts, nbrs)
    _record_stats(stats, t0, items=int(sel.size))


def _task_link_edges(
    pi_spec: SegSpec,
    src_spec: SegSpec,
    dst_spec: SegSpec,
    lo: int,
    hi: int,
    stats=None,
) -> None:
    """Link one contiguous range of a flat shared edge batch."""
    t0 = time.perf_counter()
    if hi <= lo:
        _record_stats(stats, t0)
        return
    pi = _attach_view(pi_spec)
    src = _attach_view(src_spec)
    dst = _attach_view(dst_spec)
    link_batch(pi, src[lo:hi], dst[lo:hi])
    _record_stats(stats, t0, items=hi - lo)


def _task_link_remaining(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    v_lo: int,
    v_hi: int,
    start: int,
    largest: int | None,
    stats=None,
) -> tuple[int, int]:
    """Afforest final phase over one block.

    Links edge slots ``start..deg(v)-1`` of every block vertex whose
    current label differs from ``largest``; returns ``(linked, skipped)``
    slot counts (the per-block shares of ``edges_final``/``edges_skipped``).
    """
    t0 = time.perf_counter()
    if v_hi <= v_lo:
        _record_stats(stats, t0)
        return 0, 0
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    verts = np.arange(v_lo, v_hi, dtype=VERTEX_DTYPE)
    deg = indptr[v_lo + 1 : v_hi + 1] - indptr[v_lo:v_hi]
    skipped = 0
    if largest is not None:
        keep = pi[verts] != largest
        skipped = int(np.maximum(deg[~keep] - start, 0).sum())
        verts = verts[keep]
        deg = deg[keep]
    counts = np.maximum(deg - start, 0)
    total = int(counts.sum())
    if total == 0:
        _record_stats(stats, t0, aux=skipped)
        return 0, skipped
    src = np.repeat(verts, counts)
    offsets = np.repeat(indptr[verts] + start, counts) + segment_ranges(counts)
    link_batch(pi, src, indices[offsets])
    _record_stats(stats, t0, items=total, aux=skipped)
    return total, skipped


def _task_compress(pi_spec: SegSpec, lo: int, hi: int, stats=None) -> None:
    """Compress the block's π slots to their roots by pointer jumping.

    Reads may cross block boundaries but writes stay inside ``[lo, hi)``,
    so slots are single-writer; concurrent writers elsewhere only ever
    shorten paths (Theorem 2), and roots are stable during a compress
    phase (no links run concurrently), so the loop terminates with every
    block slot pointing at a true root.
    """
    t0 = time.perf_counter()
    if hi <= lo:
        _record_stats(stats, t0)
        return
    pi = _attach_view(pi_spec)
    passes = 0
    while True:
        p = pi[lo:hi].copy()
        gp = pi[p]
        if np.array_equal(gp, p):
            _record_stats(stats, t0, items=hi - lo, aux=passes)
            return
        pi[lo:hi] = gp
        passes += 1


def _task_shortcut(pi_spec: SegSpec, lo: int, hi: int, stats=None) -> None:
    """One single-step shortcut over the block: ``pi[v] <- pi[pi[v]]``."""
    t0 = time.perf_counter()
    if hi <= lo:
        _record_stats(stats, t0)
        return
    pi = _attach_view(pi_spec)
    pi[lo:hi] = pi[pi[lo:hi]]
    _record_stats(stats, t0, items=hi - lo)


def _task_hook(
    pi_spec: SegSpec,
    src_spec: SegSpec,
    dst_spec: SegSpec,
    lo: int,
    hi: int,
    stats=None,
) -> bool:
    """One SV hook pass over a range of the shared edge batch.

    Scatter-min onto observed roots (the FastSV-style min-hook); returns
    True when the block attempted any hook.  A racing overwrite can lose a
    hook, but the loser's block already reported "changed", so the
    pipeline's convergence test (a full pass with *no* change anywhere)
    remains sound.
    """
    t0 = time.perf_counter()
    if hi <= lo:
        _record_stats(stats, t0)
        return False
    pi = _attach_view(pi_spec)
    src = _attach_view(src_spec)
    dst = _attach_view(dst_spec)
    cu = pi[src[lo:hi]]
    cv = pi[dst[lo:hi]]
    mask = (cu < cv) & (pi[cv] == cv)
    if not mask.any():
        _record_stats(stats, t0, items=hi - lo)
        return False
    np.minimum.at(pi, cv[mask], cu[mask])
    _record_stats(stats, t0, items=hi - lo, aux=int(mask.sum()))
    return True


def bottom_up_block(
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    mask: np.ndarray,
    v_lo: int,
    v_hi: int,
    label: int,
    sentinel: int,
) -> tuple[np.ndarray, int, int]:
    """Bottom-up BFS sweep over the unvisited vertices of ``[v_lo, v_hi)``.

    Every block vertex still carrying ``sentinel`` scans its own neighbour
    list and adopts ``label`` when a neighbour is in the frontier
    (``mask`` nonzero).  Writes stay inside the block (each vertex writes
    only its own π slot), so the sweep is race-free across blocks.

    Returns ``(found vertices, modeled edges, gathered edges)`` —
    ``modeled`` is the early-exit scan count (stop at the first frontier
    hit, what real hardware touches); ``gathered`` the full vectorized
    gather volume.  Shared by the vectorized backend (one block spanning
    all vertices) and the process backend's per-block tasks.
    """
    empty = np.empty(0, dtype=VERTEX_DTYPE)
    block = pi[v_lo:v_hi]
    unvisited = (v_lo + np.nonzero(block == sentinel)[0]).astype(VERTEX_DTYPE)
    if unvisited.size == 0:
        return empty, 0, 0
    starts = indptr[unvisited]
    counts = (indptr[unvisited + 1] - starts).astype(VERTEX_DTYPE)
    total = int(counts.sum())
    if total == 0:
        return empty, 0, 0
    offsets = np.repeat(starts, counts) + segment_ranges(counts)
    hit = mask[indices[offsets]] != 0

    # Segmented first-hit position (within each vertex's neighbour list):
    # positions with no hit get the segment length (i.e. "scanned all").
    within = segment_ranges(counts)
    pos_or_len = np.where(hit, within, np.repeat(counts, counts))
    nonempty = counts > 0
    seg_starts = np.zeros(unvisited.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=seg_starts[1:])
    first_hit = np.minimum.reduceat(pos_or_len, seg_starts[nonempty])

    found_nonempty = first_hit < counts[nonempty]
    found = unvisited[nonempty][found_nonempty]
    pi[found] = label

    # Early-exit model: scanned first_hit + 1 slots on a hit, the whole
    # list otherwise.
    modeled = int(
        np.where(found_nonempty, first_hit + 1, counts[nonempty]).sum()
    )
    return found.astype(VERTEX_DTYPE), modeled, total


def _task_propagate(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    v_lo: int,
    v_hi: int,
    stats=None,
) -> int:
    """One synchronous min-label sweep over the block's CSR edge slots.

    Scatter-min of each edge's source label into its destination; returns
    the number of edges whose candidate beat the destination label at read
    time.  Cross-block writes race exactly like the hook tasks: a lost
    min-write implies the loser reported a change, so a global pass
    reporting zero changes everywhere performed no writes and certifies
    the fixpoint.
    """
    t0 = time.perf_counter()
    if v_hi <= v_lo:
        _record_stats(stats, t0)
        return 0
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    e_lo = int(indptr[v_lo])
    e_hi = int(indptr[v_hi])
    if e_hi <= e_lo:
        _record_stats(stats, t0)
        return 0
    deg = np.diff(indptr[v_lo : v_hi + 1])
    src = np.repeat(np.arange(v_lo, v_hi, dtype=VERTEX_DTYPE), deg)
    dst = indices[e_lo:e_hi]
    cand = pi[src]
    won = cand < pi[dst]
    if not won.any():
        _record_stats(stats, t0, items=e_hi - e_lo)
        return 0
    np.minimum.at(pi, dst[won], cand[won])
    changed = int(won.sum())
    _record_stats(stats, t0, items=e_hi - e_lo, aux=changed)
    return changed


def _task_frontier_expand(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    frontier_spec: SegSpec,
    lo: int,
    hi: int,
    stats=None,
) -> np.ndarray:
    """Push labels from one slice of the shared frontier buffer.

    Scatter-min of each frontier vertex's label onto its neighbours;
    returns the (sorted, unique) vertices whose label this slice lowered —
    the slice's share of the next frontier.
    """
    t0 = time.perf_counter()
    empty = np.empty(0, dtype=VERTEX_DTYPE)
    if hi <= lo:
        _record_stats(stats, t0)
        return empty
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    frontier = _attach_view(frontier_spec)[lo:hi]
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        _record_stats(stats, t0)
        return empty
    offsets = np.repeat(starts, counts) + segment_ranges(counts)
    dst = indices[offsets]
    cand = np.repeat(pi[frontier], counts)
    won = cand < pi[dst]
    if not won.any():
        _record_stats(stats, t0, items=total)
        return empty
    np.minimum.at(pi, dst[won], cand[won])
    changed = np.unique(dst[won]).astype(VERTEX_DTYPE)
    _record_stats(stats, t0, items=total, aux=int(changed.shape[0]))
    return changed


def _task_bottom_up(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    mask_spec: SegSpec,
    v_lo: int,
    v_hi: int,
    label: int,
    sentinel: int,
    stats=None,
) -> tuple[np.ndarray, int, int]:
    """Bottom-up BFS step over one block (see :func:`bottom_up_block`)."""
    t0 = time.perf_counter()
    if v_hi <= v_lo:
        _record_stats(stats, t0)
        return np.empty(0, dtype=VERTEX_DTYPE), 0, 0
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    mask = _attach_view(mask_spec)
    found, modeled, gathered = bottom_up_block(
        pi, indptr, indices, mask, v_lo, v_hi, label, sentinel
    )
    _record_stats(stats, t0, items=gathered, aux=int(found.shape[0]))
    return found, modeled, gathered


def _task_check_fix(
    pi_spec: SegSpec,
    indptr_spec: SegSpec,
    indices_spec: SegSpec,
    v_lo: int,
    v_hi: int,
    stats=None,
) -> bool:
    """Settle sweep over one block: re-link any edge whose endpoints ended
    in different trees.

    Run after a global compress barrier, so ``pi[u] != pi[v]`` genuinely
    means "not yet merged" (a lost scatter-min update, or a skipped slot
    whose sampled twin lost its update).  Returns True when the block had
    anything to fix, driving the backend's settle loop to a fixpoint.
    """
    t0 = time.perf_counter()
    if v_hi <= v_lo:
        _record_stats(stats, t0)
        return False
    pi = _attach_view(pi_spec)
    indptr = _attach_view(indptr_spec)
    indices = _attach_view(indices_spec)
    e_lo = int(indptr[v_lo])
    e_hi = int(indptr[v_hi])
    if e_hi <= e_lo:
        _record_stats(stats, t0)
        return False
    deg = np.diff(indptr[v_lo : v_hi + 1])
    src = np.repeat(np.arange(v_lo, v_hi, dtype=VERTEX_DTYPE), deg)
    dst = indices[e_lo:e_hi]
    bad = pi[src] != pi[dst]
    if not bad.any():
        _record_stats(stats, t0, items=e_hi - e_lo)
        return False
    link_batch(pi, src[bad], dst[bad])
    _record_stats(stats, t0, items=e_hi - e_lo, aux=int(bad.sum()))
    return True
