"""Pluggable execution backends for the connectivity engine.

The paper's pipelines are built from a small set of primitives — link an
edge batch, compress the parent array, probe π for the giant component,
hook-and-shortcut — that admit two execution substrates:

- :class:`VectorizedBackend` — NumPy batch kernels
  (:func:`~repro.core.link.link_batch`,
  :func:`~repro.core.compress.compress_all`); the wall-clock performance
  implementation;
- :class:`SimulatedBackend` — generator kernels on a
  :class:`~repro.parallel.machine.SimulatedMachine`, with a preemption
  point before every shared access; the instrumented concurrent-semantics
  implementation that produces work/span statistics and memory traces;
- :class:`ProcessParallelBackend` — real OS processes over a parent array
  in ``multiprocessing.shared_memory``, edges partitioned into contiguous
  CSR edge blocks (:mod:`repro.engine.partition`); the multi-core
  wall-clock implementation.

Each pipeline in :mod:`repro.engine.pipelines` is written *once* against
:class:`ExecutionBackend`; choosing the substrate is a constructor
argument, not a separate code path.  Backend methods wrap their work in
the bound :class:`~repro.engine.instrumentation.Instrumentation` timers,
so profiled runs get a per-phase wall-time breakdown on any substrate.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Generator

import numpy as np

from repro.constants import (
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    LABEL_DTYPE_POLICIES,
    NARROW_LABEL_LIMIT,
    NARROW_VERTEX_DTYPE,
    VERTEX_DTYPE,
)
from repro.core.compress import compress_kernel
from repro.core.link import link_batch, link_kernel
from repro.core.sampling import approximate_largest_label
from repro.distributed import partition as _dpart
from repro.distributed.comm import SimulatedComm
from repro.engine import partition as _part
from repro.engine.bufferpool import BufferPool
from repro.engine.instrumentation import Instrumentation
from repro.engine.partition import (
    SharedVector,
    partition_csr_blocks,
    partition_ranges,
    preferred_start_method,
)
from repro.errors import ConfigurationError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.nputil import segment_ranges
from repro.obs.metrics import POW2_BUCKETS, RATIO_BUCKETS
from repro.parallel.machine import KernelContext, SimulatedMachine
from repro.parallel.metrics import RunStats

__all__ = [
    "ExecutionBackend",
    "HOOKING_MODES",
    "PARTITION_MODES",
    "VectorizedBackend",
    "SimulatedBackend",
    "ProcessParallelBackend",
    "DistributedBackend",
    "backend_kinds",
    "make_backend",
    "resolve_label_dtype",
]

#: hooking variants accepted by :meth:`ExecutionBackend.fused_hook_jump`
#: (and the ``fastsv`` finish's ``hooking=`` plan parameter).
HOOKING_MODES = ("plain", "stochastic", "aggressive")


def resolve_label_dtype(n: int, policy: str = "auto") -> np.dtype:
    """The parent-array dtype for an ``n``-vertex run under ``policy``.

    ``auto`` narrows to :data:`~repro.constants.NARROW_VERTEX_DTYPE`
    whenever every storable value fits — vertex ids up to ``n - 1`` *and*
    the BFS pipelines' out-of-range sentinel ``n`` — and falls back to
    :data:`~repro.constants.VERTEX_DTYPE` above
    :data:`~repro.constants.NARROW_LABEL_LIMIT` (the overflow guard).
    ``wide`` always selects ``VERTEX_DTYPE``.  Narrowed labels never
    escape the engine: ``engine.run`` widens results back to
    ``VERTEX_DTYPE``, so the visible labeling is bit-identical.
    """
    if policy not in LABEL_DTYPE_POLICIES:
        raise ConfigurationError(
            f"unknown label dtype policy {policy!r}; "
            f"available: {list(LABEL_DTYPE_POLICIES)}"
        )
    if policy == "auto" and n <= NARROW_LABEL_LIMIT:
        return np.dtype(NARROW_VERTEX_DTYPE)
    return np.dtype(VERTEX_DTYPE)


# --------------------------------------------------------------------- #
# vectorized edge-batch helpers
# --------------------------------------------------------------------- #


def round_edges(graph: CSRGraph, r: int) -> tuple[np.ndarray, np.ndarray]:
    """Edge batch of neighbour round ``r``: ``(v, N(v)[r])`` for every
    vertex with degree > r."""
    deg = np.asarray(graph.degree())
    verts = np.nonzero(deg > r)[0].astype(VERTEX_DTYPE)
    nbrs = graph.indices[graph.indptr[verts] + r]
    return verts, nbrs


def remaining_edges(
    graph: CSRGraph, verts: np.ndarray, start: int
) -> tuple[np.ndarray, np.ndarray]:
    """All edge slots ``start..deg(v)-1`` of the given vertices, flattened."""
    indptr, indices = graph.indptr, graph.indices
    counts = indptr[verts + 1] - indptr[verts] - start
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=VERTEX_DTYPE)
        return empty, empty
    src = np.repeat(verts, counts)
    offsets = np.repeat(indptr[verts] + start, counts) + segment_ranges(counts)
    return src, indices[offsets]


# --------------------------------------------------------------------- #
# simulated-machine kernels
# --------------------------------------------------------------------- #


def _init_kernel(
    ctx: KernelContext, v: int, pi: np.ndarray
) -> Generator[None, None, None]:
    """Initialisation phase: ``pi[v] <- v`` (one shared write per vertex)."""
    yield from ctx.write(pi, v, v)


def _link_pair(
    ctx: KernelContext, pi: np.ndarray, u: int, v: int
) -> Generator[None, None, None]:
    """Shared concurrent-link body (same loop as link_kernel)."""
    fake_src = (u,)
    fake_dst = (v,)
    yield from link_kernel(ctx, 0, pi, fake_src, fake_dst)


def _neighbor_link_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    r: int,
) -> Generator[None, None, None]:
    """Neighbour-round kernel: link ``(v, N(v)[r])`` when degree permits.

    Graph-structure reads are not preemption points — only π is shared
    mutable state; the CSR arrays are immutable.
    """
    lo = int(indptr[v])
    if lo + r >= int(indptr[v + 1]):
        return
    w = int(indices[lo + r])
    yield from _link_pair(ctx, pi, v, w)


def _probe_kernel(
    ctx: KernelContext,
    i: int,
    pi: np.ndarray,
    probes: np.ndarray,
    out: np.ndarray,
) -> Generator[None, None, None]:
    """Component-search phase: read π at one random probe position."""
    out[i] = yield from ctx.read(pi, int(probes[i]))


def _final_link_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    start: int,
    largest: int | None,
    counters: dict,
) -> Generator[None, None, None]:
    """Final phase kernel: skip check then link remaining neighbours."""
    if largest is not None:
        label = yield from ctx.read(pi, v)
        if label == largest:
            counters["skipped"] += max(
                int(indptr[v + 1]) - int(indptr[v]) - start, 0
            )
            return
    lo = int(indptr[v]) + start
    hi = int(indptr[v + 1])
    for e in range(lo, hi):
        counters["final"] += 1
        yield from _link_pair(ctx, pi, v, int(indices[e]))


def _hook_kernel(
    ctx: KernelContext,
    e: int,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    changed: dict,
) -> Generator[None, None, None]:
    """SV hook for one directed edge, concurrent semantics.

    The hook is the Fig. 1 line-8 assignment ``π(π(v)) <- π(u)`` guarded to
    roots and performed with CAS; losers simply retry next outer iteration,
    as in the original algorithm.
    """
    u = int(src[e])
    v = int(dst[e])
    cu = yield from ctx.read(pi, u)
    cv = yield from ctx.read(pi, v)
    if cu < cv:
        pcv = yield from ctx.read(pi, cv)
        if pcv == cv:
            ok = yield from ctx.cas(pi, cv, cv, cu)
            if ok:
                changed["flag"] = True


def _shortcut_kernel(
    ctx: KernelContext, v: int, pi: np.ndarray
) -> Generator[None, None, None]:
    """One single-step shortcut: ``pi[v] <- pi[pi[v]]`` (no fixpoint loop)."""
    parent = yield from ctx.read(pi, v)
    grand = yield from ctx.read(pi, parent)
    if grand != parent:
        yield from ctx.write(pi, v, grand)


def _fill_kernel(
    ctx: KernelContext, v: int, pi: np.ndarray, value: int
) -> Generator[None, None, None]:
    """Init phase for the BFS pipelines: ``pi[v] <- sentinel``."""
    yield from ctx.write(pi, v, int(value))


def _cas_min(
    ctx: KernelContext, pi: np.ndarray, v: int, cand: int
) -> Generator[None, None, bool]:
    """Atomic-min of ``cand`` into ``pi[v]`` via a CAS retry loop; True
    when this kernel's write landed."""
    while True:
        cur = yield from ctx.read(pi, v)
        if cand >= cur:
            return False
        ok = yield from ctx.cas(pi, v, cur, cand)
        if ok:
            return True


def _min_label_kernel(
    ctx: KernelContext,
    e: int,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    changed: dict,
) -> Generator[None, None, None]:
    """Label-propagation edge kernel: atomic-min of π(u) into π(v)."""
    u = int(src[e])
    v = int(dst[e])
    cand = yield from ctx.read(pi, u)
    won = yield from _cas_min(ctx, pi, v, cand)
    if won:
        changed["count"] += 1


def _frontier_push_kernel(
    ctx: KernelContext,
    u: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    changed: set,
) -> Generator[None, None, None]:
    """Push one frontier vertex's label onto all its neighbours."""
    cand = yield from ctx.read(pi, u)
    lo = int(indptr[u])
    hi = int(indptr[u + 1])
    for e in range(lo, hi):
        v = int(indices[e])
        won = yield from _cas_min(ctx, pi, v, cand)
        if won:
            changed.add(v)


def _bottom_up_kernel(
    ctx: KernelContext,
    v: int,
    pi: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    in_frontier: np.ndarray,
    label: int,
    counters: dict,
    found: list,
) -> Generator[None, None, None]:
    """Pull step for one unvisited vertex: scan neighbours, stop at the
    first frontier hit (the frontier mask is parent-owned and read-only
    for the duration of the step, so it is not a preemption point)."""
    lo = int(indptr[v])
    hi = int(indptr[v + 1])
    for e in range(lo, hi):
        counters["edges"] += 1
        if in_frontier[int(indices[e])]:
            yield from ctx.write(pi, v, int(label))
            found.append(int(v))
            return


# --------------------------------------------------------------------- #
# backend interface
# --------------------------------------------------------------------- #


class ExecutionBackend:
    """Primitive operations a connectivity pipeline is written against.

    Subclasses implement the primitives on a concrete substrate.  Methods
    that have a meaningful convergence statistic on the vectorized
    substrate (rounds of ``link_batch``, passes of ``compress_all``)
    return it; substrates without such a notion return ``None`` and the
    pipeline skips the bookkeeping.
    """

    #: registry-facing backend kind ("vectorized" / "simulated").
    kind = "abstract"

    def __init__(self, *, label_dtype: str = "auto") -> None:
        if label_dtype not in LABEL_DTYPE_POLICIES:
            raise ConfigurationError(
                f"unknown label dtype policy {label_dtype!r}; "
                f"available: {list(LABEL_DTYPE_POLICIES)}"
            )
        self.instr = Instrumentation(False)
        #: label-width policy (see :func:`resolve_label_dtype`).
        self.label_dtype = label_dtype
        #: reusable scratch buffers for the hot-path kernels; fresh
        #: allocations land in the ``bytes_allocated`` counter.
        self.pool = BufferPool(self._count_alloc)
        # Identity-cached flat edge arrays of the last graph seen by
        # propagate_pass (LP sweeps reuse one batch across all rounds).
        self._edge_graph: CSRGraph | None = None
        self._edge_arrays: tuple[np.ndarray, np.ndarray] | None = None

    def bind(self, instr: Instrumentation) -> None:
        """Attach the per-run instrumentation (done by ``engine.run``)."""
        self.instr = instr

    def _count_alloc(self, nbytes: int) -> None:
        """Buffer-pool allocation callback -> ``bytes_allocated`` counter."""
        self.instr.count("bytes_allocated", int(nbytes))

    def _label_dtype(self, n: int) -> np.dtype:
        """Resolve (and record) the parent-array dtype for an ``n``-vertex
        run: the ``label_dtype_bits`` gauge makes the narrowing decision
        visible in profiled runs."""
        dtype = resolve_label_dtype(n, self.label_dtype)
        if self.instr.metrics.enabled:
            self.instr.metrics.gauge("label_dtype_bits").set(
                dtype.itemsize * 8
            )
        return dtype

    def _edges(self, graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
        """The graph's flat ``(src, dst)`` directed-edge arrays, cached."""
        if self._edge_graph is not graph:
            self._edge_graph = graph
            self._edge_arrays = graph.edge_array()
        assert self._edge_arrays is not None
        return self._edge_arrays

    # -- primitives ------------------------------------------------------ #

    def init_labels(
        self, n: int, *, phase: str = "I", fill: int | None = None
    ) -> np.ndarray:
        """Fresh parent array of ``n`` vertices: self-pointing by default,
        or constant ``fill`` (the BFS pipelines' unvisited sentinel)."""
        raise NotImplementedError

    def link_edges(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> int | None:
        """Link every edge of the batch into π."""
        raise NotImplementedError

    def link_neighbor_round(
        self, pi: np.ndarray, graph: CSRGraph, r: int, *, phase: str
    ) -> int | None:
        """Link ``(v, N(v)[r])`` for every vertex with degree > r."""
        raise NotImplementedError

    def link_remaining(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        start: int,
        largest: int | None,
        *,
        phase: str,
    ) -> tuple[int, int, int | None]:
        """Afforest final phase: link slots ``start..`` of every vertex not
        in the ``largest`` component; returns (edges linked, edges skipped,
        link rounds or None)."""
        raise NotImplementedError

    def compress(self, pi: np.ndarray, *, phase: str) -> int | None:
        """Compress every tree in π to depth one."""
        raise NotImplementedError

    def shortcut_step(self, pi: np.ndarray, *, phase: str) -> None:
        """A single ``pi <- pi[pi]`` shortcut step (no fixpoint loop)."""
        raise NotImplementedError

    def find_largest(
        self,
        pi: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        *,
        phase: str,
    ) -> int:
        """Probable giant-component label from ``sample_size`` π probes."""
        raise NotImplementedError

    def hook_pass(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> bool:
        """One Shiloach–Vishkin hook pass; True if any parent changed."""
        raise NotImplementedError

    # -- frontier / label primitives ------------------------------------- #

    def propagate_pass(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """One synchronous min-label sweep over every directed edge.

        Returns the number of edges whose source label beat the
        destination label — zero certifies the fixpoint (a pass reporting
        no change performed no writes on any substrate).
        """
        raise NotImplementedError

    def fused_hook_jump(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        *,
        hooking: str = "plain",
        phase: str,
    ) -> int:
        """One fused FastSV round: min-label hook sweep + pointer jump.

        Returns the hook sweep's change count.  When the sweep reports no
        change the trailing jump is *skipped* (counted as
        ``rounds_skipped``): a zero-change sweep performs no writes on any
        substrate, and a propagation fixpoint over a symmetric edge set
        means every component carries a constant label — necessarily its
        minimum vertex id — so π is already flat and ``π ← π[π]`` would be
        the identity.  Each fused round bumps ``fused_passes``.

        ``hooking`` selects the FastSV hooking variant: ``plain`` is the
        classic source→destination min-sweep; ``stochastic`` additionally
        hooks each edge's *parent-of-destination* to the source's
        grandparent label; ``aggressive`` hooks the destination itself to
        the grandparent label.  All variants write only monotone minima of
        component-internal labels, so they converge to the same component
        minima as ``plain``.  The base implementation composes the two
        timed primitives and runs the ``plain`` sweep regardless of the
        requested variant (the extra hooks are a vectorized-substrate
        acceleration, not a semantic change); the vectorized backend
        overrides this with a single-kernel fused implementation.
        """
        changed = self.propagate_pass(pi, graph, phase=phase)
        if changed:
            self.shortcut_step(pi, phase=phase)
        else:
            self.instr.count("rounds_skipped")
        self.instr.count("fused_passes")
        return changed

    def frontier_expand(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        frontier: np.ndarray,
        *,
        phase: str,
    ) -> np.ndarray:
        """Push labels from the active frontier onto its neighbours.

        Returns the next frontier: the sorted unique vertices whose label
        the push lowered.
        """
        raise NotImplementedError

    def bottom_up_pass(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        in_frontier: np.ndarray,
        label: int,
        sentinel: int,
        *,
        phase: str,
    ) -> tuple[np.ndarray, int, int]:
        """Pull step: every vertex still carrying ``sentinel`` scans its
        neighbours and adopts ``label`` when one is in the frontier
        (boolean/uint8 ``in_frontier`` mask over all vertices).

        Returns ``(next frontier, modeled edges, gathered edges)`` —
        *modeled* counts the early-exit scan a real machine performs
        (stop at the first frontier hit), *gathered* whatever the
        substrate actually touched.
        """
        raise NotImplementedError

    def propagate_settle(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """Repair sweeps after an asynchronous/data-driven propagation.

        Substrates whose min-writes are atomic need none (the default:
        zero passes).  The process backend overrides this with full
        synchronous sweeps until a pass reports no change, repairing
        updates lost to non-atomic scatter-min races.
        """
        return 0

    def record_frontier(self, size: int, *, phase: str) -> None:
        """Observe an active-frontier size into the ``frontier_size``
        histogram (no-op while metrics are disabled)."""
        if self.instr.metrics.enabled:
            self.instr.metrics.histogram(
                "frontier_size", POW2_BUCKETS
            ).observe(size)

    def run_stats(self) -> RunStats | None:
        """Work/span statistics of the substrate, when it collects any."""
        return None

    # -- lifecycle ------------------------------------------------------- #

    def detach_labels(self, pi: np.ndarray) -> np.ndarray:
        """Turn a π produced by this backend into an independently owned
        array.  In-process substrates return it unchanged; shared-memory
        substrates copy it out so the segment can be reclaimed."""
        return pi

    def close(self) -> None:
        """Release substrate resources (worker pools, shared segments).

        A no-op for in-process backends; safe to call repeatedly.
        """


class VectorizedBackend(ExecutionBackend):
    """NumPy batch-kernel substrate: the wall-clock performance path.

    Links resolve conflicts by scatter-min (the batch analogue of "the
    CAS writing the smallest label wins"), compression is pointer
    doubling, and the giant-component search reads π directly.
    """

    kind = "vectorized"

    def init_labels(
        self, n: int, *, phase: str = "I", fill: int | None = None
    ) -> np.ndarray:
        """Identity (or constant-``fill``) parent array; not a timed
        phase — a single ``arange``/``full``."""
        dtype = self._label_dtype(n)
        if fill is not None:
            return np.full(n, fill, dtype=dtype)
        return np.arange(n, dtype=dtype)

    def link_edges(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> int:
        """Batch link; returns the number of link rounds executed."""
        with self.instr.timer(phase):
            return link_batch(pi, src, dst)

    def link_neighbor_round(
        self, pi: np.ndarray, graph: CSRGraph, r: int, *, phase: str
    ) -> int:
        """Gather round-``r`` neighbour slots, then batch-link them."""
        src, dst = round_edges(graph, r)
        with self.instr.timer(phase):
            return link_batch(pi, src, dst)

    def link_remaining(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        start: int,
        largest: int | None,
        *,
        phase: str,
    ) -> tuple[int, int, int]:
        """Gather the non-skipped remaining slots and batch-link them.

        Skipped work is computed analytically from the degrees of the
        giant component's vertices — those slots are never materialised.
        """
        if largest is not None:
            verts = np.nonzero(pi != largest)[0].astype(VERTEX_DTYPE)
            deg = np.asarray(graph.degree())
            skipped_verts = np.nonzero(pi == largest)[0]
            skipped = int(np.maximum(deg[skipped_verts] - start, 0).sum())
        else:
            verts = np.arange(pi.shape[0], dtype=VERTEX_DTYPE)
            skipped = 0
        with self.instr.timer(f"{phase}-gather"):
            src, dst = remaining_edges(graph, verts, start)
        with self.instr.timer(phase):
            rounds = link_batch(pi, src, dst)
        return int(src.shape[0]), skipped, rounds

    def _pointer_jump(self, pi: np.ndarray) -> np.ndarray:
        """One ``π ← π[π]`` jump through the pooled scratch buffer.

        Returns the scratch view still holding the post-jump values (so
        ``compress`` can fixpoint-test without another gather).
        """
        nxt = self.pool.get("jump", int(pi.shape[0]), pi.dtype)
        np.take(pi, pi, out=nxt)
        pi[:] = nxt
        return nxt

    def compress(self, pi: np.ndarray, *, phase: str) -> int:
        """Pointer-doubling compression; returns the pass count.

        Identical to :func:`~repro.core.compress.compress_all`, but the
        per-pass ``π[π]`` gather goes through the pooled scratch buffer
        instead of allocating ``O(n)`` fresh memory every pass.
        """
        with self.instr.timer(phase):
            passes = 0
            cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
            nxt = self.pool.get("jump", int(pi.shape[0]), pi.dtype)
            while True:
                np.take(pi, pi, out=nxt)
                if np.array_equal(nxt, pi):
                    return passes
                pi[:] = nxt
                passes += 1
                if passes > cap:
                    raise ConvergenceError(
                        f"compress_all exceeded {cap} passes — cycle in pi?"
                    )

    def shortcut_step(self, pi: np.ndarray, *, phase: str) -> None:
        """The original SV single shortcut: ``pi <- pi[pi]`` once."""
        with self.instr.timer(phase):
            self._pointer_jump(pi)

    def find_largest(
        self,
        pi: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        *,
        phase: str,
    ) -> int:
        """Mode of ``sample_size`` direct probes of π."""
        with self.instr.timer(phase):
            return approximate_largest_label(pi, sample_size, rng=rng)

    def hook_pass(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> bool:
        """One vectorized hook pass; True if any parent changed.

        Conflicting hooks onto the same root resolve by scatter-min — the
        batch analogue of "one competing edge's write wins per iteration"
        (Fig. 1 commentary), biased to the smallest label exactly like the
        CAS variant.
        """
        pool = self.pool
        with self.instr.timer(phase):
            m = int(src.shape[0])
            cu = pool.take(pi, src, "hook-cu")
            cv = pool.take(pi, dst, "hook-cv")
            pcv = pool.take(pi, cv, "hook-pcv")
            mask = pool.get("hook-mask", m, np.bool_)
            np.less(cu, cv, out=mask)
            root = pool.get("hook-root", m, np.bool_)
            np.equal(pcv, cv, out=root)
            mask &= root
            if not mask.any():
                return False
            if self.instr.metrics.enabled:
                # Label distance each winning hook covers: the Table II
                # convergence signal (large early, shrinking per pass).
                self.instr.metrics.histogram(
                    "hook_distance", POW2_BUCKETS
                ).observe_many(cv[mask] - cu[mask])
            np.minimum.at(pi, cv[mask], cu[mask])
            return True

    def propagate_pass(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """One scatter-min sweep over the flat edge arrays.

        The masked form writes only winning candidates; since labels only
        decrease within a pass, a candidate that did not beat the
        pre-pass destination can never win inside the same ``at`` call,
        so the final π is identical to the unmasked sweep.  All edge-sized
        gathers go through the buffer pool, so repeated sweeps allocate
        nothing.
        """
        src, dst = self._edges(graph)
        with self.instr.timer(phase):
            return self._min_sweep(pi, src, dst)

    def _min_sweep(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray
    ) -> int:
        """Pooled masked scatter-min of ``pi[src]`` into ``pi[dst]``;
        returns the win count (no timer: callers wrap it)."""
        pool = self.pool
        m = int(src.shape[0])
        cand = pool.take(pi, src, "prop-cand")
        down = pool.take(pi, dst, "prop-down")
        won = pool.get("prop-won", m, np.bool_)
        np.less(cand, down, out=won)
        changed = int(np.count_nonzero(won))
        if changed:
            np.minimum.at(pi, dst[won], cand[won])
        return changed

    def fused_hook_jump(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        *,
        hooking: str = "plain",
        phase: str,
    ) -> int:
        """Single-kernel fused FastSV round (see the base-class contract).

        One timed span covers the hook sweep, the optional
        stochastic/aggressive grandparent hooks, and the pointer jump; the
        jump is skipped (``rounds_skipped``) when nothing changed, and
        every edge- or vertex-sized intermediate lives in the buffer pool.

        The extra variants gather each source's *grandparent* label
        ``π[π[src]]`` after the plain sweep and scatter-min it into the
        destination's parent (``stochastic``) or the destination itself
        (``aggressive``).  Both targets only ever receive smaller labels
        from their own component (``π[π[u]] ≤ π[u] ≤ u`` and labels are
        component-internal), so the converged fixpoint — every component
        flat at its minimum id — is unchanged; the variants only shorten
        the path there on high-diameter graphs.
        """
        src, dst = self._edges(graph)
        pool = self.pool
        with self.instr.timer(phase):
            changed = self._min_sweep(pi, src, dst)
            if changed and hooking != "plain":
                # Grandparent candidates, read *after* the plain sweep so
                # freshly lowered parents propagate within the round.
                parent = pool.take(pi, src, "fuse-parent")
                grand = pool.take(pi, parent, "fuse-grand")
                if hooking == "aggressive":
                    changed += self._scatter_min(pi, dst, grand)
                else:  # stochastic: hook the destination's parent
                    target = pool.take(pi, dst, "fuse-target")
                    changed += self._scatter_min(pi, target, grand)
            if changed:
                self._pointer_jump(pi)
            else:
                self.instr.count("rounds_skipped")
            self.instr.count("fused_passes")
            return changed

    def _scatter_min(
        self, pi: np.ndarray, target: np.ndarray, cand: np.ndarray
    ) -> int:
        """Masked ``pi[target] min= cand`` via pooled buffers; win count."""
        pool = self.pool
        cur = pool.take(pi, target, "fuse-cur")
        won = pool.get("fuse-won", int(target.shape[0]), np.bool_)
        np.less(cand, cur, out=won)
        wins = int(np.count_nonzero(won))
        if wins:
            np.minimum.at(pi, target[won], cand[won])
        return wins

    def frontier_expand(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        frontier: np.ndarray,
        *,
        phase: str,
    ) -> np.ndarray:
        """Gather the frontier's neighbour slots and scatter-min onto them."""
        with self.instr.timer(phase):
            empty = np.empty(0, dtype=VERTEX_DTYPE)
            if frontier.shape[0] == 0:
                return empty
            indptr, indices = graph.indptr, graph.indices
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return empty
            offsets = np.repeat(starts, counts) + segment_ranges(counts)
            dst = indices[offsets]
            cand = np.repeat(pi[frontier], counts)
            won = cand < pi[dst]
            if not won.any():
                return empty
            np.minimum.at(pi, dst[won], cand[won])
            return np.unique(dst[won]).astype(VERTEX_DTYPE)

    def bottom_up_pass(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        in_frontier: np.ndarray,
        label: int,
        sentinel: int,
        *,
        phase: str,
    ) -> tuple[np.ndarray, int, int]:
        """Segmented first-hit pull over all unvisited vertices."""
        with self.instr.timer(phase):
            return _part.bottom_up_block(
                pi,
                graph.indptr,
                graph.indices,
                in_frontier,
                0,
                int(pi.shape[0]),
                label,
                sentinel,
            )


class SimulatedBackend(ExecutionBackend):
    """Simulated-machine substrate: concurrent semantics, instrumented.

    Every primitive is a ``parallel_for`` of generator kernels on the
    wrapped :class:`~repro.parallel.machine.SimulatedMachine`; shared
    accesses are preemption points, CAS conflicts are real, and the
    machine accumulates per-phase work/span statistics (``machine.stats``)
    plus an optional memory trace.
    """

    kind = "simulated"

    def __init__(
        self, machine: SimulatedMachine, *, label_dtype: str = "auto"
    ) -> None:
        super().__init__(label_dtype=label_dtype)
        self.machine = machine

    def init_labels(
        self, n: int, *, phase: str = "I", fill: int | None = None
    ) -> np.ndarray:
        """Init phase ``I``: every vertex writes its own π slot (or the
        constant ``fill`` sentinel)."""
        pi = np.empty(n, dtype=self._label_dtype(n))
        with self.instr.timer(phase):
            if fill is not None:
                self.machine.parallel_for(
                    n, _fill_kernel, pi, int(fill), phase=phase
                )
            else:
                self.machine.parallel_for(n, _init_kernel, pi, phase=phase)
        return pi

    def link_edges(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> None:
        """Concurrent link of the batch, one kernel per edge."""
        with self.instr.timer(phase):
            self.machine.parallel_for(
                int(src.shape[0]), link_kernel, pi, src, dst, phase=phase
            )
        return None

    def link_neighbor_round(
        self, pi: np.ndarray, graph: CSRGraph, r: int, *, phase: str
    ) -> None:
        """Concurrent neighbour round, one kernel per vertex."""
        with self.instr.timer(phase):
            self.machine.parallel_for(
                pi.shape[0],
                _neighbor_link_kernel,
                pi,
                graph.indptr,
                graph.indices,
                r,
                phase=phase,
            )
        return None

    def link_remaining(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        start: int,
        largest: int | None,
        *,
        phase: str,
    ) -> tuple[int, int, None]:
        """Concurrent final phase with the per-vertex skip check."""
        counters = {"skipped": 0, "final": 0}
        with self.instr.timer(phase):
            self.machine.parallel_for(
                pi.shape[0],
                _final_link_kernel,
                pi,
                graph.indptr,
                graph.indices,
                start,
                largest,
                counters,
                phase=phase,
            )
        return counters["final"], counters["skipped"], None

    def compress(self, pi: np.ndarray, *, phase: str) -> None:
        """Concurrent per-vertex compression to the root."""
        with self.instr.timer(phase):
            self.machine.parallel_for(
                pi.shape[0], compress_kernel, pi, phase=phase
            )
        return None

    def shortcut_step(self, pi: np.ndarray, *, phase: str) -> None:
        """Concurrent single-step shortcut of every vertex."""
        with self.instr.timer(phase):
            self.machine.parallel_for(
                pi.shape[0], _shortcut_kernel, pi, phase=phase
            )

    def find_largest(
        self,
        pi: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        *,
        phase: str,
    ) -> int:
        """Probe phase ``F``: concurrent reads of π at random positions."""
        n = pi.shape[0]
        probes = rng.integers(0, n, size=min(sample_size, max(n, 1)))
        out = np.empty(probes.shape[0], dtype=VERTEX_DTYPE)
        with self.instr.timer(phase):
            self.machine.parallel_for(
                probes.shape[0], _probe_kernel, pi, probes, out, phase=phase
            )
        uniq, counts = np.unique(out, return_counts=True)
        return int(uniq[np.argmax(counts)])

    def hook_pass(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> bool:
        """Concurrent CAS hook pass over every directed edge."""
        changed = {"flag": False}
        with self.instr.timer(phase):
            self.machine.parallel_for(
                int(src.shape[0]), _hook_kernel, pi, src, dst, changed,
                phase=phase,
            )
        return changed["flag"]

    def propagate_pass(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """Concurrent min-label sweep, one CAS-min kernel per edge.

        The CAS retry loop makes each edge's min-write atomic, so no
        update is ever lost — the sweep converges in the same number of
        certifying passes as the synchronous substrates.
        """
        src, dst = self._edges(graph)
        changed = {"count": 0}
        with self.instr.timer(phase):
            self.machine.parallel_for(
                int(src.shape[0]),
                _min_label_kernel,
                pi,
                src,
                dst,
                changed,
                phase=phase,
            )
        return changed["count"]

    def frontier_expand(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        frontier: np.ndarray,
        *,
        phase: str,
    ) -> np.ndarray:
        """Concurrent push, one kernel per frontier vertex."""
        changed: set = set()
        with self.instr.timer(phase):
            if frontier.shape[0]:
                self.machine.parallel_for(
                    frontier,
                    _frontier_push_kernel,
                    pi,
                    graph.indptr,
                    graph.indices,
                    changed,
                    phase=phase,
                )
        out = np.fromiter(sorted(changed), dtype=VERTEX_DTYPE, count=len(changed))
        return out

    def bottom_up_pass(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        in_frontier: np.ndarray,
        label: int,
        sentinel: int,
        *,
        phase: str,
    ) -> tuple[np.ndarray, int, int]:
        """Concurrent pull, one early-exit scan kernel per unvisited
        vertex.  The kernel's early exit is real, so modeled == gathered
        on this substrate."""
        unvisited = np.nonzero(pi == sentinel)[0].astype(VERTEX_DTYPE)
        counters = {"edges": 0}
        found: list = []
        with self.instr.timer(phase):
            if unvisited.shape[0]:
                self.machine.parallel_for(
                    unvisited,
                    _bottom_up_kernel,
                    pi,
                    graph.indptr,
                    graph.indices,
                    in_frontier,
                    int(label),
                    counters,
                    found,
                    phase=phase,
                )
        next_frontier = np.asarray(sorted(found), dtype=VERTEX_DTYPE)
        return next_frontier, counters["edges"], counters["edges"]

    def run_stats(self) -> RunStats:
        """The machine's accumulated work/span statistics."""
        return self.machine.stats


class ProcessParallelBackend(ExecutionBackend):
    """Real multi-core substrate: OS processes over shared-memory π.

    The parent array lives in a ``multiprocessing.shared_memory`` segment;
    the CSR arrays (and flat edge batches) are mirrored into further
    segments once per graph; and a persistent worker pool executes each
    pipeline phase as one task per contiguous CSR edge block
    (:func:`~repro.engine.partition.partition_csr_blocks`).  Hooks are
    lock-free scatter-min writes — monotone toward smaller labels, so a
    racing write can lose a merge but never corrupt the forest — and every
    phase ends at a global barrier (the pool ``starmap`` return).  After
    the final link phase a *settle loop* alternates parallel compression
    with a full-edge mismatch sweep until no edge's endpoints sit in
    different trees, repairing any lost updates (usually zero passes).

    When a run is traced, every barrier also collects *per-task worker
    telemetry*: each block task records its start/end timestamps, pid,
    and work counters into a shared-memory stats segment, and the parent
    merges the rows into the trace as per-worker spans (plus a
    ``block_imbalance`` histogram), so ``compare --profile`` and the
    Chrome export can show worker skew.

    Labels returned through :func:`repro.engine.run` are detached (copied
    out of shared memory) automatically.  When driving pipelines directly,
    call :meth:`close` (or use the backend as a context manager) once the
    labels have been copied; segments whose views escaped are unlinked but
    stay mapped until the last view dies.
    """

    kind = "process"

    def __init__(
        self,
        workers: int | None = None,
        *,
        start_method: str | None = None,
        label_dtype: str = "auto",
    ) -> None:
        super().__init__(label_dtype=label_dtype)
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers or max(1, min(os.cpu_count() or 1, 8))
        self._start_method = start_method or preferred_start_method()
        self._pool = None
        self._pi: SharedVector | None = None
        # Cached per-graph shared mirrors; the strong graph reference keeps
        # the id() key stable for the cache's lifetime.
        self._graph: CSRGraph | None = None
        self._graph_segs: tuple[SharedVector, SharedVector] | None = None
        self._blocks: list[_part.EdgeBlock] = []
        # Reusable flat edge buffers (SV batches, random-sampling rounds).
        self._src_buf: SharedVector | None = None
        self._dst_buf: SharedVector | None = None
        # Reusable frontier buffer + uint8 frontier mask (BFS pipelines).
        self._frontier_buf: SharedVector | None = None
        self._mask_buf: SharedVector | None = None
        self._src_key: np.ndarray | None = None
        self._dst_key: np.ndarray | None = None
        # Per-task telemetry rows (float64) + pid -> track-name mapping,
        # only materialised while a traced run is active.
        self._stats: SharedVector | None = None
        self._worker_tracks: dict[int, str] = {}

    # -- pool / segment management --------------------------------------- #

    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self._start_method)
            self._pool = ctx.Pool(processes=self.workers)
        return self._pool

    def _starmap(self, fn, tasks: list[tuple]) -> list:
        return self._ensure_pool().starmap(fn, tasks)

    # -- per-worker telemetry --------------------------------------------- #

    def _ensure_stats(self, rows: int) -> SharedVector:
        need = rows * _part.STATS_FIELDS
        if self._stats is None or self._stats.length < need:
            self._release(self._stats)
            self._stats = SharedVector(max(need, 64), dtype=np.float64)
        return self._stats

    def _barrier(self, fn, tasks: list[tuple], phase: str) -> list:
        """One ``starmap`` barrier, with per-task telemetry when tracing.

        Untraced runs dispatch the tasks untouched (workers see
        ``stats=None``).  Traced runs append a ``(stats spec, slot)``
        handle to every task; workers record start/end timestamps, pid,
        and work counters into their row of the shared stats segment, and
        after the barrier the rows are merged into the trace as worker-
        track spans nested under the open phase span, plus a
        ``block_imbalance`` histogram sample (max/mean task duration).

        With a live heartbeat attached the dispatch goes asynchronous:
        workers stamp their stats rows as each block finishes, so the
        parent polls the shared segment *during* the barrier and emits a
        ``block`` heartbeat event per completed task while siblings are
        still running — post-barrier merging into the trace is unchanged.
        """
        tracer = self.instr.tracer
        heartbeat = self.instr.heartbeat
        if not tracer.enabled and heartbeat is None:
            return self._starmap(fn, tasks)
        stats = self._ensure_stats(len(tasks))
        stats.array[: len(tasks) * _part.STATS_FIELDS] = 0.0
        spec = stats.spec
        tagged = [(*t, (spec, i)) for i, t in enumerate(tasks)]
        if heartbeat is not None:
            out = self._stream_barrier(
                fn, tagged, stats.array, len(tasks), phase, heartbeat
            )
        else:
            out = self._starmap(fn, tagged)
        if tracer.enabled:
            self._merge_worker_stats(phase, stats.array, len(tasks))
        return out

    def _stream_barrier(
        self,
        fn,
        tagged: list[tuple],
        rows: np.ndarray,
        num_tasks: int,
        phase: str,
        heartbeat,
    ) -> list:
        """Async barrier that surfaces block completions as they land.

        Worker tasks stamp their stats row (``t1 > 0``) as their last
        action, so a completed row in the shared segment is safe to read
        before the pool's own result arrives; every task is reported
        exactly once (stragglers in the final sweep after the join).
        """
        async_result = self._ensure_pool().starmap_async(fn, tagged)
        fields = _part.STATS_FIELDS
        reported = [False] * num_tasks

        def drain() -> None:
            for i in range(num_tasks):
                if reported[i]:
                    continue
                t0, t1, _pid, items, _aux = rows[
                    i * fields : (i + 1) * fields
                ]
                if t1 > 0.0:
                    reported[i] = True
                    heartbeat.block(
                        phase,
                        block=i,
                        seconds=float(t1 - t0),
                        items=int(items),
                    )

        while not async_result.ready():
            drain()
            async_result.wait(0.002)
        out = async_result.get()
        drain()
        return out

    def _merge_worker_stats(
        self, phase: str, rows: np.ndarray, num_tasks: int
    ) -> None:
        tracer = self.instr.tracer
        fields = _part.STATS_FIELDS
        durations: list[float] = []
        for i in range(num_tasks):
            t0, t1, pid, items, aux = rows[i * fields : (i + 1) * fields]
            if t1 <= 0.0:  # task body never ran (defensive; starmap raises)
                continue
            track = self._worker_tracks.setdefault(
                int(pid), f"worker-{len(self._worker_tracks)}"
            )
            tracer.add_span(
                phase,
                float(t0),
                float(t1),
                track=track,
                block=i,
                items=int(items),
                aux=int(aux),
            )
            durations.append(float(t1) - float(t0))
        if len(durations) >= 2:
            mean = sum(durations) / len(durations)
            if mean > 0:
                self.instr.metrics.histogram(
                    "block_imbalance", RATIO_BUCKETS
                ).observe(max(durations) / mean)

    def _release(self, vec: SharedVector | None) -> None:
        if vec is not None:
            _part._evict_attached(vec.shm.name)
            vec.release()

    def _graph_specs(self, graph: CSRGraph):
        """Shared mirrors of the graph's CSR arrays (+ its edge blocks)."""
        if self._graph is not graph:
            if self._graph_segs is not None:
                for seg in self._graph_segs:
                    self._release(seg)
            ip = SharedVector(graph.indptr.shape[0])
            ip.array[:] = graph.indptr
            ix = SharedVector(max(graph.indices.shape[0], 1))
            ix.array[: graph.indices.shape[0]] = graph.indices
            self._graph = graph
            self._graph_segs = (ip, ix)
            self._blocks = partition_csr_blocks(graph.indptr, self.workers)
        ip, ix = self._graph_segs  # type: ignore[misc]
        return ip.spec, ix.spec, self._blocks

    def _grow_buffer(
        self, buf: SharedVector | None, length: int
    ) -> SharedVector:
        if buf is None or buf.length < length:
            self._release(buf)
            buf = SharedVector(max(length, 1024))
            # Segment creation is a real allocation: report it like the
            # BufferPool does, so ``bytes_allocated`` covers the shared
            # edge/frontier scratch too (a warm backend reports zero).
            self._count_alloc(buf.array.nbytes)
        return buf

    def _load_edges(self, src: np.ndarray, dst: np.ndarray):
        """Copy a flat edge batch into the shared buffers (skipped when the
        exact same arrays were loaded last — SV reuses one batch across all
        its iterations)."""
        if src is self._src_key and dst is self._dst_key:
            return self._src_buf.spec, self._dst_buf.spec  # type: ignore[union-attr]
        m = int(src.shape[0])
        self._src_buf = self._grow_buffer(self._src_buf, m)
        self._dst_buf = self._grow_buffer(self._dst_buf, m)
        self._src_buf.array[:m] = src
        self._dst_buf.array[:m] = dst
        self._src_key = src
        self._dst_key = dst
        return self._src_buf.spec, self._dst_buf.spec

    # -- primitives ------------------------------------------------------ #

    def init_labels(
        self, n: int, *, phase: str = "I", fill: int | None = None
    ) -> np.ndarray:
        """Shared-memory identity (or constant-``fill``) array.

        The segment is created at the resolved label width — workers
        attach through the spec's dtype string, so a narrowed π narrows
        the whole cross-process hot path.  Segment creation is a real
        allocation, so it lands in ``bytes_allocated``; a warm backend
        whose previous run had the same ``n`` and width reinitialises the
        existing segment in place instead (``engine.run`` copies labels
        out before returning, so reuse never aliases a caller's result).
        """
        dtype = self._label_dtype(n)
        if (
            self._pi is None
            or self._pi.length != n
            or self._pi.array.dtype != dtype
        ):
            self._release(self._pi)
            self._pi = SharedVector(n, dtype=dtype)
            self._count_alloc(self._pi.array.nbytes)
        pi = self._pi.array
        if fill is not None:
            pi[:] = fill
        else:
            pi[:] = np.arange(n, dtype=dtype)
        return pi

    def _pi_spec(self, pi: np.ndarray):
        if self._pi is None or pi is not self._pi.array:
            raise ConfigurationError(
                "ProcessParallelBackend can only operate on the parent "
                "array returned by its own init_labels()"
            )
        return self._pi.spec

    def link_edges(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> None:
        """Parallel link of a flat edge batch, one task per range."""
        pi_spec = self._pi_spec(pi)
        src_spec, dst_spec = self._load_edges(src, dst)
        ranges = partition_ranges(int(src.shape[0]), self.workers)
        with self.instr.timer(phase):
            self._barrier(
                _part._task_link_edges,
                [
                    (pi_spec, src_spec, dst_spec, lo, hi)
                    for lo, hi in ranges
                ],
                phase,
            )
        return None

    def link_neighbor_round(
        self, pi: np.ndarray, graph: CSRGraph, r: int, *, phase: str
    ) -> None:
        """Parallel neighbour round, one task per CSR edge block."""
        pi_spec = self._pi_spec(pi)
        ip_spec, ix_spec, blocks = self._graph_specs(graph)
        with self.instr.timer(phase):
            self._barrier(
                _part._task_link_round,
                [
                    (pi_spec, ip_spec, ix_spec, b.v_lo, b.v_hi, r)
                    for b in blocks
                ],
                phase,
            )
        return None

    def link_remaining(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        start: int,
        largest: int | None,
        *,
        phase: str,
    ) -> tuple[int, int, None]:
        """Parallel final phase with per-block component skipping.

        After the block links, a settle loop (compress barrier + full-edge
        mismatch sweep) repairs any merges lost to scatter-min races; the
        loop almost always exits after the first clean sweep.
        """
        pi_spec = self._pi_spec(pi)
        ip_spec, ix_spec, blocks = self._graph_specs(graph)
        with self.instr.timer(phase):
            shares = self._barrier(
                _part._task_link_remaining,
                [
                    (pi_spec, ip_spec, ix_spec, b.v_lo, b.v_hi, start, largest)
                    for b in blocks
                ],
                phase,
            )
        final = sum(s[0] for s in shares)
        skipped = sum(s[1] for s in shares)
        settle = 0
        cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
        settle_phase = f"{phase}-settle"
        with self.instr.timer(settle_phase):
            while True:
                self._compress_barrier(pi, phase=settle_phase)
                fixed = self._barrier(
                    _part._task_check_fix,
                    [
                        (pi_spec, ip_spec, ix_spec, b.v_lo, b.v_hi)
                        for b in blocks
                    ],
                    settle_phase,
                )
                if not any(fixed):
                    break
                settle += 1
                if settle > cap:
                    raise ConvergenceError(
                        f"settle loop exceeded {cap} passes — corrupted pi?"
                    )
        self.instr.count("settle_passes", settle)
        return final, skipped, None

    def _compress_barrier(self, pi: np.ndarray, *, phase: str = "C") -> None:
        """One parallel compress pass over π (no timer: callers wrap it)."""
        pi_spec = self._pi_spec(pi)
        ranges = partition_ranges(int(pi.shape[0]), self.workers)
        self._barrier(
            _part._task_compress,
            [(pi_spec, lo, hi) for lo, hi in ranges],
            phase,
        )

    def compress(self, pi: np.ndarray, *, phase: str) -> None:
        """Global compress barrier: per-block pointer jumping to roots."""
        with self.instr.timer(phase):
            self._compress_barrier(pi, phase=phase)
        return None

    def shortcut_step(self, pi: np.ndarray, *, phase: str) -> None:
        """Parallel single-step shortcut over per-block π ranges."""
        pi_spec = self._pi_spec(pi)
        ranges = partition_ranges(int(pi.shape[0]), self.workers)
        with self.instr.timer(phase):
            self._barrier(
                _part._task_shortcut,
                [(pi_spec, lo, hi) for lo, hi in ranges],
                phase,
            )

    def find_largest(
        self,
        pi: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        *,
        phase: str,
    ) -> int:
        """Direct π probes (parent-side: the sample is tiny)."""
        with self.instr.timer(phase):
            return approximate_largest_label(pi, sample_size, rng=rng)

    def hook_pass(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> bool:
        """One parallel min-hook pass; True if any block hooked.

        A lost scatter-min race implies at least one block reported a
        change, so the pipeline's "full pass with no change" convergence
        test stays sound across processes.
        """
        pi_spec = self._pi_spec(pi)
        src_spec, dst_spec = self._load_edges(src, dst)
        ranges = partition_ranges(int(src.shape[0]), self.workers)
        with self.instr.timer(phase):
            changed = self._barrier(
                _part._task_hook,
                [
                    (pi_spec, src_spec, dst_spec, lo, hi)
                    for lo, hi in ranges
                ],
                phase,
            )
        return any(changed)

    def _propagate_barrier(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """One parallel min-label sweep (no timer: callers wrap it)."""
        pi_spec = self._pi_spec(pi)
        ip_spec, ix_spec, blocks = self._graph_specs(graph)
        changed = self._barrier(
            _part._task_propagate,
            [
                (pi_spec, ip_spec, ix_spec, b.v_lo, b.v_hi)
                for b in blocks
            ],
            phase,
        )
        return int(sum(changed))

    def propagate_pass(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """One parallel scatter-min sweep, one task per CSR edge block.

        Cross-block min-writes can race, but a lost write implies the
        loser's block reported a change, so a sweep returning zero
        performed no writes — the pipeline's convergence test is sound.
        """
        with self.instr.timer(phase):
            return self._propagate_barrier(pi, graph, phase=phase)

    def frontier_expand(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        frontier: np.ndarray,
        *,
        phase: str,
    ) -> np.ndarray:
        """Parallel push from a shared frontier buffer, sliced into
        degree-weighted contiguous ranges so skewed frontiers do not pile
        their edge work onto one worker."""
        pi_spec = self._pi_spec(pi)
        ip_spec, ix_spec, _blocks = self._graph_specs(graph)
        k = int(frontier.shape[0])
        if k == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        self._frontier_buf = self._grow_buffer(self._frontier_buf, k)
        self._frontier_buf.array[:k] = frontier
        # Per-round degree scratch through the pool: ``indptr[1:]`` is a
        # view, so the two pooled takes plus the in-place subtract demand
        # no fresh memory once the buffers are warm.
        indptr = graph.indptr
        deg = self.pool.take(indptr[1:], frontier, "frontier-deg")
        lo = self.pool.take(indptr, frontier, "frontier-lo")
        np.subtract(deg, lo, out=deg)
        ranges = _part.partition_weighted_ranges(deg, self.workers)
        f_spec = self._frontier_buf.spec
        with self.instr.timer(phase):
            parts = self._barrier(
                _part._task_frontier_expand,
                [
                    (pi_spec, ip_spec, ix_spec, f_spec, lo, hi)
                    for lo, hi in ranges
                ],
                phase,
            )
        parts = [p for p in parts if p.shape[0]]
        if not parts:
            return np.empty(0, dtype=VERTEX_DTYPE)
        return np.unique(np.concatenate(parts)).astype(VERTEX_DTYPE)

    def bottom_up_pass(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        in_frontier: np.ndarray,
        label: int,
        sentinel: int,
        *,
        phase: str,
    ) -> tuple[np.ndarray, int, int]:
        """Parallel pull step, one task per CSR edge block.

        Each block vertex writes only its own π slot, so the step is
        race-free; block order keeps the concatenated next frontier
        ascending without a sort.
        """
        pi_spec = self._pi_spec(pi)
        ip_spec, ix_spec, blocks = self._graph_specs(graph)
        n = int(pi.shape[0])
        if self._mask_buf is None or self._mask_buf.length < n:
            self._release(self._mask_buf)
            self._mask_buf = SharedVector(max(n, 1024), dtype=np.uint8)
            self._count_alloc(self._mask_buf.array.nbytes)
        self._mask_buf.array[:n] = in_frontier
        m_spec = self._mask_buf.spec
        with self.instr.timer(phase):
            parts = self._barrier(
                _part._task_bottom_up,
                [
                    (
                        pi_spec,
                        ip_spec,
                        ix_spec,
                        m_spec,
                        b.v_lo,
                        b.v_hi,
                        int(label),
                        int(sentinel),
                    )
                    for b in blocks
                ],
                phase,
            )
        founds = [p[0] for p in parts if p[0].shape[0]]
        next_frontier = (
            np.concatenate(founds)
            if founds
            else np.empty(0, dtype=VERTEX_DTYPE)
        )
        modeled = sum(p[1] for p in parts)
        gathered = sum(p[2] for p in parts)
        return next_frontier, int(modeled), int(gathered)

    def propagate_settle(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        """Full synchronous sweeps until a pass reports no change.

        The data-driven frontier push can permanently lose a min-write to
        a scatter-min race across blocks; a sweep returning zero changes
        performed no writes, certifying the fixpoint.
        """
        settle = 0
        cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
        with self.instr.timer(phase):
            while self._propagate_barrier(pi, graph, phase=phase):
                settle += 1
                if settle > cap:
                    raise ConvergenceError(
                        f"settle loop exceeded {cap} passes — corrupted pi?"
                    )
        self.instr.count("settle_passes", settle)
        return settle

    # -- lifecycle ------------------------------------------------------- #

    def detach_labels(self, pi: np.ndarray) -> np.ndarray:
        """Copy labels out of shared memory into an ordinary array."""
        if self._pi is not None and pi is self._pi.array:
            return np.array(pi, dtype=VERTEX_DTYPE, copy=True)
        return pi

    def close(self) -> None:
        """Terminate the worker pool and release every shared segment."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        for vec in (
            self._pi,
            self._src_buf,
            self._dst_buf,
            self._frontier_buf,
            self._mask_buf,
            self._stats,
        ):
            self._release(vec)
        self._pi = self._src_buf = self._dst_buf = self._stats = None
        self._frontier_buf = self._mask_buf = None
        self._src_key = self._dst_key = None
        self._worker_tracks = {}
        if self._graph_segs is not None:
            for seg in self._graph_segs:
                self._release(seg)
        self._graph = None
        self._graph_segs = None
        self._blocks = []

    def __enter__(self) -> "ProcessParallelBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


#: CSR sharding modes of the distributed backend (1-D edge partitioning).
PARTITION_MODES = ("block", "hash")


def _dedup_min(idx: np.ndarray, val: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate delta indices, keeping the minimum value — what
    a rank does before putting its candidate list on the wire."""
    uniq, inv = np.unique(idx, return_inverse=True)
    if uniq.shape[0] == idx.shape[0]:
        return idx, val
    out = np.full(uniq.shape[0], np.iinfo(val.dtype).max, dtype=val.dtype)
    np.minimum.at(out, inv, val)
    return uniq, out


class DistributedBackend(VectorizedBackend):
    """BSP delta-exchange substrate: ``ranks`` simulated machines, each
    holding a shard of the edges and a full replica of π.

    Each primitive is executed as one or more supersteps.  Within a
    superstep every rank gathers candidate hooks *against the replicated
    pre-superstep snapshot* of π and keeps only candidates that improve on
    it; the candidates then cross the communicator in two phases — an
    ``alltoallv`` routing each delta to the owner rank of its vertex, and
    an owner broadcast of the merged changes (sparse index+value pairs, or
    the whole owned block once the change density passes 1/2) — before
    every replica applies the same scatter-min.  Because the vectorized
    kernels also gather all candidates before any write, the merged π is
    bit-identical to the single-machine result, round for round.

    Vertex ownership is an even 1-D block map (``block_bounds``); edge
    sharding follows ``partition`` — ``block`` keeps CSR row locality per
    rank (``partition_csr_blocks``), ``hash`` spreads edges pseudo-randomly
    (``hash_owners``).  Pure replica-local work (compression, pointer
    jumps, the giant-component probe) is inherited from the vectorized
    substrate and costs no traffic; all bytes that do cross ranks flow
    through ``self.comm`` and surface as ``comm_*`` counters.
    """

    kind = "distributed"

    def __init__(
        self,
        ranks: int = 4,
        *,
        partition: str = "block",
        comm: SimulatedComm | None = None,
        label_dtype: str = "auto",
    ) -> None:
        super().__init__(label_dtype=label_dtype)
        if ranks < 1:
            raise ConfigurationError(f"ranks must be >= 1, got {ranks}")
        if partition not in PARTITION_MODES:
            raise ConfigurationError(
                f"unknown partition mode {partition!r}; "
                f"available: {list(PARTITION_MODES)}"
            )
        if comm is not None and comm.num_ranks != ranks:
            raise ConfigurationError(
                f"communicator has {comm.num_ranks} ranks, expected {ranks}"
            )
        self.ranks = ranks
        self.partition = partition
        self.comm = comm if comm is not None else SimulatedComm(ranks)
        # Replica state as of the last barrier: driver-side writes
        # (the BFS pipelines seed ``pi[cursor] = label`` directly) are
        # detected against it and charged as a root broadcast.
        self._shadow: np.ndarray | None = None
        # Vertex-ownership cut points, cached per n.
        self._bounds_n = -1
        self._bounds: np.ndarray | None = None
        # Per-graph edge shards (identity-cached like ``_edges``).
        self._shard_graph: CSRGraph | None = None
        self._shards: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._shard_owner: np.ndarray | None = None
        # Watermarks for flushing CommStats into the run's counters (the
        # comm object outlives runs; counters must see per-run deltas).
        self._seen_bytes = 0
        self._seen_msgs = 0
        self._seen_steps = 0
        self._seen_pair: dict[tuple[int, int], int] = {}

    # -- sharding -------------------------------------------------------- #

    def _vertex_bounds(self, n: int) -> np.ndarray:
        if self._bounds_n != n:
            self._bounds_n = n
            self._bounds = _dpart.block_bounds(n, self.ranks)
        assert self._bounds is not None
        return self._bounds

    def _graph_shards(self, graph: CSRGraph) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-rank ``(src, dst)`` directed-edge shards of ``graph``."""
        if self._shard_graph is not graph:
            src, dst = self._edges(graph)
            m = int(src.shape[0])
            owner = np.empty(m, dtype=np.int64)
            if self.partition == "hash":
                owner[:] = _dpart.hash_owners(m, self.ranks)
                shards = [
                    (src[owner == r], dst[owner == r])
                    for r in range(self.ranks)
                ]
            else:
                blocks = _part.partition_csr_blocks(graph.indptr, self.ranks)
                shards = []
                for r, blk in enumerate(blocks):
                    owner[blk.e_lo : blk.e_hi] = r
                    shards.append(
                        (src[blk.e_lo : blk.e_hi], dst[blk.e_lo : blk.e_hi])
                    )
            self._shard_graph = graph
            self._shards = shards
            self._shard_owner = owner
        assert self._shards is not None
        return self._shards

    def _edge_owner(self, graph: CSRGraph) -> np.ndarray:
        """Owner rank per flat directed-edge position."""
        self._graph_shards(graph)
        assert self._shard_owner is not None
        return self._shard_owner

    def shard_sizes(self, graph: CSRGraph) -> list[int]:
        """Directed-edge count held by each rank for ``graph``."""
        return [int(s.shape[0]) for s, _ in self._graph_shards(graph)]

    def _batch_shards(
        self, src: np.ndarray, dst: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Shard an ad-hoc edge batch (sampling rounds, SV hooks) by flat
        position, mirroring the configured partition mode."""
        m = int(src.shape[0])
        if self.partition == "hash":
            owner = _dpart.hash_owners(m, self.ranks)
            return [
                (src[owner == r], dst[owner == r]) for r in range(self.ranks)
            ]
        return [
            (src[lo:hi], dst[lo:hi])
            for lo, hi in _part.partition_ranges(m, self.ranks)
        ]

    # -- replica consistency / traffic accounting ------------------------ #

    def _flush_comm(self) -> None:
        """Move new CommStats traffic into the run's counters."""
        stats = self.comm.stats
        if stats.bytes_sent != self._seen_bytes:
            self.instr.count(
                "comm_bytes_sent", stats.bytes_sent - self._seen_bytes
            )
            self._seen_bytes = stats.bytes_sent
        if stats.messages != self._seen_msgs:
            self.instr.count("comm_messages", stats.messages - self._seen_msgs)
            self._seen_msgs = stats.messages
        new_steps = stats.supersteps - self._seen_steps
        if new_steps:
            self.instr.count("comm_supersteps", new_steps)
            if self.instr.metrics.enabled:
                hist = self.instr.metrics.histogram(
                    "comm_step_bytes", POW2_BUCKETS
                )
                for nbytes in stats.step_bytes[self._seen_steps :]:
                    hist.observe(nbytes)
            self._seen_steps = stats.supersteps
        for pair, nbytes in stats.by_pair.items():
            seen = self._seen_pair.get(pair, 0)
            if nbytes != seen:
                self.instr.count(
                    f"comm_pair_{pair[0]}_{pair[1]}", nbytes - seen
                )
                self._seen_pair[pair] = nbytes

    def _sync_driver(self, pi: np.ndarray) -> None:
        """Fold driver-side writes into every replica.

        Pipelines own π between primitives and may write it directly (the
        BFS cursor seed).  Any divergence from the last-barrier shadow is
        broadcast — sparse or dense, whichever is smaller — before the
        primitive's supersteps run.
        """
        shadow = self._shadow
        if shadow is None or shadow.shape[0] != pi.shape[0]:
            self._shadow = pi.copy()
            return
        if self.ranks == 1:
            np.copyto(shadow, pi)
            return
        diff = np.nonzero(pi != shadow)[0]
        if diff.shape[0] == 0:
            return
        payload = self._encode(pi, diff, pi[diff], 0, int(pi.shape[0]))
        self.comm.bcast_all({0: payload})
        shadow[diff] = pi[diff]
        self._flush_comm()

    @staticmethod
    def _enc_cost(k: int, span: int, item: int) -> int:
        """Wire bytes of ``k`` changed slots in a ``span``-slot window under
        the cheapest of the three delta encodings (see ``_encode``)."""
        return min(2 * k * item, (span + 7) // 8 + k * item, span * item)

    def _encode(
        self, pi: np.ndarray, idx: np.ndarray, val: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """Pack a delta set for the wire, cheapest encoding first.

        Three tiers by measured change density: sparse ``(index, value)``
        pairs while ``2k`` stays under the bitmap break-even, a changed-slot
        bitmap plus packed values in the mid range, and the raw dense window
        slice once most slots moved.  All tiers carry values at the run's
        (possibly narrowed) label width.
        """
        item = pi.dtype.itemsize
        k = int(idx.shape[0])
        span = int(hi - lo)
        pairs = 2 * k * item
        bitmap = (span + 7) // 8 + k * item
        dense = span * item
        if pairs <= bitmap and pairs <= dense:
            return np.concatenate([idx.astype(pi.dtype), val]).view(np.uint8)
        if bitmap <= dense:
            mask = np.zeros(span, dtype=bool)
            mask[np.asarray(idx) - lo] = True
            return np.concatenate(
                [np.packbits(mask), np.ascontiguousarray(val).view(np.uint8)]
            )
        return np.ascontiguousarray(pi[lo:hi]).view(np.uint8)

    def _ship_deltas(
        self,
        pi: np.ndarray,
        live: list[tuple[int, np.ndarray, np.ndarray]],
        changed: np.ndarray,
        *,
        already_applied: bool,
    ) -> None:
        """Put one exchange's deltas on the wire, cheapest strategy first.

        Two strategies are costed against each other per exchange (the
        candidate counts ride the preceding barrier as scalar metadata, so
        every rank prices both):

        - **all-gather** — every rank broadcasts its own candidate deltas;
          peers merge locally.  One superstep; total bytes grow with the
          raw candidate volume times ``R - 1``.
        - **owner-routed** — an ``alltoallv`` ships candidates to the owner
          rank of each vertex, owners merge and publish only the *final*
          changed slots.  Two supersteps, but cross-rank duplicate targets
          collapse before the broadcast fan-out.

        Sparse sweeps favour all-gather; contended early rounds with heavy
        cross-rank duplication favour owner routing.
        """
        n = int(pi.shape[0])
        item = pi.dtype.itemsize
        bounds = self._vertex_bounds(n)
        owner_parts: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        owner_cost = 0
        if not already_applied:
            for r, idx, val in live:
                owner = np.searchsorted(bounds, idx, side="right") - 1
                for dest in np.unique(owner):
                    if dest == r:
                        continue
                    sel = owner == dest
                    owner_parts[(r, int(dest))] = (idx[sel], val[sel])
                    owner_cost += self._enc_cost(
                        int(np.count_nonzero(sel)),
                        int(bounds[dest + 1] - bounds[dest]),
                        item,
                    )
        pub: dict[int, np.ndarray] = {}
        if changed.shape[0]:
            owner_c = np.searchsorted(bounds, changed, side="right") - 1
            for root in range(self.ranks):
                sel = changed[owner_c == root]
                if sel.shape[0]:
                    pub[root] = sel
                    owner_cost += (self.ranks - 1) * self._enc_cost(
                        int(sel.shape[0]),
                        int(bounds[root + 1] - bounds[root]),
                        item,
                    )
        gather_cost = sum(
            (self.ranks - 1) * self._enc_cost(int(idx.shape[0]), n, item)
            for _, idx, _ in live
        )
        if gather_cost <= owner_cost:
            self.comm.bcast_all(
                {
                    r: self._encode(pi, idx, val, 0, n)
                    for r, idx, val in live
                }
            )
            return
        if owner_parts:
            self.comm.alltoallv(
                {
                    (r, dest): self._encode(
                        pi, idx, val, int(bounds[dest]), int(bounds[dest + 1])
                    )
                    for (r, dest), (idx, val) in owner_parts.items()
                }
            )
        if pub:
            self.comm.bcast_all(
                {
                    root: self._encode(
                        pi,
                        sel,
                        pi[sel],
                        int(bounds[root]),
                        int(bounds[root + 1]),
                    )
                    for root, sel in pub.items()
                }
            )

    def _exchange(
        self,
        pi: np.ndarray,
        deltas: list[tuple[np.ndarray, np.ndarray]],
        *,
        already_applied: bool = False,
    ) -> np.ndarray:
        """One delta exchange: merge per-rank ``(index, value)`` candidate
        minima into every replica of π; returns the changed slot indices.

        Candidates are deduplicated per rank (minimum per index) and merged
        by scatter-min — order-independent, so every replica lands on the
        same values the single-machine kernel produces.  The wire protocol
        is delegated to :meth:`_ship_deltas`; an exchange with no
        candidates anywhere is skipped entirely, so a converged sweep
        costs zero bytes and zero barriers.

        ``already_applied`` marks deltas whose writes already landed in π
        by rank-disjoint local kernels (the bottom-up pull): owner routing
        is free because every entry is produced on its owner rank.
        """
        live = [
            (r, idx, val)
            for r, (idx, val) in enumerate(deltas)
            if idx.shape[0]
        ]
        if not live:
            return np.empty(0, dtype=np.int64)
        if already_applied:
            changed = np.concatenate([idx for _, idx, _ in live])
        else:
            live = [
                (r, *_dedup_min(idx, val)) for r, idx, val in live
            ]
            all_idx = np.concatenate([idx for _, idx, _ in live])
            all_val = np.concatenate([val for _, _, val in live])
            touched = np.unique(all_idx)
            before = pi[touched]
            np.minimum.at(pi, all_idx, all_val)
            changed = touched[pi[touched] < before]
        if self.ranks > 1:
            with self.instr.timer("X"):
                self._ship_deltas(
                    pi, live, changed, already_applied=already_applied
                )
            self._flush_comm()
        if changed.shape[0]:
            assert self._shadow is not None
            self._shadow[changed] = pi[changed]
        return changed

    # -- link primitives ------------------------------------------------- #

    def _dist_link_batch(
        self,
        pi: np.ndarray,
        shards: list[tuple[np.ndarray, np.ndarray]],
    ) -> int:
        """The ``link_batch`` loop as one delta-exchange superstep per
        round: every rank climbs its shard's private ``(a, b)`` cursors on
        the replica and ships only winning root hooks.  Round-for-round
        identical to :func:`~repro.core.link.link_batch` because hooks are
        gathered against the pre-round snapshot and merged by scatter-min.
        """
        if sum(int(s.shape[0]) for s, _ in shards) == 0:
            return 0
        state = [(pi[src], pi[dst]) for src, dst in shards]
        cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
        rounds = 0
        while True:
            actives = [a != b for a, b in state]
            flags = [bool(act.any()) for act in actives]
            any_active = self.comm.allreduce_any(flags)
            self._flush_comm()
            if not any_active:
                return rounds
            rounds += 1
            if rounds > cap:
                raise ConvergenceError(
                    f"link_batch exceeded {cap} rounds — cycle in pi?"
                )
            deltas = []
            climbs = []
            for (a, b), act in zip(state, actives):
                a = a[act]
                b = b[act]
                high = np.maximum(a, b)
                low = np.minimum(a, b)
                root = pi[high] == high
                deltas.append((high[root], low[root]))
                climbs.append((high, low))
            self._exchange(pi, deltas)
            state = [
                (pi[pi[high]], pi[low]) for high, low in climbs
            ]

    def link_edges(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> int:
        self._sync_driver(pi)
        with self.instr.timer(phase):
            return self._dist_link_batch(pi, self._batch_shards(src, dst))

    def link_neighbor_round(
        self, pi: np.ndarray, graph: CSRGraph, r: int, *, phase: str
    ) -> int:
        src, dst = round_edges(graph, r)
        self._sync_driver(pi)
        with self.instr.timer(phase):
            return self._dist_link_batch(pi, self._batch_shards(src, dst))

    def link_remaining(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        start: int,
        largest: int | None,
        *,
        phase: str,
    ) -> tuple[int, int, int]:
        self._sync_driver(pi)
        if largest is not None:
            verts = np.nonzero(pi != largest)[0].astype(VERTEX_DTYPE)
            deg = np.asarray(graph.degree())
            skipped_verts = np.nonzero(pi == largest)[0]
            skipped = int(np.maximum(deg[skipped_verts] - start, 0).sum())
        else:
            verts = np.arange(pi.shape[0], dtype=VERTEX_DTYPE)
            skipped = 0
        with self.instr.timer(f"{phase}-gather"):
            src, dst = remaining_edges(graph, verts, start)
        with self.instr.timer(phase):
            rounds = self._dist_link_batch(
                pi, self._batch_shards(src, dst)
            )
        return int(src.shape[0]), skipped, rounds

    # -- replica-local primitives ---------------------------------------- #

    def init_labels(
        self, n: int, *, phase: str = "I", fill: int | None = None
    ) -> np.ndarray:
        # The identity (or constant) seed is generated locally on every
        # rank — no traffic; the shadow records the common starting state.
        pi = super().init_labels(n, phase=phase, fill=fill)
        self._shadow = pi.copy()
        self._vertex_bounds(n)
        return pi

    def compress(self, pi: np.ndarray, *, phase: str) -> int:
        # Pointer doubling reads/writes only the local replica: since every
        # rank holds the same π, all replicas converge identically for free.
        self._sync_driver(pi)
        passes = super().compress(pi, phase=phase)
        assert self._shadow is not None
        np.copyto(self._shadow, pi)
        return passes

    def shortcut_step(self, pi: np.ndarray, *, phase: str) -> None:
        self._sync_driver(pi)
        super().shortcut_step(pi, phase=phase)
        assert self._shadow is not None
        np.copyto(self._shadow, pi)

    def find_largest(
        self,
        pi: np.ndarray,
        sample_size: int,
        rng: np.random.Generator,
        *,
        phase: str,
    ) -> int:
        # Every rank holds the replica and the run's seeded RNG stream, so
        # the probe is rank-local and consumes identical RNG state.
        self._sync_driver(pi)
        return super().find_largest(pi, sample_size, rng, phase=phase)

    # -- sweep primitives ------------------------------------------------- #

    def hook_pass(
        self, pi: np.ndarray, src: np.ndarray, dst: np.ndarray, *, phase: str
    ) -> bool:
        self._sync_driver(pi)
        with self.instr.timer(phase):
            deltas = []
            hooked = False
            for src_r, dst_r in self._batch_shards(src, dst):
                cu = pi[src_r]
                cv = pi[dst_r]
                mask = (cu < cv) & (pi[cv] == cv)
                if mask.any():
                    hooked = True
                    if self.instr.metrics.enabled:
                        self.instr.metrics.histogram(
                            "hook_distance", POW2_BUCKETS
                        ).observe_many(cv[mask] - cu[mask])
                deltas.append((cv[mask], cu[mask]))
            if not hooked:
                return False
            self._exchange(pi, deltas)
            return True

    def _sweep_exchange(
        self, pi: np.ndarray, shards: list[tuple[np.ndarray, np.ndarray]]
    ) -> int:
        """One distributed min-label sweep: per-shard winning candidates
        against the snapshot, then a delta exchange; returns the win count
        (equal to the vectorized masked sweep's, shard-partitioned)."""
        deltas = []
        total = 0
        for src_r, dst_r in shards:
            cand = pi[src_r]
            won = cand < pi[dst_r]
            total += int(np.count_nonzero(won))
            deltas.append((dst_r[won], cand[won]))
        if total:
            self._exchange(pi, deltas)
        return total

    def propagate_pass(
        self, pi: np.ndarray, graph: CSRGraph, *, phase: str
    ) -> int:
        self._sync_driver(pi)
        shards = self._graph_shards(graph)
        with self.instr.timer(phase):
            return self._sweep_exchange(pi, shards)

    def fused_hook_jump(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        *,
        hooking: str = "plain",
        phase: str,
    ) -> int:
        self._sync_driver(pi)
        shards = self._graph_shards(graph)
        with self.instr.timer(phase):
            changed = self._sweep_exchange(pi, shards)
            if changed and hooking != "plain":
                # Grandparent hooks read the *merged* post-sweep replica,
                # matching the vectorized fused kernel's gather order.
                deltas = []
                for src_r, dst_r in shards:
                    grand = pi[pi[src_r]]
                    if hooking == "aggressive":
                        target = dst_r
                    else:  # stochastic: hook the destination's parent
                        target = pi[dst_r]
                    won = grand < pi[target]
                    changed += int(np.count_nonzero(won))
                    deltas.append((target[won], grand[won]))
                self._exchange(pi, deltas)
            if changed:
                self._pointer_jump(pi)
                assert self._shadow is not None
                np.copyto(self._shadow, pi)
            else:
                self.instr.count("rounds_skipped")
            self.instr.count("fused_passes")
            return changed

    # -- frontier primitives ---------------------------------------------- #

    def frontier_expand(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        frontier: np.ndarray,
        *,
        phase: str,
    ) -> np.ndarray:
        # Frontier membership is derived from replicated label state, so
        # the frontier itself never crosses the wire — only label deltas.
        self._sync_driver(pi)
        with self.instr.timer(phase):
            empty = np.empty(0, dtype=VERTEX_DTYPE)
            if frontier.shape[0] == 0:
                return empty
            indptr, indices = graph.indptr, graph.indices
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return empty
            offsets = np.repeat(starts, counts) + segment_ranges(counts)
            dst = indices[offsets]
            cand = np.repeat(pi[frontier], counts)
            owner = self._edge_owner(graph)[offsets]
            deltas = []
            wins = []
            for r in range(self.ranks):
                sel = owner == r
                dst_r = dst[sel]
                cand_r = cand[sel]
                won = cand_r < pi[dst_r]
                deltas.append((dst_r[won], cand_r[won]))
                if won.any():
                    wins.append(dst_r[won])
            if not wins:
                return empty
            self._exchange(pi, deltas)
            return np.unique(np.concatenate(wins)).astype(VERTEX_DTYPE)

    def bottom_up_pass(
        self,
        pi: np.ndarray,
        graph: CSRGraph,
        in_frontier: np.ndarray,
        label: int,
        sentinel: int,
        *,
        phase: str,
    ) -> tuple[np.ndarray, int, int]:
        self._sync_driver(pi)
        with self.instr.timer(phase):
            bounds = self._vertex_bounds(int(pi.shape[0]))
            founds = []
            deltas = []
            modeled = 0
            gathered = 0
            # The pull partitions by vertex-ownership block: each vertex
            # writes only its own slot, so rank-local execution is exact
            # and the found deltas are born on their owner ranks.
            for r in range(self.ranks):
                found, mod, gat = _part.bottom_up_block(
                    pi,
                    graph.indptr,
                    graph.indices,
                    in_frontier,
                    int(bounds[r]),
                    int(bounds[r + 1]),
                    label,
                    sentinel,
                )
                founds.append(found)
                modeled += mod
                gathered += gat
                deltas.append(
                    (
                        found.astype(np.int64),
                        np.full(found.shape[0], label, dtype=pi.dtype),
                    )
                )
            self._exchange(pi, deltas, already_applied=True)
            if len(founds) == 1:
                nxt = founds[0]
            else:
                nxt = np.concatenate(founds).astype(VERTEX_DTYPE)
            return nxt, modeled, gathered


# --------------------------------------------------------------------- #
# backend factory
# --------------------------------------------------------------------- #

#: canonical backend kinds, as accepted by :func:`make_backend`, the CLI's
#: ``--backend`` flag, and algorithm registry metadata.
BACKEND_KINDS = ("vectorized", "simulated", "process", "distributed")


def backend_kinds() -> tuple[str, ...]:
    """The backend kinds :func:`make_backend` can construct."""
    return BACKEND_KINDS


def make_backend(
    kind: str,
    *,
    workers: int | None = None,
    ranks: int | None = None,
    label_dtype: str = "auto",
) -> ExecutionBackend:
    """Construct a backend from its registry kind.

    ``workers`` selects the worker count for the parallel substrates
    (simulated machine workers / OS processes); ``ranks`` the world size
    of the distributed substrate; the vectorized backend ignores both.
    ``label_dtype`` selects the parent-array width policy (see
    :func:`resolve_label_dtype`).
    """
    if kind == "vectorized":
        return VectorizedBackend(label_dtype=label_dtype)
    if kind == "simulated":
        return SimulatedBackend(
            SimulatedMachine(workers or 4), label_dtype=label_dtype
        )
    if kind == "process":
        return ProcessParallelBackend(workers=workers, label_dtype=label_dtype)
    if kind == "distributed":
        return DistributedBackend(ranks=ranks or 4, label_dtype=label_dtype)
    raise ConfigurationError(
        f"unknown backend kind {kind!r}; available: {list(BACKEND_KINDS)}"
    )
