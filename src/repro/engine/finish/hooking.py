"""Tree-hooking finish phases: Shiloach–Vishkin and FastSV.

Both iterate a hook/propagate pass with a shortcut until a full pass
changes nothing.  SV hooks parent pointers edge-by-edge (GAP's
formulation, Fig. 1); FastSV replaces the per-edge root check with an
aggressive scatter-min label sweep plus a single pointer-jump per
iteration (the stochastic hooking + shortcutting of Zhang et al.'s
FastSV), which converges in far fewer rounds on high-diameter graphs.

As finish phases both start from whatever partial forest the sampling
phase built; when the plan's skip glue identified a giant component, SV
drops the edges *internal* to it up front (both endpoints already carry
the giant label, so those edges can never hook — dropping them is free
work avoidance with bit-identical results).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    VERTEX_DTYPE,
)
from repro.engine.backends import HOOKING_MODES, ExecutionBackend
from repro.engine.phase import FinishSpec, PlanContext
from repro.engine.result import CCResult
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import phase_label
from repro.unionfind.parent import ParentArray

__all__ = ["SV", "FASTSV", "sv_finish", "fastsv_finish", "sv_pipeline_edges"]


def _validate_sv(
    *, track_depth: bool = False, shortcut: str = "full"
) -> None:
    if shortcut not in ("full", "single"):
        raise ConfigurationError(
            f"shortcut must be 'full' or 'single', got {shortcut!r}"
        )


def _hook_loop(
    backend: ExecutionBackend,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    result: CCResult,
    *,
    track_depth: bool,
    shortcut: str,
) -> None:
    """The SV iteration shared by the finish phase and the edge-list API."""
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"SV exceeded {cap} iterations")
        changed = backend.hook_pass(
            pi, src, dst, phase=phase_label("H", round=iterations)
        )
        result.edges_processed += int(src.shape[0])
        if track_depth:
            d = ParentArray(pi).max_depth()
            result.depth_per_iteration.append(d)
            result.max_tree_depth = max(result.max_tree_depth, d)
        shortcut_phase = phase_label("S", round=iterations)
        if shortcut == "full":
            if changed or iterations == 1:
                backend.compress(pi, phase=shortcut_phase)
            else:
                # A hook pass reporting no change performed no writes on
                # any substrate, and the previous iteration ended with a
                # full compress — π is still flat, so the trailing
                # compress would be the identity.  (The first iteration
                # must still compress: sampling phases can hand the loop
                # deep trees that no hook ever touches.)
                backend.instr.count("rounds_skipped")
        else:
            # The original formulation's single shortcut step per
            # iteration: pi <- pi[pi] once.  Trees shrink gradually and
            # convergence takes more iterations than GAP's full compress.
            backend.shortcut_step(pi, phase=shortcut_phase)
        backend.instr.beat(
            phase_label("H", round=iterations), changed=int(changed)
        )
        if not changed:
            # With single-step shortcutting the trees may still be deep;
            # converged means no more hooks, so finish compressing now.
            if shortcut == "single":
                backend.compress(pi, phase=phase_label("S", final=True))
            break
    result.iterations = iterations


def sv_finish(
    ctx: PlanContext, *, track_depth: bool = False, shortcut: str = "full"
) -> None:
    """Shiloach–Vishkin hook/shortcut loop over the full edge array.

    With ``ctx.largest`` set, edges whose endpoints *both* already carry
    the giant label are dropped before the loop — they can never hook
    (equal roots), so the labeling is unchanged while the per-iteration
    edge scan shrinks by the giant component's internal edges.
    """
    _validate_sv(track_depth=track_depth, shortcut=shortcut)
    src, dst = ctx.graph.edge_array()
    if ctx.largest is not None and src.shape[0]:
        internal = (ctx.pi[src] == ctx.largest) & (ctx.pi[dst] == ctx.largest)
        ctx.result.edges_skipped = int(np.count_nonzero(internal))
        keep = ~internal
        src, dst = src[keep], dst[keep]
    _hook_loop(
        ctx.backend,
        ctx.pi,
        src,
        dst,
        ctx.result,
        track_depth=track_depth,
        shortcut=shortcut,
    )


def _validate_fastsv(*, hooking: str = "plain") -> None:
    if hooking not in HOOKING_MODES:
        raise ConfigurationError(
            f"hooking must be one of {list(HOOKING_MODES)}, got {hooking!r}"
        )


def fastsv_finish(ctx: PlanContext, *, hooking: str = "plain") -> None:
    """FastSV-style finish: fused scatter-min sweep + pointer jump per
    iteration (phase ``HS<i>``), until a sweep changes nothing.

    Each round is one :meth:`~repro.engine.backends.ExecutionBackend.
    fused_hook_jump` call: the min-label sweep hooks aggressively — every
    edge lowers its endpoint's label to the neighbour's, no root check —
    and the fused pointer jump (``π ← π[π]``) halves chain lengths, so
    convergence needs far fewer rounds than pure label propagation on
    high-diameter graphs.  The backend skips the jump on the final
    no-change round (π is provably flat then — see the primitive's
    contract), which the ``rounds_skipped`` counter makes visible.

    ``hooking`` selects the hooking variant (``plain`` / ``stochastic`` /
    ``aggressive``): the extra variants additionally scatter grandparent
    labels, cutting rounds on high-diameter graphs at the cost of more
    work per round.  All writes are monotone min-writes over
    component-internal ids, so every variant converges to the component
    minima, bit-compatible with every other finish.
    """
    _validate_fastsv(hooking=hooking)
    backend, pi, graph, result = ctx.backend, ctx.pi, ctx.graph, ctx.result
    m = graph.num_directed_edges
    if m == 0:
        return
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"FastSV exceeded {cap} iterations")
        changed = backend.fused_hook_jump(
            pi, graph, hooking=hooking,
            phase=phase_label("HS", round=iterations),
        )
        result.edges_processed += m
        backend.instr.beat(
            phase_label("HS", round=iterations), changed=int(changed)
        )
        if not changed:
            break
    result.iterations = iterations


def sv_pipeline_edges(
    backend: ExecutionBackend,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a flat directed edge list, any backend.

    The standalone edge-list entry point (used by the baselines layer and
    edge-stream callers); graph-based runs go through the ``sv`` plan.
    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's
    formulation, the default) or the original algorithm's single
    ``pi <- pi[pi]`` step.
    """
    _validate_sv(track_depth=track_depth, shortcut=shortcut)
    n = num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    _hook_loop(
        backend, pi, src, dst, result,
        track_depth=track_depth, shortcut=shortcut,
    )
    if result.labels.dtype != VERTEX_DTYPE:
        # Narrowed working labels never escape the engine layer.
        result.labels = result.labels.astype(VERTEX_DTYPE)
    result.run_stats = backend.run_stats()
    return result


SV = FinishSpec(
    name="sv",
    fn=sv_finish,
    description="Shiloach-Vishkin tree hooking (GAP formulation): "
    "hook + shortcut over every edge per iteration",
    params=("track_depth", "shortcut"),
    supports_skip=True,
    validate=_validate_sv,
)

FASTSV = FinishSpec(
    name="fastsv",
    fn=fastsv_finish,
    description="FastSV-style scatter-min hooking with per-iteration "
    "pointer jumping (fused rounds; hooking=plain/stochastic/aggressive)",
    params=("hooking",),
    validate=_validate_fastsv,
)
