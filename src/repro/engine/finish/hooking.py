"""Tree-hooking finish phases: Shiloach–Vishkin and FastSV.

Both iterate a hook/propagate pass with a shortcut until a full pass
changes nothing.  SV hooks parent pointers edge-by-edge (GAP's
formulation, Fig. 1); FastSV replaces the per-edge root check with an
aggressive scatter-min label sweep plus a single pointer-jump per
iteration (the stochastic hooking + shortcutting of Zhang et al.'s
FastSV), which converges in far fewer rounds on high-diameter graphs.

As finish phases both start from whatever partial forest the sampling
phase built; when the plan's skip glue identified a giant component, SV
drops the edges *internal* to it up front (both endpoints already carry
the giant label, so those edges can never hook — dropping them is free
work avoidance with bit-identical results).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    VERTEX_DTYPE,
)
from repro.engine.backends import ExecutionBackend
from repro.engine.phase import FinishSpec, PlanContext
from repro.engine.result import CCResult
from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import phase_label
from repro.unionfind.parent import ParentArray

__all__ = ["SV", "FASTSV", "sv_finish", "fastsv_finish", "sv_pipeline_edges"]


def _validate_sv(
    *, track_depth: bool = False, shortcut: str = "full"
) -> None:
    if shortcut not in ("full", "single"):
        raise ConfigurationError(
            f"shortcut must be 'full' or 'single', got {shortcut!r}"
        )


def _hook_loop(
    backend: ExecutionBackend,
    pi: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    result: CCResult,
    *,
    track_depth: bool,
    shortcut: str,
) -> None:
    """The SV iteration shared by the finish phase and the edge-list API."""
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"SV exceeded {cap} iterations")
        changed = backend.hook_pass(
            pi, src, dst, phase=phase_label("H", round=iterations)
        )
        result.edges_processed += int(src.shape[0])
        if track_depth:
            d = ParentArray(pi).max_depth()
            result.depth_per_iteration.append(d)
            result.max_tree_depth = max(result.max_tree_depth, d)
        shortcut_phase = phase_label("S", round=iterations)
        if shortcut == "full":
            backend.compress(pi, phase=shortcut_phase)
        else:
            # The original formulation's single shortcut step per
            # iteration: pi <- pi[pi] once.  Trees shrink gradually and
            # convergence takes more iterations than GAP's full compress.
            backend.shortcut_step(pi, phase=shortcut_phase)
        if not changed:
            # With single-step shortcutting the trees may still be deep;
            # converged means no more hooks, so finish compressing now.
            if shortcut == "single":
                backend.compress(pi, phase=phase_label("S", final=True))
            break
    result.iterations = iterations


def sv_finish(
    ctx: PlanContext, *, track_depth: bool = False, shortcut: str = "full"
) -> None:
    """Shiloach–Vishkin hook/shortcut loop over the full edge array.

    With ``ctx.largest`` set, edges whose endpoints *both* already carry
    the giant label are dropped before the loop — they can never hook
    (equal roots), so the labeling is unchanged while the per-iteration
    edge scan shrinks by the giant component's internal edges.
    """
    _validate_sv(track_depth=track_depth, shortcut=shortcut)
    src, dst = ctx.graph.edge_array()
    if ctx.largest is not None and src.shape[0]:
        internal = (ctx.pi[src] == ctx.largest) & (ctx.pi[dst] == ctx.largest)
        ctx.result.edges_skipped = int(np.count_nonzero(internal))
        keep = ~internal
        src, dst = src[keep], dst[keep]
    _hook_loop(
        ctx.backend,
        ctx.pi,
        src,
        dst,
        ctx.result,
        track_depth=track_depth,
        shortcut=shortcut,
    )


def fastsv_finish(ctx: PlanContext) -> None:
    """FastSV-style finish: scatter-min label sweep + one pointer jump per
    iteration (phases ``H<i>`` / ``S<i>``), until a sweep changes nothing.

    The sweep (``propagate_pass``) hooks aggressively — every edge lowers
    its endpoint's label to the neighbour's, no root check — and the
    ``shortcut_step`` pointer jump (``π ← π[π]``) halves chain lengths,
    so convergence needs far fewer rounds than pure label propagation on
    high-diameter graphs.  All writes are monotone min-writes over
    component-internal ids, so the converged labeling is the component
    minima, bit-compatible with every other finish.
    """
    backend, pi, graph, result = ctx.backend, ctx.pi, ctx.graph, ctx.result
    m = graph.num_directed_edges
    if m == 0:
        return
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(f"FastSV exceeded {cap} iterations")
        changed = backend.propagate_pass(
            pi, graph, phase=phase_label("H", round=iterations)
        )
        result.edges_processed += m
        backend.shortcut_step(pi, phase=phase_label("S", round=iterations))
        if not changed:
            break
    result.iterations = iterations


def sv_pipeline_edges(
    backend: ExecutionBackend,
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    track_depth: bool = False,
    shortcut: str = "full",
) -> CCResult:
    """Shiloach–Vishkin over a flat directed edge list, any backend.

    The standalone edge-list entry point (used by the baselines layer and
    edge-stream callers); graph-based runs go through the ``sv`` plan.
    ``track_depth`` records the maximum tree depth before each shortcut —
    the Table II statistic — at the cost of an O(n) scan per iteration.
    ``shortcut`` selects full compression per iteration (GAP's
    formulation, the default) or the original algorithm's single
    ``pi <- pi[pi]`` step.
    """
    _validate_sv(track_depth=track_depth, shortcut=shortcut)
    n = num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
    dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)

    pi = backend.init_labels(n, phase="I")
    result = CCResult(labels=pi)
    _hook_loop(
        backend, pi, src, dst, result,
        track_depth=track_depth, shortcut=shortcut,
    )
    result.run_stats = backend.run_stats()
    return result


SV = FinishSpec(
    name="sv",
    fn=sv_finish,
    description="Shiloach-Vishkin tree hooking (GAP formulation): "
    "hook + shortcut over every edge per iteration",
    params=("track_depth", "shortcut"),
    supports_skip=True,
    validate=_validate_sv,
)

FASTSV = FinishSpec(
    name="fastsv",
    fn=fastsv_finish,
    description="FastSV-style scatter-min hooking with per-iteration "
    "pointer jumping",
)
