"""Union-find settle: Afforest's final link phase as a finish.

One ``link_remaining`` pass over every edge slot the sampling phase did
not consume (``ctx.final_start`` onward), skipping vertices in the giant
component when the plan's glue identified one (safe by the paper's
Theorem 3: undirected edges are stored in both directions, so the copies
owned by non-skipped endpoints keep cross-component connectivity), then
a final compress turning π into the component labeling.
"""

from __future__ import annotations

from repro.engine.phase import FinishSpec, PlanContext
from repro.obs import phase_label

__all__ = ["SETTLE", "settle_finish"]


def settle_finish(ctx: PlanContext) -> None:
    """Afforest final phase (``H`` link, ``C*`` compress)."""
    backend, pi, result = ctx.backend, ctx.pi, ctx.result
    final, skipped, rounds = backend.link_remaining(
        pi, ctx.graph, ctx.final_start, ctx.largest, phase="H"
    )
    result.edges_final = final
    result.edges_skipped = skipped
    if rounds is not None:
        result.link_rounds.append(rounds)
    passes = backend.compress(pi, phase=phase_label("C", final=True))
    if passes is not None:
        result.compress_passes.append(passes)
    backend.instr.beat("H")


SETTLE = FinishSpec(
    name="settle",
    fn=settle_finish,
    description="union-find settle (Afforest final phase): link remaining "
    "edge slots with component skipping, then compress",
    supports_skip=True,
)
