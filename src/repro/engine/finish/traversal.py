"""Whole-graph traversal finishes: BFS-CC and direction-optimizing BFS.

These two own their initialisation (the unvisited sentinel ``n`` instead
of self-pointing π), so they are *whole-graph* finishes: self-contained
pipelines that only compose with the ``none`` sampling phase.  The
pipeline bodies are unchanged from the pre-refactor monoliths.
"""

from __future__ import annotations

import numpy as np

from repro.constants import VERTEX_DTYPE
from repro.engine.backends import ExecutionBackend
from repro.engine.phase import FinishSpec
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.obs import phase_label

__all__ = [
    "BFS_FINISH",
    "DOBFS_FINISH",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "bfs_pipeline",
    "dobfs_pipeline",
]

#: GAP's direction-switch parameters (DOBFS).
DEFAULT_ALPHA = 15.0
DEFAULT_BETA = 18.0


def bfs_pipeline(graph: CSRGraph, backend: ExecutionBackend) -> CCResult:
    """Connected components via repeated frontier-parallel BFS, any backend.

    Components are found one at a time: an ascending cursor scan picks
    the smallest unvisited vertex as seed (so labels are component
    minima, bit-identical to the hooking algorithms), then phase ``T<i>``
    frontier expansions label everything reached.  Unvisited vertices
    carry the sentinel ``n`` — compatible with the backends' min-label
    push, since every real label is smaller.  Each edge is touched once
    (linear work), but components are processed serially — the weakness
    Fig. 8c exposes.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    sentinel = n
    pi = backend.init_labels(n, phase="I", fill=sentinel)
    result = CCResult(labels=pi)
    indptr = graph.indptr
    edges = 0
    steps = 0
    step_edges: list[int] = []
    # Seeds are scanned in id order; the cursor never revisits labelled
    # prefix entries, so the scan is O(n) total.
    cursor = 0
    while cursor < n:
        if int(pi[cursor]) != sentinel:
            cursor += 1
            continue
        label = cursor
        pi[cursor] = label
        frontier = np.asarray([cursor], dtype=VERTEX_DTYPE)
        while frontier.size:
            steps += 1
            total = int((indptr[frontier + 1] - indptr[frontier]).sum())
            if total == 0:
                break
            edges += total
            step_edges.append(total)
            phase = phase_label(
                "T", round=steps, frontier=int(frontier.shape[0])
            )
            backend.record_frontier(int(frontier.shape[0]), phase=phase)
            frontier = backend.frontier_expand(
                pi, graph, frontier, phase=phase
            )
            backend.instr.beat(phase, frontier=int(frontier.shape[0]))
        cursor += 1
    # step_edges: edges examined per frontier expansion, in execution
    # order — the per-parallel-phase work profile used by the scaling
    # model (Fig. 8b).
    result.edges_processed = edges
    result.bfs_steps = steps
    result.step_edges = step_edges
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


def dobfs_pipeline(
    graph: CSRGraph,
    backend: ExecutionBackend,
    *,
    alpha: float = DEFAULT_ALPHA,
    beta: float = DEFAULT_BETA,
) -> CCResult:
    """Connected components via direction-optimizing BFS, any backend.

    Like :func:`bfs_pipeline` but each step chooses between a top-down
    frontier expansion (phase ``T<i>``) and a bottom-up pull over the
    unvisited vertices (phase ``B<i>``), following GAP's heuristic: go
    bottom-up when the frontier's out-degree exceeds
    ``remaining_edges / alpha``; return to top-down once the frontier
    both shrinks and drops below ``n / beta`` (do-while hysteresis).

    ``edges_processed`` is the early-exit work model (a bottom-up scan
    stops at its first frontier hit — what real hardware touches);
    ``edges_gathered`` whatever the substrate actually examined.
    """
    n = graph.num_vertices
    if n == 0:
        result = CCResult(labels=np.arange(0, dtype=VERTEX_DTYPE))
        result.run_stats = backend.run_stats()
        return result
    sentinel = n
    pi = backend.init_labels(n, phase="I", fill=sentinel)
    result = CCResult(labels=pi)
    deg = np.asarray(graph.degree())

    edges_modeled = 0
    edges_gathered = 0
    td_steps = 0
    bu_steps = 0
    step_edges: list[int] = []

    # GAP's heuristic state: edges_to_check counts unexplored out-degree
    # and only ever decreases; scout is the current frontier's out-degree.
    edges_to_check = graph.num_directed_edges
    cursor = 0
    while cursor < n:
        if int(pi[cursor]) != sentinel:
            cursor += 1
            continue
        label = cursor
        pi[cursor] = label
        frontier = np.asarray([cursor], dtype=VERTEX_DTYPE)
        while frontier.size:
            scout = int(deg[frontier].sum())
            if scout > edges_to_check / alpha:
                # Bottom-up regime: sweep until the frontier both shrinks
                # and drops below n / beta (GAP's do-while hysteresis).
                awake = frontier.shape[0]
                while True:
                    # Pooled per-round mask: the pool allocates once and
                    # every later bottom-up round reuses the same buffer.
                    in_frontier = backend.pool.get("bu-mask", n, np.bool_)
                    in_frontier[:] = False
                    in_frontier[frontier] = True
                    bu_steps += 1
                    phase = phase_label(
                        "B", round=bu_steps, frontier=int(awake)
                    )
                    backend.record_frontier(int(awake), phase=phase)
                    frontier, modeled, gathered = backend.bottom_up_pass(
                        pi, graph, in_frontier, label, sentinel, phase=phase
                    )
                    edges_modeled += modeled
                    edges_gathered += gathered
                    step_edges.append(modeled)
                    backend.instr.beat(
                        phase, frontier=int(frontier.shape[0])
                    )
                    prev_awake, awake = awake, frontier.shape[0]
                    if awake == 0 or (
                        awake < prev_awake and awake <= n / beta
                    ):
                        break
                edges_to_check = max(
                    edges_to_check - int(deg[frontier].sum()), 0
                )
            else:
                edges_to_check = max(edges_to_check - scout, 0)
                td_steps += 1
                step_edges.append(scout)
                edges_modeled += scout
                edges_gathered += scout
                if scout == 0:
                    frontier = np.empty(0, dtype=VERTEX_DTYPE)
                else:
                    phase = phase_label(
                        "T", round=td_steps, frontier=int(frontier.shape[0])
                    )
                    backend.record_frontier(
                        int(frontier.shape[0]), phase=phase
                    )
                    frontier = backend.frontier_expand(
                        pi, graph, frontier, phase=phase
                    )
                    backend.instr.beat(
                        phase, frontier=int(frontier.shape[0])
                    )
        cursor += 1
    # step_edges: modeled edges examined per step, in execution order
    # (Fig. 8b input).
    result.edges_processed = edges_modeled
    result.edges_gathered = edges_gathered
    result.top_down_steps = td_steps
    result.bottom_up_steps = bu_steps
    result.bfs_steps = td_steps + bu_steps
    result.step_edges = step_edges
    result.labels = pi
    result.run_stats = backend.run_stats()
    return result


BFS_FINISH = FinishSpec(
    name="bfs",
    fn=bfs_pipeline,
    description="per-component parallel BFS (linear work, serial over "
    "components)",
    whole_graph=True,
)

DOBFS_FINISH = FinishSpec(
    name="dobfs",
    fn=dobfs_pipeline,
    description="direction-optimizing BFS (Beamer et al.): top-down / "
    "bottom-up switching",
    params=("alpha", "beta"),
    whole_graph=True,
)
