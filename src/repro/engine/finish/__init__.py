"""The finish phase family.

A finish phase takes the partial forest a sampling phase left in π and
drives it to the exact component labeling: union-find settle (Afforest's
final phase), tree hooking (SV / FastSV), or label propagation (both
variants).  BFS and DOBFS are *whole-graph* finishes — self-contained
traversal pipelines that own their sentinel initialisation and only
compose with the ``none`` sampling phase.

``FINISHES`` is the registry the plan layer composes from.
"""

from __future__ import annotations

from repro.engine.phase import FinishSpec
from repro.engine.finish.hooking import (
    FASTSV,
    SV,
    fastsv_finish,
    sv_finish,
    sv_pipeline_edges,
)
from repro.engine.finish.propagation import (
    LP,
    LP_DATADRIVEN,
    lp_datadriven_finish,
    lp_finish,
)
from repro.engine.finish.settle import SETTLE, settle_finish
from repro.engine.finish.traversal import (
    BFS_FINISH,
    DEFAULT_ALPHA,
    DEFAULT_BETA,
    DOBFS_FINISH,
    bfs_pipeline,
    dobfs_pipeline,
)

__all__ = [
    "FINISHES",
    "SV",
    "FASTSV",
    "LP",
    "LP_DATADRIVEN",
    "SETTLE",
    "BFS_FINISH",
    "DOBFS_FINISH",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "sv_finish",
    "fastsv_finish",
    "lp_finish",
    "lp_datadriven_finish",
    "settle_finish",
    "sv_pipeline_edges",
    "bfs_pipeline",
    "dobfs_pipeline",
]

#: name -> spec of every registered finish phase.
FINISHES: dict[str, FinishSpec] = {
    spec.name: spec
    for spec in (SETTLE, SV, FASTSV, LP, LP_DATADRIVEN, BFS_FINISH, DOBFS_FINISH)
}
