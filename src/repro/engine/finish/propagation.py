"""Label-propagation finish phases (paper Sec. II-B).

Synchronous (``lp``) and data-driven/frontier (``lp-datadriven``)
min-label propagation, started from whatever labels the sampling phase
left in π.  With no sampling these are exactly the classical monoliths;
after a sampling phase they only have to spread the already-merged
labels, so the number of rounds drops with the sampled coverage.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    ITERATION_CAP_FACTOR,
    ITERATION_CAP_SLACK,
    VERTEX_DTYPE,
)
from repro.engine.phase import FinishSpec, PlanContext
from repro.errors import ConvergenceError
from repro.obs import phase_label

__all__ = ["LP", "LP_DATADRIVEN", "lp_finish", "lp_datadriven_finish"]


def lp_finish(ctx: PlanContext) -> None:
    """Synchronous min-label sweeps (phases ``P<i>``) to the fixpoint.

    Convergence when a sweep reports no change — sound on every substrate
    because a pass reporting zero changes performed no writes.  Work is
    ``O(D · |E|)``, the diameter dependence the paper contrasts against.
    """
    backend, pi, graph, result = ctx.backend, ctx.pi, ctx.graph, ctx.result
    m = graph.num_directed_edges
    if m == 0:
        return
    cap = ITERATION_CAP_FACTOR * pi.shape[0] + ITERATION_CAP_SLACK
    iterations = 0
    while True:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(
                f"label propagation exceeded {cap} iterations"
            )
        phase = phase_label("P", round=iterations)
        changed = backend.propagate_pass(pi, graph, phase=phase)
        result.edges_processed += m
        backend.instr.beat(phase, changed=int(changed))
        if not changed:
            break
    result.iterations = iterations


def lp_datadriven_finish(ctx: PlanContext) -> None:
    """Data-driven (frontier) min-label propagation (phases ``P<i>``).

    Each round pushes labels from the frontier of vertices whose label
    changed last round, so total work shrinks from ``O(D·|E|)`` toward
    the sum of active-edge counts.  Once the frontier drains, a settle
    phase (``P*``) lets the substrate certify/repair the fixpoint — zero
    passes everywhere except the process backend, whose non-atomic
    cross-block min-writes can lose an update.
    """
    backend, pi, graph, result = ctx.backend, ctx.pi, ctx.graph, ctx.result
    n = graph.num_vertices
    if graph.num_directed_edges == 0:
        return
    indptr = graph.indptr
    frontier = np.arange(n, dtype=VERTEX_DTYPE)
    cap = ITERATION_CAP_FACTOR * n + ITERATION_CAP_SLACK
    iterations = 0
    while frontier.size:
        iterations += 1
        if iterations > cap:
            raise ConvergenceError(
                f"data-driven label propagation exceeded {cap} iterations"
            )
        total = int((indptr[frontier + 1] - indptr[frontier]).sum())
        if total == 0:
            break
        phase = phase_label(
            "P", round=iterations, frontier=int(frontier.shape[0])
        )
        backend.record_frontier(int(frontier.shape[0]), phase=phase)
        result.edges_processed += total
        frontier = backend.frontier_expand(pi, graph, frontier, phase=phase)
        backend.instr.beat(phase, frontier=int(frontier.shape[0]))
    backend.propagate_settle(pi, graph, phase=phase_label("P", final=True))
    result.iterations = iterations


LP = FinishSpec(
    name="lp",
    fn=lp_finish,
    description="synchronous min-label propagation (O(D*|E|) work)",
)

LP_DATADRIVEN = FinishSpec(
    name="lp-datadriven",
    fn=lp_datadriven_finish,
    description="data-driven (frontier) min-label propagation",
)
