"""The ``auto`` meta-algorithm: probe the graph, pick a plan at runtime.

Following Jain et al.'s adaptive algorithm selection (PAPERS.md), cheap
graph statistics predict which point of the sampling × finish plan space
wins, so the engine can choose per input instead of per benchmark:

- **degree skew** (max/mean degree, :func:`repro.graph.properties.degree_statistics`)
  — power-law graphs reward neighbour-round sampling, whose first rounds
  collapse the hub-dominated core;
- **pseudo-diameter** (double-sweep BFS via
  :func:`repro.graph.properties.bfs_levels`) — high-diameter road-like
  graphs punish round-synchronous propagation (O(D) rounds) and reward
  pointer-jumping finishes;
- **giant-component coverage** (fraction of vertices reached from the
  max-degree vertex, read off the first sweep for free) — component
  skipping only pays when a giant component exists.

The decision rule (thresholds documented in ``docs/plans.md``):

1. ``pseudo_diameter > 24`` → ``none+fastsv`` (pointer jumping tames the
   diameter);
2. else ``skew >= 4`` and ``coverage >= 0.5`` → ``kout+settle`` (the
   paper's Afforest configuration: sampling plus giant-component skip);
3. else → ``none+lp-datadriven`` (frontier propagation: near-linear work
   on low-diameter, low-skew inputs).

Probe costs and the decision are recorded on the trace: each probe is a
``probe`` span with its statistics as attributes, and the enclosing
``auto`` span carries the chosen ``plan``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.engine.plan import get_plan, run_plan
from repro.engine.result import CCResult
from repro.graph.csr import CSRGraph
from repro.graph.properties import bfs_levels, degree_statistics
from repro.obs import Tracer, phase_label

__all__ = [
    "DIAMETER_THRESHOLD",
    "SKEW_THRESHOLD",
    "COVERAGE_THRESHOLD",
    "FALLBACK_PLAN",
    "select_plan",
    "auto_components",
]

#: pseudo-diameter above which pointer-jumping (FastSV) is chosen.
DIAMETER_THRESHOLD = 24
#: max/mean degree ratio above which the graph counts as skewed.
SKEW_THRESHOLD = 4.0
#: reachable fraction from the max-degree vertex above which a giant
#: component is assumed (making the skip glue worthwhile).
COVERAGE_THRESHOLD = 0.5
#: plan used for trivial graphs (no vertices or no edges).
FALLBACK_PLAN = "none+lp"


def select_plan(
    graph: CSRGraph, *, tracer: Tracer | None = None
) -> tuple[str, dict]:
    """Probe ``graph`` and return ``(plan name, probe statistics)``.

    Probes are recorded as ``probe`` spans (with their statistics as
    span attributes) on ``tracer`` when one is given and enabled.
    """
    if tracer is None:
        tracer = Tracer(False)
    n = graph.num_vertices
    m = graph.num_directed_edges
    if n == 0 or m == 0:
        return FALLBACK_PLAN, {"trivial": True}

    with tracer.span(phase_label("probe", probe="degree")) as span:
        stats = degree_statistics(graph)
        skew = float(stats.max / stats.mean) if stats.mean else 0.0
        if span is not None:
            span.attrs.update(skew=round(skew, 3), max_degree=stats.max)

    with tracer.span(phase_label("probe", probe="diameter")) as span:
        source = int(np.argmax(np.asarray(graph.degree())))
        levels = bfs_levels(graph, source)
        reached = levels >= 0
        coverage = float(np.count_nonzero(reached)) / n
        # Double sweep: re-run from the farthest reached vertex; its
        # eccentricity lower-bounds the component's diameter tightly.
        far = int(np.argmax(np.where(reached, levels, -1)))
        diameter = int(bfs_levels(graph, far).max())
        if span is not None:
            span.attrs.update(
                diameter=diameter, coverage=round(coverage, 3), source=source
            )

    if diameter > DIAMETER_THRESHOLD:
        plan = "none+fastsv"
    elif skew >= SKEW_THRESHOLD and coverage >= COVERAGE_THRESHOLD:
        plan = "kout+settle"
    else:
        plan = "none+lp-datadriven"
    probes = {
        "skew": skew,
        "diameter": diameter,
        "coverage": coverage,
    }
    return plan, probes


def auto_components(
    graph: CSRGraph, backend: ExecutionBackend, **params
) -> CCResult:
    """Engine entry point for ``auto``: probe, select, run.

    Keyword arguments are forwarded to the chosen plan when it accepts
    them and silently dropped otherwise (callers cannot know which plan
    wins, so unknown-parameter errors would make ``auto`` unusable with
    any tuning knob).
    """
    tracer = backend.instr.tracer
    with tracer.span(phase_label("auto")) as span:
        plan_name, probes = select_plan(graph, tracer=tracer)
        if span is not None:
            span.attrs.update(plan=plan_name, **probes)
            # Probe overhead broken out for the adaptive benchmark: the
            # float truth as a gauge, plus an integer microsecond counter
            # so it surfaces through ``result.counters`` like the rest.
            probe_seconds = sum(
                c.duration for c in span.children if c.name == "probe"
            )
            backend.instr.metrics.gauge("probe_seconds").set(probe_seconds)
            backend.instr.count(
                "probe_seconds_us", int(round(probe_seconds * 1e6))
            )
    plan = get_plan(plan_name)
    accepted = set(plan.accepted_params())
    forwarded = {k: v for k, v in params.items() if k in accepted}
    result = run_plan(plan, graph, backend, **forwarded)
    if not probes.get("trivial"):
        result.counters.update(
            probe_diameter=int(probes["diameter"]),
            probe_coverage_pct=int(round(100 * probes["coverage"])),
            probe_degree_skew_x100=int(round(100 * probes["skew"])),
        )
    return result
