"""The algorithm registry: the single dispatch point for CC algorithms.

Every connected-components algorithm is registered once, with metadata,
via the :func:`register` decorator; ``repro.connected_components``, the
CLI, and the benchmark harness all resolve names here.  A spec carries
the callable plus everything a front-end needs to present or validate a
run: a one-line description, default parameters, and which execution
backends the algorithm supports.

Built-in algorithms live in :mod:`repro.engine.algorithms` and are loaded
lazily on first lookup, which keeps the import graph acyclic (algorithm
modules may import engine machinery at module scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "AlgorithmSpec",
    "register",
    "get_algorithm",
    "available_algorithms",
    "describe_algorithms",
    "supported_backends",
    "support_matrix_markdown",
]

#: registry name -> spec.  Populated by :func:`register`.
_REGISTRY: dict[str, "AlgorithmSpec"] = {}

_builtins_loaded = False


@dataclass(frozen=True)
class AlgorithmSpec:
    """Metadata and entry point of one registered algorithm.

    ``fn`` has the uniform engine signature
    ``fn(graph, backend, **params) -> CCResult``.  ``defaults`` are merged
    under caller parameters at dispatch.  ``backends`` names the execution
    backend kinds the algorithm supports; ``instrumented`` marks
    algorithms whose pipeline emits its own per-phase timings (others get
    a single whole-run ``total`` phase when profiled).
    """

    name: str
    fn: Callable
    description: str
    defaults: Mapping = field(default_factory=dict)
    backends: tuple[str, ...] = ("vectorized",)
    instrumented: bool = False

    def supports_backend(self, kind: str) -> bool:
        """True when the algorithm can run on a backend of ``kind``."""
        return kind in self.backends


def _ensure_builtins() -> None:
    """Import the built-in algorithm registrations exactly once."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from repro.engine import algorithms  # noqa: F401  (registers built-ins)


def register(
    name: str,
    *,
    description: str,
    defaults: Mapping | None = None,
    backends: tuple[str, ...] = ("vectorized",),
    instrumented: bool = False,
    overwrite: bool = False,
) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as algorithm ``name``.

    ``fn`` must accept ``(graph, backend, **params)`` and return a
    :class:`~repro.engine.result.CCResult`.  Registering an existing name
    raises unless ``overwrite=True`` (deliberate replacement, e.g. an
    experimental variant shadowing a built-in).
    """

    def deco(fn: Callable) -> Callable:
        if name in _REGISTRY and not overwrite:
            raise ConfigurationError(
                f"algorithm {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        _REGISTRY[name] = AlgorithmSpec(
            name=name,
            fn=fn,
            description=description,
            defaults=dict(defaults or {}),
            backends=tuple(backends),
            instrumented=instrumented,
        )
        return fn

    return deco


def get_algorithm(name: str) -> AlgorithmSpec:
    """The spec registered under ``name``; raises for unknown names.

    Names containing ``+`` that are not explicitly registered resolve
    through the plan registry (:mod:`repro.engine.plan`): any valid
    ``<sampling>+<finish>`` composition dispatches like a registered
    algorithm without needing its own entry.
    """
    _ensure_builtins()
    spec = _REGISTRY.get(name)
    if spec is None and "+" in name:
        # Local import: the plan layer imports engine machinery at module
        # scope; resolving lazily keeps the import graph acyclic.
        from repro.engine.plan import plan_algorithm_spec

        return plan_algorithm_spec(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)} "
            "plus composed plans ('<sampling>+<finish>', see "
            "available_plans())"
        )
    return spec


def available_algorithms() -> list[str]:
    """Sorted names of every registered algorithm."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def describe_algorithms(
    include_plans: bool = True,
) -> list[tuple[str, str]]:
    """``(name, description)`` pairs for every resolvable algorithm.

    Registered algorithms come first (sorted); with ``include_plans``
    (the default) every composed ``<sampling>+<finish>`` plan follows, so
    front-ends presenting "what can I run" see the full matrix instead of
    the stale monolith-only view.
    """
    _ensure_builtins()
    pairs = [(n, _REGISTRY[n].description) for n in sorted(_REGISTRY)]
    if include_plans:
        from repro.engine.plan import describe_plans

        pairs.extend(describe_plans())
    return pairs


def supported_backends(name: str) -> tuple[str, ...]:
    """Backend kinds algorithm ``name`` supports (registry metadata)."""
    return get_algorithm(name).backends


def support_matrix_markdown() -> str:
    """The algorithm×backend support matrix as a markdown table.

    Derived entirely from registry metadata, so the rendering in
    ``docs/algorithms.md`` cannot drift from the code (a test regenerates
    and compares).  Registered algorithms come first, followed by every
    composed ``<sampling>+<finish>`` plan, so the matrix covers the full
    sampling × finish × backend space.  Algorithms registered with
    backends outside the canonical
    :data:`~repro.engine.backends.BACKEND_KINDS` get extra columns
    appended in registration order.
    """
    _ensure_builtins()
    # Local import: backends.py is heavy (numpy, multiprocessing) and the
    # registry must stay importable without it at module scope.
    from repro.engine.backends import BACKEND_KINDS
    from repro.engine.plan import PLAN_BACKENDS, available_plans

    kinds = list(BACKEND_KINDS)
    for name in sorted(_REGISTRY):
        for kind in _REGISTRY[name].backends:
            if kind not in kinds:
                kinds.append(kind)
    rows: list[tuple[str, tuple[str, ...]]] = [
        (name, _REGISTRY[name].backends) for name in sorted(_REGISTRY)
    ]
    rows.extend((name, PLAN_BACKENDS) for name in available_plans())
    lines = [
        "| algorithm | " + " | ".join(kinds) + " |",
        "|---|" + "|".join("---" for _ in kinds) + "|",
    ]
    for name, backends in rows:
        cells = " | ".join("✓" if k in backends else "—" for k in kinds)
        lines.append(f"| `{name}` | {cells} |")
    return "\n".join(lines)
